//! # vnf-highway
//!
//! A full reproduction of *"A Transparent Highway for inter-Virtual Network
//! Function Communication with Open vSwitch"* (SIGCOMM 2016): an
//! OVS-DPDK-style software switch whose point-to-point traffic-steering
//! rules are transparently accelerated by direct shared-memory channels
//! between the VMs they connect.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`highway`] — the paper's contribution (detector, manager, node);
//! * [`ovs`] — the vSwitch substrate;
//! * [`openflow`] — the OpenFlow 1.0 subset + wire codec;
//! * [`vnf`] — guest-side PMD and VNF applications;
//! * [`vm`] — VM/QEMU host model, compute agent, orchestrator;
//! * [`dpdk`] — rings, mbufs, mempools;
//! * [`shmem`] — shared-memory channels, virtio-serial, stats region;
//! * [`packet`] — wire formats;
//! * [`nic`] — simulated 10 G NICs and traffic generation;
//! * [`model`] — the calibrated performance model behind the figures;
//! * [`telemetry`] — coverage counters, per-PMD perf blocks, latency
//!   histograms and the appctl/Prometheus introspection surface.
//!
//! Start with [`highway::HighwayNode`] — see `examples/quickstart.rs`,
//! and `docs/architecture.md` in the repository for the full layer map.
//!
//! # Quickstart
//!
//! A highway node is a whole server: vSwitch, shared-memory registry,
//! compute agent and the highway manager. Boot one, attach an ordinary
//! OpenFlow controller over the framed control channel, and install a
//! rule — the switch end is real `ofproto`, so barriers fence and flow
//! stats answer:
//!
//! ```
//! use std::time::Duration;
//! use vnf_highway::prelude::*;
//!
//! let node = HighwayNode::new(HighwayNodeConfig::default());
//! node.start();
//!
//! // `connect_controller()` hands back the controller end of a framed
//! // OpenFlow 1.0 byte stream (use `listen_controller()` for real TCP).
//! let ctrl = node.connect_controller();
//! ctrl.add_flow(
//!     FlowMatch::in_port(PortNo(1)),
//!     100,
//!     vec![Action::Output(PortNo(2))],
//!     0xc0ffee,
//! )
//! .expect("flow mod accepted");
//! ctrl.barrier(Duration::from_secs(5)).expect("switch committed");
//!
//! let stats = ctrl.flow_stats(Duration::from_secs(5)).expect("stats");
//! assert_eq!(stats.len(), 1);
//! assert_eq!(stats[0].cookie, 0xc0ffee);
//! node.stop();
//! ```
//!
//! # Writing a controller app
//!
//! Policy plugs in behind [`openflow::ControllerApp`] (or
//! [`openflow::FabricApp`] for one-controller-N-switches); the runtime
//! owns the connection, drives the handshake and redelivers
//! `on_connected` after every reconnect, so an idempotent install there
//! survives controller restarts for free:
//!
//! ```
//! use std::time::Duration;
//! use vnf_highway::openflow::{
//!     Connection, ControllerApp, ControllerRuntime, OfpMessage, SwitchFeatures,
//! };
//! use vnf_highway::prelude::*;
//!
//! /// Mirrors port 1 to port 2, re-asserting the rule on every
//! /// (re)connect — OpenFlow 1.0 `Add` replaces, so this is idempotent.
//! struct PortMirror {
//!     installs: u32,
//! }
//!
//! impl ControllerApp for PortMirror {
//!     fn on_connected(&mut self, conn: &Connection, features: &SwitchFeatures) {
//!         assert_ne!(features.datapath_id, 0, "switch identified itself");
//!         conn.add_flow(
//!             FlowMatch::in_port(PortNo(1)),
//!             50,
//!             vec![Action::Output(PortNo(2))],
//!             0xbeef,
//!         )
//!         .expect("install");
//!         conn.barrier(Duration::from_secs(5)).expect("fence");
//!         self.installs += 1;
//!     }
//!
//!     fn on_message(&mut self, _conn: &Connection, _msg: OfpMessage, _xid: u32) {
//!         // packet-ins, port-status, flow-removed arrive here
//!     }
//! }
//!
//! let node = HighwayNode::new(HighwayNodeConfig::default());
//! node.start();
//!
//! let mut rt = ControllerRuntime::new(node.connect_controller(), PortMirror { installs: 0 });
//! rt.run_until_ready(Duration::from_secs(5)).expect("handshake");
//! assert_eq!(rt.app().installs, 1);
//! node.stop();
//! ```

pub use dpdk_sim as dpdk;
pub use highway_core as highway;
pub use nic_sim as nic;
pub use openflow;
pub use ovs_dp as ovs;
pub use packet_wire as packet;
pub use shmem_sim as shmem;
pub use simnet as model;
pub use telemetry;
pub use vm_host as vm;
pub use vnf_apps as vnf;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use dpdk_sim::{EthDev, Mbuf, Mempool};
    pub use highway_core::{HighwayNode, HighwayNodeConfig};
    pub use openflow::{Action, FlowMatch, OfpMessage, PortNo};
    pub use ovs_dp::{VSwitchd, VSwitchdConfig};
    pub use packet_wire::{FlowKey, MacAddr, PacketBuilder, ProbeHeader};
    pub use shmem_sim::{SegmentKind, StatsRegion};
    pub use vm_host::{AppKind, ComputeAgent, LatencyModel, Orchestrator, Vm, VnfSpec};
    pub use vnf_apps::{Firewall, FirewallRule, L2Forwarder, NetworkMonitor, WebCache};
}
