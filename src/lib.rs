//! # vnf-highway
//!
//! A full reproduction of *"A Transparent Highway for inter-Virtual Network
//! Function Communication with Open vSwitch"* (SIGCOMM 2016): an
//! OVS-DPDK-style software switch whose point-to-point traffic-steering
//! rules are transparently accelerated by direct shared-memory channels
//! between the VMs they connect.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`highway`] — the paper's contribution (detector, manager, node);
//! * [`ovs`] — the vSwitch substrate;
//! * [`openflow`] — the OpenFlow 1.0 subset + wire codec;
//! * [`vnf`] — guest-side PMD and VNF applications;
//! * [`vm`] — VM/QEMU host model, compute agent, orchestrator;
//! * [`dpdk`] — rings, mbufs, mempools;
//! * [`shmem`] — shared-memory channels, virtio-serial, stats region;
//! * [`packet`] — wire formats;
//! * [`nic`] — simulated 10 G NICs and traffic generation;
//! * [`model`] — the calibrated performance model behind the figures;
//! * [`telemetry`] — coverage counters, per-PMD perf blocks, latency
//!   histograms and the appctl/Prometheus introspection surface.
//!
//! Start with [`highway::HighwayNode`] — see `examples/quickstart.rs`.

pub use dpdk_sim as dpdk;
pub use highway_core as highway;
pub use nic_sim as nic;
pub use openflow;
pub use ovs_dp as ovs;
pub use packet_wire as packet;
pub use shmem_sim as shmem;
pub use simnet as model;
pub use telemetry;
pub use vm_host as vm;
pub use vnf_apps as vnf;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use dpdk_sim::{EthDev, Mbuf, Mempool};
    pub use highway_core::{HighwayNode, HighwayNodeConfig};
    pub use openflow::{Action, FlowMatch, OfpMessage, PortNo};
    pub use ovs_dp::{VSwitchd, VSwitchdConfig};
    pub use packet_wire::{FlowKey, MacAddr, PacketBuilder, ProbeHeader};
    pub use shmem_sim::{SegmentKind, StatsRegion};
    pub use vm_host::{AppKind, ComputeAgent, LatencyModel, Orchestrator, Vm, VnfSpec};
    pub use vnf_apps::{Firewall, FirewallRule, L2Forwarder, NetworkMonitor, WebCache};
}
