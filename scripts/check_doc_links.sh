#!/usr/bin/env bash
# Fails if any markdown link in README.md or docs/*.md points at a file
# that does not exist. Relative links are resolved against the file that
# contains them; absolute URLs and pure #anchors are skipped. Keeps the
# doc book honest: a renamed chapter or crate path breaks CI, not a
# reader.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    # Every inline-link target: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*} # strip any anchor
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "DEAD LINK: $doc -> $target" >&2
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
    echo "dead documentation links found" >&2
    exit 1
fi
echo "doc links OK"
