//! Minimal `bytes` API shim: the `Buf`/`BufMut` trait subset the OpenFlow
//! codec uses, implemented for `&[u8]` and `Vec<u8>`.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the external APIs it uses as tiny shims. Multi-byte accessors
//! are big-endian, matching the real crate's defaults (and OpenFlow's
//! network byte order). Reads past the end panic, like the real crate —
//! callers must check [`Buf::remaining`] first.
//!
//! Swap `shims/bytes` for the real crates.io `bytes` in
//! `[workspace.dependencies]` once the registry is reachable.

/// Read access to a contiguous byte cursor (big-endian accessors).
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Move the cursor forward `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append access to a growable byte buffer (big-endian accessors).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0x01);
        out.put_u16(0x0203);
        out.put_u32(0x0405_0607);
        out.put_u64(0x0809_0a0b_0c0d_0e0f);
        out.put_slice(b"xy");
        assert_eq!(out.len(), 17);
        assert_eq!(out[1..3], [0x02, 0x03]);

        let mut cur: &[u8] = &out;
        assert_eq!(cur.get_u8(), 0x01);
        assert_eq!(cur.get_u16(), 0x0203);
        assert_eq!(cur.get_u32(), 0x0405_0607);
        assert_eq!(cur.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        let mut tail = [0u8; 2];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cur.remaining(), 0);
    }
}
