//! Minimal `crossbeam` API shim backed by `std::sync`.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the external APIs it uses as tiny shims. This one covers the
//! subset of `crossbeam` the codebase touches:
//!
//! * [`channel`] — MPMC channels with cloneable receivers (`bounded`,
//!   `unbounded`, `try_send`/`try_recv`/`recv_timeout` and their error
//!   types), implemented on a `Mutex<VecDeque>` + two condvars;
//! * [`queue::ArrayQueue`] — a bounded MPMC queue (lock-based here, the
//!   real one is lock-free; same API, same semantics);
//! * [`utils::CachePadded`] — 64/128-byte aligned wrapper.
//!
//! Swap `shims/crossbeam` for the real crates.io `crossbeam` in
//! `[workspace.dependencies]` once the registry is reachable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message is enqueued or all senders drop.
        not_empty: Condvar,
        /// Signalled when a message is dequeued or all receivers drop.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl<T> std::error::Error for TrySendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages.
    ///
    /// Unlike real crossbeam, `cap == 0` is treated as capacity 1 rather
    /// than a rendezvous channel (the codebase never creates one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued or all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = inner.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap();
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block until a message arrives, all senders are gone, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }

        /// Blocking iterator; ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }

        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Bounded MPMC queue with the `crossbeam::queue::ArrayQueue` API.
    ///
    /// Lock-based stand-in for the lock-free original: identical
    /// semantics, adequate for the simulated dataplane.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue with the given capacity.
        ///
        /// # Panics
        /// Panics if `cap` is zero, like the real `ArrayQueue`.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            Self {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Push an element, returning it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap();
            if q.len() >= self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Pop the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Push, evicting the oldest element if full (returns the evictee).
        pub fn force_push(&self, value: T) -> Option<T> {
            let mut q = self.inner.lock().unwrap();
            let evicted = if q.len() >= self.cap {
                q.pop_front()
            } else {
                None
            };
            q.push_back(value);
            evicted
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn is_full(&self) -> bool {
            self.len() >= self.cap
        }

        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("cap", &self.cap)
                .finish()
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so two
    /// `CachePadded` neighbours never share a line (no false sharing).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};
    use super::queue::ArrayQueue;
    use super::utils::CachePadded;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn channel_across_threads() {
        let (tx, rx) = bounded(8);
        let h = std::thread::spawn(move || (0..100).map(|i| tx.send(i).is_ok()).all(|b| b));
        let got: Vec<i32> = rx.iter().collect();
        assert!(h.join().unwrap());
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn cache_padded_alignment() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
