//! Minimal `proptest` API shim: random-input property testing without
//! shrinking.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the external APIs it uses as tiny shims. This one implements
//! the subset of proptest the test-suite touches:
//!
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for
//!   integer/float ranges, tuples (arity 2–10), and `&str` character-class
//!   patterns like `"[a-z0-9]{0,15}"`;
//! * [`collection`]`::{vec, btree_set}`, [`option`]`::of`,
//!   `bool::ANY`, `num::{u32, u64}::ANY`, [`strategy::Just`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros and [`test_runner::ProptestConfig`].
//!
//! Each test runs `cases` iterations over a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce across runs. There
//! is **no shrinking**: a failing case panics with the case number rather
//! than a minimised input. Swap `shims/proptest` for the real crates.io
//! `proptest` in `[workspace.dependencies]` once the registry is
//! reachable.

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xorshift64* generator; one per test, seeded from the
    /// test's name so runs are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for the
            // small bounds used in tests.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `generate` yields one concrete value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }

        /// Type-erase for use in heterogeneous collections
        /// (e.g. [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies; backs
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// `&str` as a strategy: generates strings matching a character-class
    /// pattern of the form `[chars]{m,n}` (e.g. `"[a-z0-9]{0,15}"`), the
    /// only regex shape the test-suite uses. A bare class means one char.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("string strategy {self:?}: only `[class]{{m,n}}` patterns are supported")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = match counts.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let k = counts.trim().parse().ok()?;
                (k, k)
            }
        };
        (m <= n).then_some((alphabet, m, n))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy, via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for the full domain of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.bool()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated chars meaningful for tests.
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector of `size.start..size.end`
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with between `size.start` and `size.end - 1`
    /// distinct elements (duplicates are simply dropped, like proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `target`; bail after a
            // bounded number of attempts rather than spinning.
            for _ in 0..target * 4 + 8 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// `proptest::bool::ANY`: uniform true/false.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod num {
    macro_rules! num_any_mod {
        ($($m:ident => $t:ty),+) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// The strategy type behind [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct NumAny;

                /// The whole domain of the primitive, uniformly.
                pub const ANY: NumAny = NumAny;

                impl Strategy for NumAny {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )+};
    }

    num_any_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, i32 => i32, i64 => i64);
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated
/// inputs. Panics (e.g. from `prop_assert!`) report the failing case
/// number; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} (deterministic seed; \
                         rerun reproduces it)",
                        stringify!($name),
                        case + 1,
                        config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Choose uniformly among the listed strategies (all must yield the same
/// type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 1.5f64..2.5, b in crate::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1.5..2.5).contains(&y));
            let _ = b;
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u8..4, 0..6),
            o in crate::option::of(0u32..2),
            s in "[a-f]{2,4}",
            pick in prop_oneof![Just(1u8), 5u8..7],
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
            if let Some(x) = o {
                prop_assert!(x < 2);
            }
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
            prop_assert!(pick == 1 || pick == 5 || pick == 6);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn string_pattern_parses_exact_count() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("exact");
        let s = "[xy]{3}".generate(&mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| c == 'x' || c == 'y'));
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
