//! Minimal `criterion` API shim: enough of the harness to compile and run
//! the workspace's benches, printing mean time/iteration and throughput.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the external APIs it uses as tiny shims. No statistics, HTML
//! reports, or baseline comparison — each bench is warmed up briefly, then
//! timed in batches until `measurement_time` elapses, and a single
//! `name  time: ...` line is printed. Numbers are indicative, not
//! publication-grade; swap `shims/criterion` for the real crates.io
//! `criterion` in `[workspace.dependencies]` once the registry is
//! reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration + entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a standalone benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, &id.into(), &mut f, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Called by `criterion_main!` after all groups; a no-op here.
    pub fn final_summary(&self) {}
}

/// Throughput annotation: scales the printed rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Batch sizing hint for `iter_batched`; the shim runs one setup per
/// routine call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        let throughput = self.throughput;
        run_one(self.criterion, Some(&group), &id.into(), &mut f, throughput);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` back-to-back for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Like `iter_batched`, but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(
    config: &Criterion,
    group: Option<&str>,
    id: &str,
    f: &mut dyn FnMut(&mut Bencher),
    throughput: Option<Throughput>,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up: also calibrates how many iterations fit in a sample.
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + config.warm_up_time.max(Duration::from_millis(1));
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if Instant::now() >= warm_deadline {
            break per_iter;
        }
        iters = (iters * 2).min(1 << 20);
    };

    // One sample ≈ measurement_time / sample_size worth of iterations.
    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

    let mut total_iters: u64 = 0;
    let mut total_time = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += iters_per_sample;
        total_time += b.elapsed;
        let sample_per_iter = b.elapsed / iters_per_sample as u32;
        if sample_per_iter < best {
            best = sample_per_iter;
        }
        if total_time >= config.measurement_time {
            break;
        }
    }

    let mean_ns = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {:>11} elem/s",
                human_rate(n as f64 * 1e9 / mean_ns)
            )
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  thrpt: {:>11} B/s", human_rate(n as f64 * 1e9 / mean_ns))
        }
        None => String::new(),
    };
    println!(
        "{full_name:<48} time: [{} (best {})]{}",
        human_time(mean_ns),
        human_time(best.as_nanos() as f64),
        rate
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.3} G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.3} M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.3} K", per_s / 1e3)
    } else {
        format!("{per_s:.1} ")
    }
}

/// Define a benchmark group: either a plain list of targets or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g. --bench,
            // --test) that this shim has no use for; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
