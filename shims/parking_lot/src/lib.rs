//! Minimal `parking_lot` API shim backed by `std::sync`.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the handful of external APIs it uses as tiny shims. This one
//! mirrors the subset of `parking_lot` the codebase touches: `Mutex` and
//! `RwLock` whose guards are returned directly (no `Result`, no lock
//! poisoning — a panicked holder simply passes the lock on, matching
//! parking_lot semantics).
//!
//! Swap `shims/parking_lot` for the real crates.io `parking_lot` in
//! `[workspace.dependencies]` once the registry is reachable.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` returns the
/// guard directly and poisoning is ignored.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock`: like `std::sync::RwLock` but guards are returned
/// directly and poisoning is ignored.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
            assert!(l.try_write().is_none());
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
