//! Minimal `rand` API shim: `rand::random::<T>()` over a thread-local
//! xorshift64* generator.
//!
//! The build image has no access to a cargo registry, so the workspace
//! vendors the external APIs it uses as tiny shims. Not cryptographic;
//! good enough for jittering simulated latencies.
//!
//! Swap `shims/rand` for the real crates.io `rand` in
//! `[workspace.dependencies]` once the registry is reachable.

use std::cell::Cell;
use std::time::{SystemTime, UNIX_EPOCH};

thread_local! {
    static STATE: Cell<u64> = Cell::new(seed());
}

fn seed() -> u64 {
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    // Mix in the address of a thread-local so concurrent threads seeded in
    // the same nanosecond still diverge.
    let local = 0u8;
    let mix = &local as *const u8 as u64;
    splitmix64(t ^ mix.rotate_left(17)) | 1
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn next_u64() -> u64 {
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Types producible by [`random`]. Stand-in for rand's
/// `Standard`-distribution sampling.
pub trait Random {
    fn random() -> Self;
}

impl Random for u64 {
    fn random() -> Self {
        next_u64()
    }
}

impl Random for u32 {
    fn random() -> Self {
        (next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random() -> Self {
        next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random() -> Self {
        (next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random() -> Self {
        (next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// `rand::random()`: sample a value from the thread-local generator.
pub fn random<T: Random>() -> T {
    T::random()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        for _ in 0..10_000 {
            let x: f64 = random();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn not_constant() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
