//! Functional twin of Figure 3(b)'s topology: a chain fed and drained
//! through simulated 10 G NICs, with a rate-limited traffic generator and
//! a measuring sink — the full E2 data path exercised end to end in both
//! modes (correctness, not throughput: see EXPERIMENTS.md for the model).

use std::sync::Arc;
use std::time::{Duration, Instant};
use vnf_highway::nic::{NicModel, TrafficGen, TrafficSink};
use vnf_highway::prelude::*;

struct World {
    node: HighwayNode,
    nic_in: Arc<NicModel>,
    nic_out: Arc<NicModel>,
    dep: vnf_highway::vm::ChainDeployment,
}

fn deploy(n_vms: usize, highway: bool) -> World {
    let node = HighwayNode::new(if highway {
        HighwayNodeConfig::default()
    } else {
        HighwayNodeConfig::vanilla()
    });

    // Two 10 G ports on the switch.
    let nic_in = NicModel::ten_g("nic-in");
    let nic_out = NicModel::ten_g("nic-out");
    let in_no = node.orchestrator().alloc_port();
    node.switch()
        .add_device_port(PortNo(in_no as u16), "nic-in", nic_in.clone());
    let out_no = node.orchestrator().alloc_port();
    node.switch()
        .add_device_port(PortNo(out_no as u16), "nic-out", nic_out.clone());

    let dep = node.orchestrator().deploy_chain(n_vms, in_no, out_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        nic_in,
        nic_out,
        dep,
    }
}

fn run(n_vms: usize, highway: bool) -> TrafficSink {
    const N: u64 = 500;
    let w = deploy(n_vms, highway);
    // Paced generation: far below line rate so nothing is dropped and the
    // functional check is exact.
    let mut gen = TrafficGen::new(64, 4).with_rate(200_000.0);
    let mut sink = TrafficSink::new();
    let mut burst = Vec::with_capacity(32);
    let mut out = Vec::with_capacity(32);
    let deadline = Instant::now() + Duration::from_secs(30);
    while sink.received < N && Instant::now() < deadline {
        if gen.generated < N {
            burst.clear();
            let want = ((N - gen.generated) as usize).min(32);
            gen.gen_burst(&mut burst, want);
            w.nic_in.inject(&mut burst);
        }
        out.clear();
        w.nic_out.drain(&mut out, 32);
        sink.consume(&mut out);
        std::thread::yield_now();
    }
    assert_eq!(
        sink.received, N,
        "all generated frames must cross the chain (n={n_vms}, highway={highway})"
    );
    assert_eq!(sink.lost(), 0);
    assert_eq!(w.nic_in.stats().imissed, 0, "no NIC-side loss at this rate");
    if highway && n_vms >= 2 {
        // Inner seams bypassed: the switch saw only the NIC-edge seams.
        let inner_egress = w.dep.vm_ports[0].1;
        let port = w
            .node
            .switch()
            .datapath()
            .port(PortNo(inner_egress as u16))
            .unwrap();
        assert_eq!(port.stats().ipackets, 0);
    }
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
    sink
}

#[test]
fn nic_edged_chain_of_1_both_modes() {
    run(1, false);
    run(1, true);
}

#[test]
fn nic_edged_chain_of_2_both_modes() {
    run(2, false);
    run(2, true);
}

#[test]
fn nic_edged_chain_of_3_highway() {
    let sink = run(3, true);
    // Latency probes were stamped at the generator and measured at the
    // sink; the histogram must hold every delivered packet.
    assert_eq!(sink.latency().count(), 500);
    assert!(sink.latency().mean() > 0);
}
