//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::sync::Arc;
use vnf_highway::dpdk::spsc_ring;
use vnf_highway::highway::detect_p2p_links;
use vnf_highway::openflow::codec::{decode, encode};
use vnf_highway::openflow::messages::{FlowMod, FlowModCommand, OfpMessage};
use vnf_highway::ovs::classifier::Classifier;
use vnf_highway::ovs::table::RuleEntry;
use vnf_highway::ovs::RuleSnapshot;
use vnf_highway::packet::{FlowKey, MacAddr, PacketBuilder};
use vnf_highway::prelude::{Action, FlowMatch, PortNo};

// ---------- strategies ----------

fn mac() -> impl Strategy<Value = MacAddr> {
    // A small alphabet keeps collision probability (and thus rule overlap)
    // high enough to exercise interesting cases.
    (0u8..4).prop_map(MacAddr::local)
}

fn ipv4_prefix() -> impl Strategy<Value = (Ipv4Addr, u8)> {
    ((0u32..8), (8u8..=32)).prop_map(|(n, len)| (Ipv4Addr::from(0x0a00_0000 | n << 8), len))
}

fn flow_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(0u16..6),
        proptest::option::of(mac()),
        proptest::option::of(mac()),
        proptest::option::of(proptest::bool::ANY),
        proptest::option::of(0u8..3),
        proptest::option::of(ipv4_prefix()),
        proptest::option::of(ipv4_prefix()),
        proptest::option::of(0u16..5),
        proptest::option::of(0u16..5),
    )
        .prop_map(
            |(in_port, eth_src, eth_dst, is_ip, proto, src, dst, l4s, l4d)| {
                let ip = is_ip.unwrap_or(false);
                FlowMatch {
                    in_port: in_port.map(PortNo),
                    eth_src,
                    eth_dst,
                    vlan_id: None,
                    eth_type: if ip { Some(0x0800) } else { None },
                    ip_tos: None,
                    ip_proto: if ip { proto } else { None },
                    ipv4_src: if ip { src } else { None },
                    ipv4_dst: if ip { dst } else { None },
                    l4_src: if ip { l4s } else { None },
                    l4_dst: if ip { l4d } else { None },
                }
                .canonicalise()
            },
        )
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u16..9).prop_map(|p| Action::Output(PortNo(p))),
        mac().prop_map(Action::SetEthSrc),
        mac().prop_map(Action::SetEthDst),
        (0u16..100).prop_map(Action::SetL4Dst),
        Just(Action::StripVlan),
        (0u8..64).prop_map(Action::SetIpTos),
    ]
}

fn flow_key() -> impl Strategy<Value = FlowKey> {
    (0u16..5, 0u16..5, 0u8..3, mac(), mac()).prop_map(|(l4s, l4d, proto, src, dst)| {
        let pkt = PacketBuilder::udp_probe(64)
            .eth(src, dst)
            .ports(l4s, l4d)
            .build();
        let mut key = FlowKey::extract(&pkt);
        key.ip_proto = if proto == 0 { 17 } else { proto };
        key
    })
}

// ---------- codec ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every encodable flow_mod decodes back to itself, byte-exactly framed.
    #[test]
    fn codec_flow_mod_roundtrip(
        fmatch in flow_match(),
        actions in proptest::collection::vec(action(), 0..5),
        priority in 0u16..u16::MAX,
        cookie in proptest::num::u64::ANY,
        cmd in 0u8..5,
    ) {
        let fm = FlowMod {
            command: match cmd {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                _ => FlowModCommand::DeleteStrict,
            },
            fmatch,
            priority,
            actions,
            cookie,
            idle_timeout: 0,
            hard_timeout: 0,
            out_port: PortNo::NONE,
        };
        let msg = OfpMessage::FlowMod(fm);
        let bytes = encode(&msg, 7);
        let (decoded, xid) = decode(&bytes).expect("decode");
        prop_assert_eq!(xid, 7);
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder is total: random bytes never panic.
    #[test]
    fn codec_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Flow key extraction is total over arbitrary frames.
    #[test]
    fn flow_key_extraction_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let _ = FlowKey::extract(&bytes);
    }
}

// ---------- classifier vs. reference ----------

fn mk_rule(id: u64, fmatch: FlowMatch, priority: u16) -> Arc<RuleEntry> {
    use std::sync::atomic::AtomicU64;
    Arc::new(RuleEntry {
        id,
        fmatch,
        priority,
        actions: vec![Action::Output(PortNo(1))],
        cookie: id,
        idle_timeout: 0,
        hard_timeout: 0,
        added_at: 0,
        last_used: AtomicU64::new(0),
        n_packets: AtomicU64::new(0),
        n_bytes: AtomicU64::new(0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tuple-space lookup equals the brute-force best-priority scan.
    #[test]
    fn classifier_agrees_with_linear_scan(
        rules in proptest::collection::vec((flow_match(), 0u16..8), 0..24),
        port in 0u16..6,
        key in flow_key(),
    ) {
        let rules: Vec<Arc<RuleEntry>> = rules
            .into_iter()
            .enumerate()
            .map(|(i, (m, p))| mk_rule(i as u64, m, p))
            .collect();
        let mut cls = Classifier::new();
        for r in &rules {
            cls.insert(r);
        }
        let got = cls.lookup(PortNo(port), &key).map(|r| r.id);
        let expected = rules
            .iter()
            .filter(|r| r.fmatch.matches(PortNo(port), &key))
            .max_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(b.id.cmp(&a.id)) // lower id wins ties
            })
            .map(|r| r.id);
        prop_assert_eq!(got, expected);
    }

    /// Removing every rule empties the classifier (no stale matches).
    #[test]
    fn classifier_remove_is_complete(
        rules in proptest::collection::vec((flow_match(), 0u16..8), 1..16),
        key in flow_key(),
    ) {
        let rules: Vec<Arc<RuleEntry>> = rules
            .into_iter()
            .enumerate()
            .map(|(i, (m, p))| mk_rule(i as u64, m, p))
            .collect();
        let mut cls = Classifier::new();
        for r in &rules {
            cls.insert(r);
        }
        for r in &rules {
            cls.remove(r);
        }
        prop_assert_eq!(cls.subtable_count(), 0);
        prop_assert!(cls.lookup(PortNo(1), &key).is_none());
    }
}

// ---------- cache-tier equivalence (EMC → megaflow → classifier) ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The staged-unwildcarding soundness invariant: for any rule table and
    /// any packet sequence, a lookup served by the EMC or the megaflow
    /// cache returns exactly the rule a cold classifier walk — and a
    /// brute-force best-priority scan — would return. Caches may only
    /// change cost, never the matched rule. Every probe runs twice so the
    /// second lookup exercises the warm tiers, and a mid-sequence flow_mod
    /// exercises generation invalidation.
    ///
    /// The whole sequence runs under 1-, 2- and 4-PMD sharding: each probe
    /// is routed to its RSS owner's private caches, so warm hits come from
    /// per-PMD state validated against the shared RCU-style snapshot
    /// generation — exactly what `PmdThread::run` does with the fan-out
    /// mesh.
    #[test]
    fn cache_tiers_agree_with_cold_classifier(
        rules in proptest::collection::vec((flow_match(), 0u16..8), 1..24),
        probes in proptest::collection::vec((0u16..6, flow_key()), 1..32),
        mutate_at in 0usize..32,
        extra in (flow_match(), 0u16..8),
    ) {
        use vnf_highway::ovs::pmd::{rss_owner, Datapath, PmdCaches};

        for npmds in [1usize, 2, 4] {
            let dp = Datapath::new(false);
            for (m, p) in &rules {
                dp.table_apply(&FlowMod::add(*m, *p, vec![Action::Output(PortNo(1))]));
            }
            let mut pmds: Vec<PmdCaches> =
                (0..npmds).map(|_| PmdCaches::new()).collect();
            for (i, (port, key)) in probes.iter().enumerate() {
                if i == mutate_at {
                    // A table change mid-stream: every PMD's cache tiers
                    // must drop everything resolved under the old
                    // generation, however stale its private snapshot.
                    dp.table_apply(&FlowMod::add(
                        extra.0,
                        extra.1,
                        vec![Action::Output(PortNo(2))],
                    ));
                }
                let owner = rss_owner(PortNo(*port), key, npmds);
                for _round in 0..2 {
                    let (cached, _tier) =
                        dp.classify(PortNo(*port), key, Some(&mut pmds[owner]), 1, 64);
                    let (cold, reference) = {
                        let table = dp.table();
                        let cold = table.lookup(PortNo(*port), key).map(|r| r.id);
                        let reference = table
                            .rules()
                            .iter()
                            .filter(|r| r.fmatch.matches(PortNo(*port), key))
                            .max_by(|a, b| {
                                a.priority
                                    .cmp(&b.priority)
                                    .then(b.id.cmp(&a.id)) // lower id wins ties
                            })
                            .map(|r| r.id);
                        (cold, reference)
                    };
                    prop_assert_eq!(cold, reference, "classifier vs linear scan");
                    prop_assert_eq!(
                        cached.map(|r| r.id),
                        reference,
                        "cache hierarchy diverged from cold walk at probe {} ({:?}, {} PMDs)",
                        i,
                        _tier,
                        npmds
                    );
                    // The classifying PMD now holds the freshest snapshot.
                    prop_assert_eq!(
                        pmds[owner].snapshot_generation(),
                        Some(dp.table_generation())
                    );
                }
            }
        }
    }
}

// ---------- detector soundness ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Independent restatement of the detector's contract: a reported link
    /// src→dst implies (a) a rule matching exactly in_port=src with the
    /// single action Output(dst), and (b) no other rule that could ever see
    /// traffic from src. A false positive here would steal traffic.
    #[test]
    fn detector_reports_only_sound_links(
        table in proptest::collection::vec(
            (flow_match(), proptest::collection::vec(action(), 0..3), proptest::num::u64::ANY),
            0..12,
        ),
    ) {
        let snapshot: Vec<RuleSnapshot> = table
            .into_iter()
            .enumerate()
            .map(|(i, (fmatch, actions, cookie))| RuleSnapshot {
                id: i as u64,
                fmatch,
                priority: 100,
                actions,
                cookie,
            })
            .collect();
        let links = detect_p2p_links(&snapshot);
        for (src, link) in &links {
            prop_assert_eq!(*src, link.src);
            // (a) the witness rule exists…
            let witnesses: Vec<_> = snapshot
                .iter()
                .filter(|r| {
                    r.fmatch.only_in_port() == Some(PortNo(link.src as u16))
                        && r.actions == vec![Action::Output(PortNo(link.dst as u16))]
                })
                .collect();
            prop_assert!(!witnesses.is_empty(), "no witness rule for {link:?}");
            // (b) …and nothing else covers the source port.
            let witness_id = witnesses[0].id;
            for r in &snapshot {
                if r.id != witness_id {
                    prop_assert!(
                        !r.fmatch.covers_in_port(PortNo(link.src as u16)),
                        "rule {} also covers port {}",
                        r.id,
                        link.src
                    );
                }
            }
        }
    }
}

// ---------- ring model ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SPSC ring behaves exactly like a bounded FIFO queue.
    #[test]
    fn ring_matches_fifo_model(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let (mut p, mut c) = spsc_ring::<u32>(8);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                let res = p.enqueue(next);
                if model.len() < 8 {
                    prop_assert!(res.is_ok());
                    model.push_back(next);
                } else {
                    prop_assert_eq!(res, Err(next));
                }
                next += 1;
            } else {
                prop_assert_eq!(c.dequeue(), model.pop_front());
            }
            prop_assert_eq!(p.len(), model.len());
        }
    }
}

// ---------- stats region ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Counter cells are exact under any interleaving of adds.
    #[test]
    fn stats_region_sums_exactly(adds in proptest::collection::vec((0u64..4, 1u64..100), 1..64)) {
        use vnf_highway::shmem::StatsRegion;
        let region = StatsRegion::new();
        let mut expected = std::collections::HashMap::new();
        for (cookie, pkts) in &adds {
            region.rule_cell(*cookie).add(*pkts, pkts * 64);
            let e = expected.entry(*cookie).or_insert((0u64, 0u64));
            e.0 += pkts;
            e.1 += pkts * 64;
        }
        for (cookie, (pkts, bytes)) in expected {
            prop_assert_eq!(region.rule_totals(cookie), (pkts, bytes));
        }
    }
}

// ---------- DES vs analytic solver ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packet-level discrete-event simulator and the closed-form
    /// bottleneck solver agree at saturation for ANY (sane) cost model and
    /// chain — the figures do not depend on which one we trust.
    #[test]
    fn des_and_solver_agree_for_random_cost_models(
        n_vms in 1usize..8,
        nic_edge in proptest::bool::ANY,
        highway in proptest::bool::ANY,
        ring in 20.0f64..120.0,
        emc in 60.0f64..400.0,
        vnf in 50.0f64..2000.0,
        pmd_cores in 1u8..4,
    ) {
        use vnf_highway::model::{solve, ChainSim, ChainSpec, CostModel, Mode};
        let mut cost = CostModel::paper_testbed().with_pmd_cores(f64::from(pmd_cores));
        cost.ring_enqueue = ring;
        cost.ring_dequeue = ring;
        cost.emc_hit = emc;
        cost.vnf_app = vnf;
        let n = if nic_edge { n_vms } else { n_vms.max(2) };
        let mode = if highway { Mode::Highway } else { Mode::Vanilla };
        let spec = if nic_edge {
            ChainSpec::nic(n, mode)
        } else {
            ChainSpec::memory(n, mode)
        };
        let analytic = solve(&spec, &cost).aggregate_mpps;
        let des = ChainSim::new(&spec, &cost).saturate(6_000).aggregate_mpps;
        let err = (des - analytic).abs() / analytic;
        prop_assert!(
            err < 0.12,
            "DES {des:.3} vs analytic {analytic:.3} Mpps ({:.1}% off) for {spec:?}",
            err * 100.0
        );
    }
}

// ---------- codec: port/aggregate/table messages ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The port-state and stats extensions round-trip for arbitrary field
    /// values, like the flow_mod core.
    #[test]
    fn codec_port_and_stats_roundtrip(
        port in 0u16..u16::MAX,
        down in proptest::bool::ANY,
        reason in 0u8..3,
        name in "[a-z0-9]{0,15}",
        pkts in proptest::num::u64::ANY,
        bytes in proptest::num::u64::ANY,
        flows in proptest::num::u32::ANY,
        fmatch in flow_match(),
    ) {
        use vnf_highway::openflow::messages::*;

        let pm = OfpMessage::PortMod(PortMod { port_no: PortNo(port), down });
        let (decoded, _) = decode(&encode(&pm, 7)).unwrap();
        prop_assert_eq!(decoded, pm);

        let ps = OfpMessage::PortStatus(PortStatus {
            reason: match reason {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                _ => PortStatusReason::Modify,
            },
            port_no: port,
            name: name.clone(),
            down,
        });
        let (decoded, _) = decode(&encode(&ps, 7)).unwrap();
        prop_assert_eq!(decoded, ps);

        let agg_req = OfpMessage::AggregateStatsRequest(AggregateStatsRequest {
            fmatch,
            out_port: PortNo(port),
        });
        let (decoded, _) = decode(&encode(&agg_req, 7)).unwrap();
        prop_assert_eq!(decoded, agg_req);

        let agg = OfpMessage::AggregateStatsReply(AggregateStats {
            packet_count: pkts,
            byte_count: bytes,
            flow_count: flows,
        });
        let (decoded, _) = decode(&encode(&agg, 7)).unwrap();
        prop_assert_eq!(decoded, agg);

        let tbl = OfpMessage::TableStatsReply(vec![TableStatsEntry {
            table_id: 0,
            name,
            max_entries: flows,
            active_count: flows / 2,
            lookup_count: pkts,
            matched_count: pkts / 2,
        }]);
        let (decoded, _) = decode(&encode(&tbl, 7)).unwrap();
        prop_assert_eq!(decoded, tbl);
    }
}

// ---------- subsumption is a partial order ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The loose-filter relation used by modify/delete/stats behaves like
    /// a partial order restricted to match semantics: reflexive,
    /// transitive, and consistent with FlowMatch::any() as top element.
    #[test]
    fn loose_filter_is_reflexive_transitive(
        a in flow_match(),
        b in flow_match(),
        c in flow_match(),
    ) {
        use vnf_highway::ovs::table::loose_filter_matches;
        prop_assert!(loose_filter_matches(&a, &a), "reflexivity");
        prop_assert!(loose_filter_matches(&FlowMatch::any(), &a), "any() is top");
        if loose_filter_matches(&a, &b) && loose_filter_matches(&b, &c) {
            prop_assert!(loose_filter_matches(&a, &c), "transitivity {a:?} {b:?} {c:?}");
        }
    }
}

// ---------- acceleration policy ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Excluded ports never appear in the policy-filtered link set, and
    /// removing the exclusions restores exactly the detector's output.
    #[test]
    fn policy_filter_is_sound_and_complete(
        rules in proptest::collection::vec((1u16..12, 1u16..12, proptest::num::u64::ANY), 0..12),
        excluded in proptest::collection::btree_set(1u32..12, 0..4),
    ) {
        use vnf_highway::highway::AccelerationPolicy;
        let snapshot: Vec<RuleSnapshot> = rules
            .iter()
            .enumerate()
            .map(|(i, (src, dst, cookie))| RuleSnapshot {
                id: i as u64,
                fmatch: FlowMatch::in_port(PortNo(*src)),
                priority: 100,
                actions: vec![Action::Output(PortNo(*dst))],
                cookie: *cookie,
            })
            .collect();
        let links = detect_p2p_links(&snapshot);
        let mut policy = AccelerationPolicy::paper();
        for p in &excluded {
            policy = policy.exclude_port(*p);
        }
        let filtered: Vec<_> = links
            .values()
            .filter(|l| policy.allows(l.src, l.dst))
            .collect();
        for l in &filtered {
            prop_assert!(!excluded.contains(&l.src));
            prop_assert!(!excluded.contains(&l.dst));
        }
        // Completeness: nothing else was removed.
        let removed = links.len() - filtered.len();
        let should_remove = links
            .values()
            .filter(|l| excluded.contains(&l.src) || excluded.contains(&l.dst))
            .count();
        prop_assert_eq!(removed, should_remove);
    }
}
