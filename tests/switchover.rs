//! Dynamicity (§1/§2): bypass setup and teardown happen *under traffic*,
//! losslessly. Packets sent while the control plane is mid-transition may
//! take either path, but every one of them arrives exactly once.

use std::collections::HashSet;
use std::time::{Duration, Instant};
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};

struct World {
    node: HighwayNode,
    ctrl: vnf_highway::openflow::Connection,
    entry: ChannelEnd,
    exit: ChannelEnd,
    vms: Vec<std::sync::Arc<Vm>>,
    a_out: u32,
    b_in: u32,
}

fn deploy() -> World {
    let node = HighwayNode::new(HighwayNodeConfig::default());
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 4096);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 4096);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    let ctrl = node.connect_controller();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        ctrl,
        entry,
        exit,
        a_out: dep.vm_ports[0].1,
        b_in: dep.vm_ports[1].0,
        vms: dep.vms,
    }
}

fn push(entry: &mut ChannelEnd, base: u64, count: u64) {
    for seq in 0..count {
        let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(base + seq).build());
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
}

fn drain(exit: &mut ChannelEnd, want: u64, seqs: &mut Vec<u64>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let target = seqs.len() as u64 + want;
    while (seqs.len() as u64) < target && Instant::now() < deadline {
        match exit.recv() {
            Some(m) => seqs.push(ProbeHeader::from_frame(m.data()).unwrap().seq),
            None => std::thread::yield_now(),
        }
    }
}

/// The "veto" rule that turns the middle seam non-p-2-p.
fn veto_match(a_out: u32) -> FlowMatch {
    let mut web = FlowMatch::in_port(PortNo(a_out as u16));
    web.eth_type = Some(0x0800);
    web.ip_proto = Some(17);
    web.l4_dst = Some(4242); // matches none of the test traffic
    web
}

#[test]
fn transitions_under_traffic_lose_nothing() {
    let mut w = deploy();
    let mut seqs: Vec<u64> = Vec::new();

    // Phase 1: bypass active.
    assert_eq!(w.node.active_links().len(), 2); // middle seam, both ways
    push(&mut w.entry, 0, 200);
    drain(&mut w.exit, 200, &mut seqs, Duration::from_secs(15));

    // Phase 2: add the veto rule *while traffic is in flight*. It covers
    // in_port = a_out only, so precisely the forward direction of the
    // middle seam loses its p-2-p property; the reverse direction is its
    // own link (per §2) and stays accelerated.
    push(&mut w.entry, 200, 100);
    w.ctrl
        .add_flow(
            veto_match(w.a_out),
            200,
            vec![Action::Output(PortNo(w.b_in as u16))],
            0x777,
        )
        .unwrap();
    push(&mut w.entry, 300, 100);
    drain(&mut w.exit, 200, &mut seqs, Duration::from_secs(15));
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(
        w.node.active_links(),
        vec![(w.b_in, w.a_out)],
        "forward bypass torn down; reverse stays"
    );

    // Phase 3: normal path carries traffic.
    push(&mut w.entry, 400, 100);
    drain(&mut w.exit, 100, &mut seqs, Duration::from_secs(15));

    // Phase 4: remove the veto while traffic flows; bypass returns.
    push(&mut w.entry, 500, 100);
    w.ctrl.del_flow_strict(veto_match(w.a_out), 200).unwrap();
    push(&mut w.entry, 600, 100);
    drain(&mut w.exit, 200, &mut seqs, Duration::from_secs(15));
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links().len(), 2, "bypass re-established");

    // Phase 5: and still carries traffic.
    push(&mut w.entry, 700, 100);
    drain(&mut w.exit, 100, &mut seqs, Duration::from_secs(15));

    // Exactly-once delivery across all transitions.
    assert_eq!(seqs.len(), 800, "every packet arrived");
    let unique: HashSet<_> = seqs.iter().copied().collect();
    assert_eq!(unique.len(), 800, "no duplicates");
    assert_eq!(unique.iter().max(), Some(&799));

    // The setup log recorded the two initial activations plus the forward
    // re-activation after the veto was lifted.
    assert!(w.node.setup_log().len() >= 3);

    w.node.stop();
    for vm in &w.vms {
        vm.shutdown();
    }
}

#[test]
fn repeated_flapping_is_stable() {
    let mut w = deploy();
    let mut seqs = Vec::new();
    let mut base = 0u64;
    for round in 0..3 {
        w.ctrl
            .add_flow(
                veto_match(w.a_out),
                200,
                vec![Action::Output(PortNo(w.b_in as u16))],
                0x800 + round,
            )
            .unwrap();
        push(&mut w.entry, base, 50);
        base += 50;
        w.ctrl.del_flow_strict(veto_match(w.a_out), 200).unwrap();
        push(&mut w.entry, base, 50);
        base += 50;
        drain(&mut w.exit, 100, &mut seqs, Duration::from_secs(15));
    }
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(seqs.len() as u64, base);
    assert_eq!(
        seqs.iter().collect::<HashSet<_>>().len() as u64,
        base,
        "no duplicates across flaps"
    );
    assert_eq!(w.node.active_links().len(), 2);
    // No leaked segments: exactly one bypass pair remains.
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 1);

    w.node.stop();
    for vm in &w.vms {
        vm.shutdown();
    }
}
