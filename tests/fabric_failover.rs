//! One controller, two switches, a cross-host chain — and a controller
//! crash mid-storm, end to end over real TCP.
//!
//! The active controller drives both highway nodes through
//! [`FabricRuntime`] while replicating every replay-log append to a
//! standby via the failover role protocol. Mid-way through a flow-mod
//! storm the active's sockets are severed (a hard crash); the standby
//! detects the dead peer, dials both switches itself through the nodes'
//! TCP listeners, and replays its mirrored log tail. Because OpenFlow
//! 1.0 `Add` replaces, the handover is exactly-once: every rule appears
//! exactly once in flow stats, no spurious `FlowRemoved` surfaces, and
//! the chain's intra-host hop keeps passing the zero-copy arena census
//! throughout.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use vnf_highway::highway::{Fabric, FabricChainSteering};
use vnf_highway::openflow::{
    loopback, ActivePeer, FabricRuntime, FlowMod, OfError, OfpMessage, StandbyController,
    TcpTransport, Transport,
};
use vnf_highway::prelude::*;
use vnf_highway::shmem::ChannelEnd;

const DPIDS: [u64; 2] = [0xa1, 0xb2];
const STORM: usize = 40;
const CENSUS_PKTS: u64 = 8;

fn storm_cookie(i: usize) -> u64 {
    0x9000 + i as u64
}

/// The switch a storm rule targets alternates, so both replay mirrors
/// carry un-barriered state at the moment of the crash.
fn storm_dpid(i: usize) -> u64 {
    DPIDS[i % 2]
}

/// Sends `n` arena-backed probes into the chain and waits for all of
/// them at the exit, returning how many arrived.
fn pump_census(
    entry: &mut ChannelEnd,
    exit: &mut ChannelEnd,
    n: u64,
    arena: &vnf_highway::dpdk::Arena,
) -> u64 {
    for seq in 0..n {
        let pkt = PacketBuilder::udp_probe(64).seq(seq).build();
        let mut m = Mbuf::from_arena(arena.alloc_from(&pkt).expect("arena sized for the test"));
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while got < n && Instant::now() < deadline {
        if exit.recv().is_some() {
            got += 1;
        } else {
            std::thread::yield_now();
        }
    }
    got
}

fn settle(rt: &mut FabricRuntime<FabricChainSteering>, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while !rt.app().settled() {
        rt.poll();
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

#[test]
fn controller_kill_mid_storm_fails_over_exactly_once() {
    // --- Fabric: two highway nodes joined by a trunk, 3-VNF chain with
    // two VNFs on node 0 (one intra-host, bypassable hop) and one on
    // node 1.
    let fabric = Fabric::with_defaults(&DPIDS);
    fabric.start();
    let mut chain = fabric.place_chain(&[0, 0, 1], |i| VnfSpec::forwarder(format!("vnf{i}")));
    assert_eq!(chain.trunks.len(), 1, "exactly one inter-host hop");
    let seam_cookies = chain.cookies();

    let addr_of: HashMap<u64, SocketAddr> = fabric
        .listen_all()
        .expect("TCP listeners")
        .into_iter()
        .collect();

    // --- Active controller over real TCP, replicating to the standby
    // over an in-process peer link (the two controllers share this test
    // process; the switches do not share their control channel).
    let (peer_end, standby_end) = loopback();
    let active_peer = ActivePeer::new(Box::new(peer_end));
    let mut standby = StandbyController::new(Box::new(standby_end));

    let mut rt =
        FabricRuntime::with_peer(FabricChainSteering::new(chain.seams.clone()), active_peer);
    let mut kill_handles = Vec::new();
    for dpid in DPIDS {
        let stream = TcpStream::connect(addr_of[&dpid]).expect("dial switch");
        kill_handles.push(stream.try_clone().expect("clone for the kill switch"));
        rt.add_switch(vnf_highway::openflow::Connection::new(Box::new(
            TcpTransport::from_stream(stream).expect("wrap stream"),
        )));
    }
    rt.run_until_ready(Duration::from_secs(10))
        .expect("both switches ready");
    assert_eq!(rt.dpids(), DPIDS.to_vec());
    assert!(settle(&mut rt, Duration::from_secs(10)), "seams settled");
    assert!(fabric
        .node(0)
        .wait_highway_converged(Duration::from_secs(15)));
    assert!(fabric
        .node(1)
        .wait_highway_converged(Duration::from_secs(15)));

    // The intra-host hop (vnf0.out → vnf1.in on node 0) rides the
    // highway; the inter-host hop cannot (its peer port has no local VM).
    let intra = (chain.vm_ports[0].1, chain.vm_ports[1].0);
    assert!(
        fabric.node(0).active_links().contains(&intra),
        "intra-host hop not bypassed: {:?}",
        fabric.node(0).active_links()
    );

    // --- Zero-copy census, round 1: payload bytes are written exactly
    // once even though the chain spans two switches.
    let arena = fabric.node(0).registry().hugepage_arena();
    let base = arena.stats();
    let got = pump_census(&mut chain.entry, &mut chain.exit, CENSUS_PKTS, &arena);
    assert_eq!(got, CENSUS_PKTS, "census packets lost pre-failover");
    let after = arena.stats();
    assert_eq!(after.allocs - base.allocs, CENSUS_PKTS);
    assert_eq!(
        after.slab_writes - base.slab_writes,
        CENSUS_PKTS,
        "a hop copied payload bytes: the cross-host chain is not zero-copy"
    );
    assert_eq!(after.foreign_frees, 0);

    // --- Flow-mod storm, killed in the middle. Every mod enters the
    // connection's replay log and is replicated to the standby *before*
    // the wire write, so the mods that fail to send are exactly the ones
    // the standby must deliver.
    let mut failed_sends = 0;
    for i in 0..STORM {
        if i == STORM / 2 {
            for h in &kill_handles {
                let _ = h.shutdown(Shutdown::Both); // the crash
            }
        }
        let conn = rt.connection(storm_dpid(i)).expect("announced switch");
        if conn
            .add_flow(
                FlowMatch::in_port(PortNo(500 + i as u16)),
                100,
                vec![Action::Output(PortNo(600 + i as u16))],
                storm_cookie(i),
            )
            .is_err()
        {
            failed_sends += 1;
        }
    }
    assert!(failed_sends > 0, "the kill must interrupt the storm");

    // The active is gone: dropping the runtime drops the peer link, the
    // strongest death signal. (A silent hang would instead trip the
    // heartbeat timeout — covered by the openflow crate's unit tests.)
    drop(rt);
    standby.poll();
    assert!(standby.peer_dead(Duration::from_secs(60)));
    assert_eq!(standby.switches(), DPIDS.to_vec());
    for dpid in DPIDS {
        // The seam mods were barrier-retired before the storm; the whole
        // storm (sent and unsent halves alike) is still un-barriered.
        assert_eq!(
            standby.pending(dpid),
            STORM / 2,
            "switch {dpid:#x} mirror holds exactly the un-barriered storm"
        );
    }

    // --- Takeover: dial both switches through the nodes' listeners (a
    // fresh accept replaces the dead control link) and replay the mirror.
    let adopted = standby
        .take_over(Duration::from_secs(10), |dpid| {
            let t = TcpTransport::connect(addr_of[&dpid])
                .map_err(|e| OfError::Unknown(e.to_string()))?;
            Ok(Box::new(t) as Box<dyn Transport>)
        })
        .expect("standby takes the fabric over");
    assert_eq!(adopted.len(), 2);

    // The standby promotes itself to an ordinary fabric controller over
    // the adopted connections; announcing re-installs the seam rules
    // (idempotent re-Adds).
    let mut rt2 = FabricRuntime::new(FabricChainSteering::new(chain.seams.clone()));
    for (_dpid, conn) in adopted {
        rt2.add_switch(conn);
    }
    rt2.run_until_ready(Duration::from_secs(10))
        .expect("re-announce");
    assert!(
        settle(&mut rt2, Duration::from_secs(10)),
        "seams re-settled"
    );

    // --- Exactly-once: every storm rule and every seam rule appears
    // exactly once on its switch, and nothing surfaced as FlowRemoved.
    for dpid in DPIDS {
        let stats = rt2
            .connection(dpid)
            .expect("announced")
            .flow_stats(Duration::from_secs(5))
            .expect("flow stats");
        for i in (0..STORM).filter(|&i| storm_dpid(i) == dpid) {
            let matching: Vec<_> = stats
                .iter()
                .filter(|e| e.cookie == storm_cookie(i))
                .collect();
            assert_eq!(
                matching.len(),
                1,
                "storm cookie {:#x} once",
                storm_cookie(i)
            );
            assert_eq!(
                matching[0].actions,
                vec![Action::Output(PortNo(600 + i as u16))],
                "stale actions for cookie {:#x}",
                storm_cookie(i)
            );
        }
        for seam in &chain.seams[&dpid] {
            assert_eq!(
                stats.iter().filter(|e| e.cookie == seam.cookie).count(),
                1,
                "seam cookie {:#x} once",
                seam.cookie
            );
        }
    }
    rt2.poll();
    assert!(
        rt2.app().flow_removed().is_empty(),
        "replay produced spurious FlowRemoved: {:?}",
        rt2.app().flow_removed()
    );

    // --- The datapath never noticed: the highway link is still up and
    // the chain still passes the census under the new controller.
    assert!(fabric
        .node(0)
        .wait_highway_converged(Duration::from_secs(15)));
    assert!(fabric.node(0).active_links().contains(&intra));
    let base2 = arena.stats();
    let got = pump_census(&mut chain.entry, &mut chain.exit, CENSUS_PKTS, &arena);
    assert_eq!(got, CENSUS_PKTS, "census packets lost post-failover");
    let after2 = arena.stats();
    assert_eq!(after2.allocs - base2.allocs, CENSUS_PKTS);
    assert_eq!(after2.slab_writes - base2.slab_writes, CENSUS_PKTS);
    assert_eq!(after2.foreign_frees, 0);

    // --- Deleting the storm rules yields exactly one FlowRemoved per
    // cookie: the replay really left no hidden duplicates behind.
    for i in 0..STORM {
        rt2.connection(storm_dpid(i))
            .expect("announced")
            .send(&OfpMessage::FlowMod(FlowMod::delete_strict(
                FlowMatch::in_port(PortNo(500 + i as u16)),
                100,
            )))
            .expect("delete over the adopted link");
    }
    for dpid in DPIDS {
        rt2.connection(dpid)
            .expect("announced")
            .barrier(Duration::from_secs(5))
            .expect("delete barrier");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while rt2.app().flow_removed().len() < STORM && Instant::now() < deadline {
        rt2.poll();
        std::thread::sleep(Duration::from_millis(1));
    }
    let removed = rt2.app().flow_removed();
    assert_eq!(removed.len(), STORM, "one FlowRemoved per storm cookie");
    for i in 0..STORM {
        assert_eq!(
            removed.get(&storm_cookie(i)),
            Some(&1),
            "cookie {:#x} removed exactly once",
            storm_cookie(i)
        );
    }
    for cookie in &seam_cookies {
        assert!(
            !removed.contains_key(cookie),
            "seam cookie {cookie:#x} was never deleted"
        );
    }

    fabric.stop();
    chain.shutdown_vms();
}
