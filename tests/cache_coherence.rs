//! Cache-coherence regressions for the three-tier datapath: once a rule is
//! resolved into the EMC and megaflow caches, *no* control-plane change —
//! flow_mod modify, flow_mod delete, or a timeout sweep — may let a stale
//! cached entry serve the old actions. The coverage drives every mutation
//! through `Ofproto` (the path a real controller takes), then pumps the
//! PMD data path with the same warm per-PMD caches a running thread holds.
//!
//! Every scenario runs under 1, 2 and 4 PMDs: packets are RSS-sharded to
//! their owner PMD exactly as `PmdThread::run` does, so multi-PMD runs
//! exercise per-PMD snapshot revalidation — each PMD privately caches an
//! `Arc<FlowTable>` and must notice the shared generation moved before
//! serving its warm tiers.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use vnf_highway::dpdk::{cycles, Mbuf};
use vnf_highway::openflow::messages::{FlowMod, FlowModCommand, OfpMessage};
use vnf_highway::ovs::pmd::{rss_owner, Datapath, PmdCaches};
use vnf_highway::ovs::{Ofproto, OvsPort};
use vnf_highway::prelude::*;
use vnf_highway::shmem::ChannelEnd;

struct World {
    dp: Arc<Datapath>,
    ofproto: Ofproto,
    /// One warm cache set per simulated PMD.
    pmds: Vec<Mutex<PmdCaches>>,
    vm: Vec<ChannelEnd>,
}

/// Three dpdkr ports (1, 2, 3) with the VM-side channel ends returned in
/// order, plus `npmds` warmable per-PMD cache sets.
fn three_port_world(npmds: usize) -> World {
    let dp = Datapath::new(false);
    let ofproto = Ofproto::new(Arc::clone(&dp), 0xc0ffee);
    let mut vm = Vec::new();
    for no in 1u16..=3 {
        let (sw, vm_end) = vnf_highway::shmem::channel(format!("dpdkr{no}"), 64);
        dp.add_port(OvsPort::dpdkr(PortNo(no), format!("dpdkr{no}"), sw));
        vm.push(vm_end);
    }
    World {
        dp,
        ofproto,
        pmds: (0..npmds).map(|_| Mutex::new(PmdCaches::new())).collect(),
        vm,
    }
}

/// One synchronous iteration of the sharded datapath: every rx burst is
/// split by RSS owner and processed against that owner PMD's caches — the
/// exact code path the fan-out mesh drives, minus the threads and rings.
fn pump(w: &mut World) {
    let snapshot: Vec<_> = w.dp.ports.read().values().cloned().collect();
    let mut staged = BTreeMap::new();
    let now = cycles::now();
    let total = w.pmds.len();
    for port in &snapshot {
        let mut rx = Vec::new();
        port.rx_burst(&mut rx, 32);
        if rx.is_empty() {
            continue;
        }
        let mut shards: Vec<Vec<Mbuf>> = (0..total).map(|_| Vec::new()).collect();
        for pkt in rx.drain(..) {
            let key = vnf_highway::packet::FlowKey::extract(pkt.data());
            shards[rss_owner(port.no, &key, total)].push(pkt);
        }
        for (owner, mut shard) in shards.into_iter().enumerate() {
            if !shard.is_empty() {
                w.dp.process_burst(
                    &mut shard,
                    port.no,
                    Some(&w.pmds[owner]),
                    &mut staged,
                    &snapshot,
                    now,
                );
            }
        }
    }
    w.dp.flush_staged(&mut staged);
}

fn probe() -> Mbuf {
    Mbuf::from_slice(&PacketBuilder::udp_probe(64).build())
}

/// The PMD that owns the probe flow arriving on port 1 — the only PMD
/// whose caches the probe warms, and therefore the one whose snapshot
/// must track the live generation.
fn probe_owner(total: usize) -> usize {
    let key = vnf_highway::packet::FlowKey::extract(&PacketBuilder::udp_probe(64).build());
    rss_owner(PortNo(1), &key, total)
}

fn flow_removed_count(ctrl: &vnf_highway::openflow::Connection) -> usize {
    let mut n = 0;
    while let Some(Ok((msg, _xid))) = ctrl.try_recv() {
        if matches!(msg, OfpMessage::FlowRemoved(_)) {
            n += 1;
        }
    }
    n
}

/// A flow_mod *modify* through ofproto must invalidate both warm cache
/// tiers: the very next packet executes the new actions, never the cached
/// old ones.
#[test]
fn flow_mod_modify_invalidates_warm_caches() {
    for npmds in [1usize, 2, 4] {
        let mut w = three_port_world(npmds);
        w.ofproto.apply_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        ));

        // Warm both tiers: two packets — classifier resolution, then EMC hit.
        for _ in 0..2 {
            w.vm[0].send(probe()).unwrap();
            pump(&mut w);
        }
        assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());
        assert!(w.dp.emc_hits.load(std::sync::atomic::Ordering::Relaxed) > 0);

        let mut modify = FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(3))],
        );
        modify.command = FlowModCommand::ModifyStrict;
        w.ofproto.apply_flow_mod(&modify);

        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
        assert!(
            w.vm[1].recv().is_none(),
            "stale cached action executed after modify ({npmds} PMDs)"
        );
        assert!(
            w.vm[2].recv().is_some(),
            "modified action not applied ({npmds} PMDs)"
        );
        // The owning PMD revalidated: its private snapshot caught up with
        // the live generation the modify published.
        assert_eq!(
            w.pmds[probe_owner(npmds)].lock().snapshot_generation(),
            Some(w.dp.table_generation()),
            "owner PMD kept serving a stale snapshot ({npmds} PMDs)"
        );
    }
}

/// A flow_mod *delete* through ofproto must flush the caches too — the
/// next packet is a genuine miss (dropped under the drop policy), and the
/// controller hears exactly one FlowRemoved.
#[test]
fn flow_mod_delete_invalidates_warm_caches_and_reports_removal() {
    for npmds in [1usize, 2, 4] {
        let mut w = three_port_world(npmds);
        let (ctrl, link) = vnf_highway::openflow::framed_link();
        w.ofproto.attach_controller(link);
        w.ofproto.apply_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        ));

        for _ in 0..2 {
            w.vm[0].send(probe()).unwrap();
            pump(&mut w);
        }
        assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());

        w.ofproto.apply_flow_mod(&FlowMod::delete(FlowMatch::any()));
        assert_eq!(flow_removed_count(&ctrl), 1);

        let drops_before = w.dp.miss_drops.load(std::sync::atomic::Ordering::Relaxed);
        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
        assert!(
            w.vm[1].recv().is_none(),
            "cached rule served after delete ({npmds} PMDs)"
        );
        assert_eq!(
            w.dp.miss_drops.load(std::sync::atomic::Ordering::Relaxed),
            drops_before + 1,
            "deleted rule's packet must be a real miss ({npmds} PMDs)"
        );
        assert_eq!(
            w.pmds[probe_owner(npmds)].lock().snapshot_generation(),
            Some(w.dp.table_generation()),
        );
    }
}

/// An idle-timeout expiry through `Ofproto::sweep_timeouts` evicts the
/// rule from the table *and* from both warm caches, and emits exactly one
/// FlowRemoved — not one per cache tier, not zero.
#[test]
fn idle_timeout_sweep_evicts_cached_rule_and_emits_one_flow_removed() {
    for npmds in [1usize, 2, 4] {
        let mut w = three_port_world(npmds);
        let (ctrl, link) = vnf_highway::openflow::framed_link();
        w.ofproto.attach_controller(link);
        let mut fm = FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        );
        fm.idle_timeout = 1; // seconds
        w.ofproto.apply_flow_mod(&fm);

        // Warm both tiers.
        for _ in 0..2 {
            w.vm[0].send(probe()).unwrap();
            pump(&mut w);
        }
        assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());

        // Not yet idle: the sweep must keep the rule and emit nothing.
        w.ofproto.sweep_timeouts();
        assert_eq!(flow_removed_count(&ctrl), 0);
        assert_eq!(w.dp.table().len(), 1);

        // Let the idle clock run out, then sweep.
        std::thread::sleep(Duration::from_millis(1300));
        w.ofproto.sweep_timeouts();
        assert_eq!(
            flow_removed_count(&ctrl),
            1,
            "expiry must emit exactly one FlowRemoved ({npmds} PMDs)"
        );
        assert_eq!(w.dp.table().len(), 0);

        // Re-sweeping emits nothing further.
        w.ofproto.sweep_timeouts();
        assert_eq!(flow_removed_count(&ctrl), 0);

        // The warm caches must not resurrect the expired rule: the next
        // packet is a genuine miss in every tier.
        let stats_before = w.dp.cache_stats();
        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
        let stats_after = w.dp.cache_stats();
        assert!(
            w.vm[1].recv().is_none(),
            "expired rule served from a stale cache entry ({npmds} PMDs)"
        );
        assert_eq!(stats_after.misses, stats_before.misses + 1);
        assert_eq!(stats_after.matched, stats_before.matched);
    }
}

/// Mid-sequence flow_mod churn under multi-PMD sharding: flows spread over
/// several PMDs, each privately caching the rule, then a modify republishes
/// the table — every PMD that sees post-churn traffic must revalidate its
/// snapshot and route to the new output, with no loss and no stale hits.
#[test]
fn multi_pmd_churn_revalidates_every_owner_snapshot() {
    for npmds in [2usize, 4] {
        let mut w = three_port_world(npmds);
        w.ofproto.apply_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        ));

        // 32 distinct flows, warmed twice so every owner PMD holds both a
        // classifier-resolved megaflow and an EMC entry.
        let flows: Vec<Vec<u8>> = (0..32u16)
            .map(|i| PacketBuilder::udp_probe(64).ports(2000 + i, 80).build())
            .collect();
        for _ in 0..2 {
            for frame in &flows {
                w.vm[0].send(Mbuf::from_slice(frame)).unwrap();
                pump(&mut w);
            }
        }
        for _ in 0..64 {
            assert!(w.vm[1].recv().is_some(), "warmup packet lost");
        }
        // With multiple PMDs the RSS hash must actually have spread the
        // flows: more than one PMD holds warm entries.
        let warm = w
            .pmds
            .iter()
            .filter(|c| !c.lock().megaflow.is_empty())
            .count();
        assert!(warm > 1, "RSS kept all 32 flows on one of {npmds} PMDs");

        // Mid-sequence churn: re-point the rule at port 3.
        let mut modify = FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(3))],
        );
        modify.command = FlowModCommand::ModifyStrict;
        w.ofproto.apply_flow_mod(&modify);
        let live = w.dp.table_generation();

        // Replay every flow: all must follow the new action.
        for frame in &flows {
            w.vm[0].send(Mbuf::from_slice(frame)).unwrap();
            pump(&mut w);
        }
        assert!(
            w.vm[1].recv().is_none(),
            "stale snapshot served the old output after churn ({npmds} PMDs)"
        );
        for _ in 0..32 {
            assert!(w.vm[2].recv().is_some(), "post-churn packet lost");
        }
        // Every PMD that classified post-churn traffic caught up to the
        // published generation.
        for (i, caches) in w.pmds.iter().enumerate() {
            let c = caches.lock();
            if !c.megaflow.is_empty() {
                assert_eq!(
                    c.snapshot_generation(),
                    Some(live),
                    "PMD {i} still on a pre-churn snapshot ({npmds} PMDs)"
                );
            }
        }
    }
}

/// Packets staged for a port that vanishes before the flush are *counted*
/// (`tx_no_port_drops`), and the dead port's staging key is evicted rather
/// than retained forever.
#[test]
fn vanished_port_drops_are_counted_and_staged_keys_cleaned() {
    let mut w = three_port_world(1);
    w.ofproto.apply_flow_mod(&FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(2))],
    ));
    // Warm the path, then yank the output port out from under it.
    w.vm[0].send(probe()).unwrap();
    pump(&mut w);
    assert!(w.vm[1].recv().is_some());
    assert_eq!(w.dp.cache_stats().tx_no_port_drops, 0);

    w.dp.remove_port(PortNo(2));
    w.vm[0].send(probe()).unwrap();
    pump(&mut w);
    assert_eq!(
        w.dp.cache_stats().tx_no_port_drops,
        1,
        "drop for a vanished output port must be counted"
    );

    // The lookup still matched — the drop happens after classification, so
    // the OFPST_TABLE identity (lookups == matched + misses) is untouched.
    let stats = w.dp.cache_stats();
    assert_eq!(stats.lookups, stats.matched + stats.misses);
}
