//! Cache-coherence regressions for the three-tier datapath: once a rule is
//! resolved into the EMC and megaflow caches, *no* control-plane change —
//! flow_mod modify, flow_mod delete, or a timeout sweep — may let a stale
//! cached entry serve the old actions. The coverage drives every mutation
//! through `Ofproto` (the path a real controller takes), then pumps the
//! PMD data path with the same warm per-PMD caches a running thread holds.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use vnf_highway::dpdk::{cycles, Mbuf};
use vnf_highway::openflow::messages::{FlowMod, FlowModCommand, OfpMessage};
use vnf_highway::ovs::pmd::{Datapath, PmdCaches};
use vnf_highway::ovs::{Ofproto, OvsPort};
use vnf_highway::prelude::*;
use vnf_highway::shmem::ChannelEnd;

struct World {
    dp: Arc<Datapath>,
    ofproto: Ofproto,
    caches: PmdCaches,
    vm: Vec<ChannelEnd>,
}

/// Three dpdkr ports (1, 2, 3) with the VM-side channel ends returned in
/// order, plus warmable per-PMD caches.
fn three_port_world() -> World {
    let dp = Datapath::new(false);
    let ofproto = Ofproto::new(Arc::clone(&dp), 0xc0ffee);
    let mut vm = Vec::new();
    for no in 1u16..=3 {
        let (sw, vm_end) = vnf_highway::shmem::channel(format!("dpdkr{no}"), 64);
        dp.add_port(OvsPort::dpdkr(PortNo(no), format!("dpdkr{no}"), sw));
        vm.push(vm_end);
    }
    World {
        dp,
        ofproto,
        caches: PmdCaches::new(),
        vm,
    }
}

/// One synchronous burst-batched PMD iteration with the world's caches —
/// the exact code path `PmdThread::run` drives, minus the thread.
fn pump(w: &mut World) {
    let snapshot: Vec<_> = w.dp.ports.read().values().cloned().collect();
    let mut staged = BTreeMap::new();
    let now = cycles::now();
    for port in &snapshot {
        let mut rx = Vec::new();
        port.rx_burst(&mut rx, 32);
        if !rx.is_empty() {
            w.dp.process_burst(
                &mut rx,
                port.no,
                Some(&mut w.caches),
                &mut staged,
                &snapshot,
                now,
            );
        }
    }
    w.dp.flush_staged(&mut staged);
}

fn probe() -> Mbuf {
    Mbuf::from_slice(&PacketBuilder::udp_probe(64).build())
}

fn flow_removed_count(ctrl: &vnf_highway::openflow::Connection) -> usize {
    let mut n = 0;
    while let Some(Ok((msg, _xid))) = ctrl.try_recv() {
        if matches!(msg, OfpMessage::FlowRemoved(_)) {
            n += 1;
        }
    }
    n
}

/// A flow_mod *modify* through ofproto must invalidate both warm cache
/// tiers: the very next packet executes the new actions, never the cached
/// old ones.
#[test]
fn flow_mod_modify_invalidates_warm_caches() {
    let mut w = three_port_world();
    w.ofproto.apply_flow_mod(&FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(2))],
    ));

    // Warm both tiers: two packets — classifier resolution, then EMC hit.
    for _ in 0..2 {
        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
    }
    assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());
    assert!(w.dp.emc_hits.load(std::sync::atomic::Ordering::Relaxed) > 0);

    let mut modify = FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(3))],
    );
    modify.command = FlowModCommand::ModifyStrict;
    w.ofproto.apply_flow_mod(&modify);

    w.vm[0].send(probe()).unwrap();
    pump(&mut w);
    assert!(
        w.vm[1].recv().is_none(),
        "stale cached action executed after modify"
    );
    assert!(w.vm[2].recv().is_some(), "modified action not applied");
}

/// A flow_mod *delete* through ofproto must flush the caches too — the
/// next packet is a genuine miss (dropped under the drop policy), and the
/// controller hears exactly one FlowRemoved.
#[test]
fn flow_mod_delete_invalidates_warm_caches_and_reports_removal() {
    let mut w = three_port_world();
    let (ctrl, link) = vnf_highway::openflow::framed_link();
    w.ofproto.attach_controller(link);
    w.ofproto.apply_flow_mod(&FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(2))],
    ));

    for _ in 0..2 {
        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
    }
    assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());

    w.ofproto.apply_flow_mod(&FlowMod::delete(FlowMatch::any()));
    assert_eq!(flow_removed_count(&ctrl), 1);

    let drops_before = w.dp.miss_drops.load(std::sync::atomic::Ordering::Relaxed);
    w.vm[0].send(probe()).unwrap();
    pump(&mut w);
    assert!(w.vm[1].recv().is_none(), "cached rule served after delete");
    assert_eq!(
        w.dp.miss_drops.load(std::sync::atomic::Ordering::Relaxed),
        drops_before + 1,
        "deleted rule's packet must be a real miss"
    );
}

/// An idle-timeout expiry through `Ofproto::sweep_timeouts` evicts the
/// rule from the table *and* from both warm caches, and emits exactly one
/// FlowRemoved — not one per cache tier, not zero.
#[test]
fn idle_timeout_sweep_evicts_cached_rule_and_emits_one_flow_removed() {
    let mut w = three_port_world();
    let (ctrl, link) = vnf_highway::openflow::framed_link();
    w.ofproto.attach_controller(link);
    let mut fm = FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(2))],
    );
    fm.idle_timeout = 1; // seconds
    w.ofproto.apply_flow_mod(&fm);

    // Warm both tiers.
    for _ in 0..2 {
        w.vm[0].send(probe()).unwrap();
        pump(&mut w);
    }
    assert!(w.vm[1].recv().is_some() && w.vm[1].recv().is_some());

    // Not yet idle: the sweep must keep the rule and emit nothing.
    w.ofproto.sweep_timeouts();
    assert_eq!(flow_removed_count(&ctrl), 0);
    assert_eq!(w.dp.table.read().len(), 1);

    // Let the idle clock run out, then sweep.
    std::thread::sleep(Duration::from_millis(1300));
    w.ofproto.sweep_timeouts();
    assert_eq!(
        flow_removed_count(&ctrl),
        1,
        "expiry must emit exactly one FlowRemoved"
    );
    assert_eq!(w.dp.table.read().len(), 0);

    // Re-sweeping emits nothing further.
    w.ofproto.sweep_timeouts();
    assert_eq!(flow_removed_count(&ctrl), 0);

    // The warm caches must not resurrect the expired rule: the next packet
    // is a genuine miss in every tier.
    let stats_before = w.dp.cache_stats();
    w.vm[0].send(probe()).unwrap();
    pump(&mut w);
    let stats_after = w.dp.cache_stats();
    assert!(
        w.vm[1].recv().is_none(),
        "expired rule served from a stale cache entry"
    );
    assert_eq!(stats_after.misses, stats_before.misses + 1);
    assert_eq!(stats_after.matched, stats_before.matched);
}
