//! The paper's transparency invariants (§1, §2), verified over the real
//! OpenFlow wire:
//!
//! 1. flow statistics are identical with the highway on or off;
//! 2. port statistics are identical with the highway on or off;
//! 3. `FlowRemoved` reports full counters even for bypassed rules;
//! 4. `packet-out` reaches a port whose data path is bypassed.

use std::time::{Duration, Instant};
use vnf_highway::openflow::messages::OfpMessage;
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};

struct World {
    node: HighwayNode,
    ctrl: vnf_highway::openflow::Connection,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: vnf_highway::vm::ChainDeployment,
}

fn deploy(highway: bool) -> World {
    let node = HighwayNode::new(if highway {
        HighwayNodeConfig::default()
    } else {
        HighwayNodeConfig::vanilla()
    });
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);
    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    let ctrl = node.connect_controller();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        ctrl,
        entry,
        exit,
        dep,
    }
}

fn run_traffic(w: &mut World, n: u64) {
    for seq in 0..n {
        let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
        loop {
            match w.entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while got < n && Instant::now() < deadline {
        match w.exit.recv() {
            Some(_) => got += 1,
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(got, n);
}

fn teardown(w: World) {
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

#[test]
fn flow_and_port_stats_are_mode_invariant() {
    const N: u64 = 300;
    let observe = |highway: bool| {
        let mut w = deploy(highway);
        run_traffic(&mut w, N);
        let mut flows = w.ctrl.flow_stats(Duration::from_secs(3)).unwrap();
        flows.sort_by_key(|e| e.cookie);
        let mut ports = w.ctrl.port_stats(Duration::from_secs(3)).unwrap();
        ports.sort_by_key(|e| e.port_no);
        teardown(w);
        (flows, ports)
    };
    let (vf, vp) = observe(false);
    let (hf, hp) = observe(true);

    assert_eq!(vf.len(), hf.len());
    for (v, h) in vf.iter().zip(&hf) {
        assert_eq!(v.cookie, h.cookie);
        assert_eq!(
            (v.packet_count, v.byte_count),
            (h.packet_count, h.byte_count),
            "flow {:#x} differs between modes",
            v.cookie
        );
    }
    assert_eq!(vp.len(), hp.len());
    for (v, h) in vp.iter().zip(&hp) {
        assert_eq!(v.port_no, h.port_no);
        assert_eq!(
            (v.rx_packets, v.tx_packets, v.rx_bytes, v.tx_bytes),
            (h.rx_packets, h.tx_packets, h.rx_bytes, h.tx_bytes),
            "port {} differs between modes",
            v.port_no
        );
    }
}

#[test]
fn bypassed_flow_counters_are_exact() {
    const N: u64 = 250;
    let mut w = deploy(true);
    run_traffic(&mut w, N);
    let flows = w.ctrl.flow_stats(Duration::from_secs(3)).unwrap();
    // The middle seam rule (vm0.out → vm1.in) was fully bypassed, yet its
    // counters are exact.
    let middle_cookie = w.dep.forward_cookies[1];
    let middle = flows
        .iter()
        .find(|e| e.cookie == middle_cookie)
        .expect("middle rule present");
    assert_eq!(middle.packet_count, N);
    assert_eq!(middle.byte_count, N * 64);
    teardown(w);
}

#[test]
fn flow_removed_includes_bypassed_counters() {
    const N: u64 = 120;
    let mut w = deploy(true);
    run_traffic(&mut w, N);

    // Strict-delete the bypassed middle rule.
    let (from, _to) = (w.dep.vm_ports[0].1, w.dep.vm_ports[1].0);
    w.ctrl
        .del_flow_strict(FlowMatch::in_port(PortNo(from as u16)), 100)
        .unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();

    // The FlowRemoved notification must carry the full (bypassed) count.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut found = None;
    while found.is_none() && Instant::now() < deadline {
        match w.ctrl.try_recv() {
            Some(Ok((OfpMessage::FlowRemoved(fr), _xid))) => found = Some(fr),
            Some(_) => {}
            None => std::thread::yield_now(),
        }
    }
    let fr = found.expect("FlowRemoved received");
    assert_eq!(fr.packet_count, N);
    assert_eq!(fr.byte_count, N * 64);
    teardown(w);
}

#[test]
fn packet_out_reaches_bypassed_port() {
    let mut w = deploy(true);
    assert!(!w.node.active_links().is_empty(), "bypass is up");

    // Packet-out into the first VM: travels the chain to the exit port
    // even though that VM's egress is served by a bypass channel.
    let vm0_in = w.dep.vm_ports[0].0;
    w.ctrl
        .packet_out(
            PacketBuilder::udp_probe(64).seq(42).build(),
            vec![Action::Output(PortNo(vm0_in as u16))],
        )
        .unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut delivered = None;
    while delivered.is_none() && Instant::now() < deadline {
        match w.exit.recv() {
            Some(m) => delivered = Some(m),
            None => std::thread::yield_now(),
        }
    }
    let m = delivered.expect("packet-out crossed the (bypassed) chain");
    assert_eq!(ProbeHeader::from_frame(m.data()).unwrap().seq, 42);
    teardown(w);
}

#[test]
fn features_reply_hides_the_highway() {
    // The port list the controller sees is identical in both modes.
    let view = |highway: bool| {
        let w = deploy(highway);
        let xid = w.ctrl.send(&OfpMessage::FeaturesRequest).unwrap();
        let reply = w.ctrl.wait_reply(xid, Duration::from_secs(3)).unwrap();
        teardown(w);
        match reply {
            OfpMessage::FeaturesReply { ports, .. } => ports,
            other => panic!("unexpected {other:?}"),
        }
    };
    assert_eq!(view(false), view(true));
}
