//! Dynamicity beyond explicit flow_mods: the flow table also changes when
//! rules *expire* and when the controller flips a port's admin state. In
//! both cases the highway must notice and revert to the normal path —
//! otherwise a bypass would keep delivering traffic the switch would have
//! stopped, silently breaking the forwarding semantics the controller
//! believes it installed.

use std::time::{Duration, Instant};
use vnf_highway::highway::BypassEventKind;
use vnf_highway::openflow::messages::{FlowMod, OfpMessage};
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};

struct World {
    node: HighwayNode,
    ctrl: vnf_highway::openflow::Connection,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: vnf_highway::vm::ChainDeployment,
}

fn deploy() -> World {
    let node = HighwayNode::new(HighwayNodeConfig::default());
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);
    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    let ctrl = node.connect_controller();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        ctrl,
        entry,
        exit,
        dep,
    }
}

fn teardown(w: World) {
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

fn send_and_expect(w: &mut World, seq: u64, expect_delivery: bool) -> bool {
    let m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
    w.entry.send(m).unwrap();
    let deadline = Instant::now()
        + if expect_delivery {
            Duration::from_secs(10)
        } else {
            Duration::from_millis(300)
        };
    while Instant::now() < deadline {
        if let Some(m) = w.exit.recv() {
            assert_eq!(ProbeHeader::from_frame(m.data()).unwrap().seq, seq);
            return true;
        }
        std::thread::yield_now();
    }
    false
}

#[test]
fn hard_timeout_expiry_tears_down_the_bypass() {
    let mut w = deploy();
    let (mid_src, mid_dst) = (w.dep.vm_ports[0].1, w.dep.vm_ports[1].0);
    assert!(w.node.active_links().contains(&(mid_src, mid_dst)));

    // Replace the middle forward rule with one that expires in 2 s. (The
    // replace itself churns the bypass; wait for re-convergence.)
    let mut fm = FlowMod::add(
        FlowMatch::in_port(PortNo(mid_src as u16)),
        100,
        vec![Action::Output(PortNo(mid_dst as u16))],
    )
    .with_cookie(0xdead);
    fm.hard_timeout = 2;
    w.ctrl.send(&OfpMessage::FlowMod(fm)).unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert!(send_and_expect(&mut w, 1, true), "traffic flows pre-expiry");

    // Wait out the timeout (the vswitchd housekeeping loop sweeps every
    // 100 ms). The rule vanishes ⇒ the detector revokes the link ⇒ the
    // bypass is dismantled without any controller involvement.
    let deadline = Instant::now() + Duration::from_secs(10);
    while w.node.active_links().contains(&(mid_src, mid_dst)) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !w.node.active_links().contains(&(mid_src, mid_dst)),
        "bypass must die with its rule"
    );
    assert!(w.node.journal().unwrap().wait_for(
        BypassEventKind::Removed,
        mid_src,
        mid_dst,
        Duration::from_secs(10)
    ));

    // The FlowRemoved for the expired rule reached the controller with
    // the bypassed packet counted.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut removed = None;
    while removed.is_none() && Instant::now() < deadline {
        match w.ctrl.try_recv() {
            Some(Ok((OfpMessage::FlowRemoved(fr), _))) if fr.cookie == 0xdead => removed = Some(fr),
            Some(_) => {}
            None => std::thread::yield_now(),
        }
    }
    let fr = removed.expect("FlowRemoved for the expired rule");
    assert_eq!(fr.packet_count, 1, "the bypassed packet is in the count");

    // With no middle rule, forward traffic is dropped at the switch — by
    // the *normal* path, proving the bypass is really gone.
    assert!(!send_and_expect(&mut w, 2, false));
    teardown(w);
}

#[test]
fn bypassed_traffic_defeats_idle_expiry() {
    // A fully bypassed rule generates no switch-side hits. If the idle
    // sweep only watched switch counters it would expire the rule while
    // traffic is flowing — tearing down the fast path and then
    // blackholing the flow. The sweep must read the shared stats region.
    let mut w = deploy();
    let (mid_src, mid_dst) = (w.dep.vm_ports[0].1, w.dep.vm_ports[1].0);

    // Replace the middle rule with one that idles out after 1 s.
    let mut fm = FlowMod::add(
        FlowMatch::in_port(PortNo(mid_src as u16)),
        100,
        vec![Action::Output(PortNo(mid_dst as u16))],
    )
    .with_cookie(0x1d1e);
    fm.idle_timeout = 1;
    w.ctrl.send(&OfpMessage::FlowMod(fm)).unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert!(w.node.active_links().contains(&(mid_src, mid_dst)));

    // Keep traffic flowing over the bypass for 2.5 s — well past the
    // idle timeout. Every packet crosses the bypass, none the switch.
    let start = Instant::now();
    let mut seq = 0u64;
    while start.elapsed() < Duration::from_millis(2_500) {
        assert!(
            send_and_expect(&mut w, seq, true),
            "flow must stay alive at t={:?}",
            start.elapsed()
        );
        seq += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    // The rule survived (and so did the bypass).
    assert!(
        w.node.active_links().contains(&(mid_src, mid_dst)),
        "busy bypassed rule must not idle out"
    );

    // Now actually go idle: the rule expires and the bypass follows.
    let deadline = Instant::now() + Duration::from_secs(10);
    while w.node.active_links().contains(&(mid_src, mid_dst)) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        !w.node.active_links().contains(&(mid_src, mid_dst)),
        "idle rule expires once traffic really stops"
    );
    teardown(w);
}

#[test]
fn port_down_reverts_to_normal_path_and_up_restores() {
    let mut w = deploy();
    let (_mid_src, mid_dst) = (w.dep.vm_ports[0].1, w.dep.vm_ports[1].0);
    assert_eq!(w.node.active_links().len(), 2, "both middle directions");
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 1);

    // The controller disables the second VM's ingress port. Both bypass
    // directions touch it, so both must be dismantled — even though every
    // steering rule is still installed.
    w.ctrl.set_port_down(PortNo(mid_dst as u16), true).unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert!(
        w.node.active_links().is_empty(),
        "links vetoed by port state"
    );
    assert_eq!(
        w.node.registry().live_of_kind(SegmentKind::Bypass).len(),
        0,
        "segment released"
    );

    // Traffic now takes the normal path and dies at the down port,
    // exactly as the controller intended.
    let drops_before = w
        .node
        .switch()
        .datapath()
        .port(PortNo(mid_dst as u16))
        .unwrap()
        .stats()
        .odropped;
    assert!(!send_and_expect(&mut w, 10, false));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let drops = w
            .node
            .switch()
            .datapath()
            .port(PortNo(mid_dst as u16))
            .unwrap()
            .stats()
            .odropped;
        if drops > drops_before {
            break;
        }
        assert!(Instant::now() < deadline, "switch never dropped the packet");
        std::thread::yield_now();
    }

    // Port back up: the link is re-detected from the cached flow table
    // (no flow_mod needed) and traffic resumes end to end.
    w.ctrl.set_port_down(PortNo(mid_dst as u16), false).unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links().len(), 2);
    assert!(send_and_expect(&mut w, 11, true));

    // The controller observed both transitions as PortStatus messages.
    let statuses = w.ctrl.drain_port_status();
    let downs = statuses.iter().filter(|s| s.down).count();
    let ups = statuses
        .iter()
        .filter(|s| !s.down && s.port_no == mid_dst as u16)
        .count();
    assert!(downs >= 1, "down transition announced");
    assert!(ups >= 1, "up transition announced");
    teardown(w);
}
