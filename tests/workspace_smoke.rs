//! Workspace-manifest smoke test.
//!
//! The umbrella crate's value is its re-export surface: `src/lib.rs`
//! forwards ten member crates and a prelude. A manifest regression (a
//! dropped dependency, a renamed crate, a broken re-export) should fail
//! *here*, in seconds, rather than deep inside an integration test. Every
//! assertion below touches one re-exported crate through the umbrella
//! path only.

use vnf_highway::prelude::*;

/// Forces the type to resolve through the prelude without constructing it.
fn resolves<T: ?Sized>() -> &'static str {
    std::any::type_name::<T>()
}

#[test]
fn prelude_types_resolve() {
    // One line per prelude export; a missing manifest dependency turns
    // any of these into a compile error.
    assert!(resolves::<dyn EthDev>().contains("dpdk_sim"));
    assert!(resolves::<Mbuf>().contains("dpdk_sim"));
    assert!(resolves::<Mempool>().contains("dpdk_sim"));
    assert!(resolves::<HighwayNode>().contains("highway_core"));
    assert!(resolves::<HighwayNodeConfig>().contains("highway_core"));
    assert!(resolves::<Action>().contains("openflow"));
    assert!(resolves::<FlowMatch>().contains("openflow"));
    assert!(resolves::<OfpMessage>().contains("openflow"));
    assert!(resolves::<PortNo>().contains("openflow"));
    assert!(resolves::<VSwitchd>().contains("ovs_dp"));
    assert!(resolves::<VSwitchdConfig>().contains("ovs_dp"));
    assert!(resolves::<FlowKey>().contains("packet_wire"));
    assert!(resolves::<MacAddr>().contains("packet_wire"));
    assert!(resolves::<PacketBuilder>().contains("packet_wire"));
    assert!(resolves::<ProbeHeader>().contains("packet_wire"));
    assert!(resolves::<SegmentKind>().contains("shmem_sim"));
    assert!(resolves::<StatsRegion>().contains("shmem_sim"));
    assert!(resolves::<AppKind>().contains("vm_host"));
    assert!(resolves::<ComputeAgent>().contains("vm_host"));
    assert!(resolves::<LatencyModel>().contains("vm_host"));
    assert!(resolves::<Orchestrator>().contains("vm_host"));
    assert!(resolves::<Vm>().contains("vm_host"));
    assert!(resolves::<VnfSpec>().contains("vm_host"));
    assert!(resolves::<Firewall>().contains("vnf_apps"));
    assert!(resolves::<FirewallRule>().contains("vnf_apps"));
    assert!(resolves::<L2Forwarder>().contains("vnf_apps"));
    assert!(resolves::<NetworkMonitor>().contains("vnf_apps"));
    assert!(resolves::<WebCache>().contains("vnf_apps"));
}

#[test]
fn prelude_types_construct() {
    let node = HighwayNode::new(HighwayNodeConfig::default());
    assert!(node.highway_enabled());
    assert!(node.active_links().is_empty());

    let m = FlowMatch::in_port(PortNo(1));
    assert_eq!(m.only_in_port(), Some(PortNo(1)));

    let pkt = PacketBuilder::udp_probe(64)
        .eth(MacAddr::local(1), MacAddr::local(2))
        .build();
    assert_eq!(pkt.len(), 64);
    let key = FlowKey::extract(&pkt);
    assert_eq!(key.ip_proto, 17);

    let region = StatsRegion::new();
    region.rule_cell(7).add(3, 192);
    assert_eq!(region.rule_totals(7), (3, 192));
}

#[test]
fn module_reexports_reach_every_member_crate() {
    // dpdk
    let (mut p, mut c) = vnf_highway::dpdk::spsc_ring::<u32>(4);
    p.enqueue(11).unwrap();
    assert_eq!(c.dequeue(), Some(11));

    // highway (detector over an ovs snapshot type)
    let snapshot = vec![vnf_highway::ovs::RuleSnapshot {
        id: 0,
        fmatch: FlowMatch::in_port(PortNo(3)),
        priority: 100,
        actions: vec![Action::Output(PortNo(4))],
        cookie: 0xbeef,
    }];
    let links = vnf_highway::highway::detect_p2p_links(&snapshot);
    assert_eq!(links.len(), 1);
    assert_eq!(links[&3].dst, 4);

    // openflow codec round-trip
    let msg = OfpMessage::Hello;
    let bytes = vnf_highway::openflow::codec::encode(&msg, 42);
    let (decoded, xid) = vnf_highway::openflow::codec::decode(&bytes).unwrap();
    assert_eq!(xid, 42);
    assert_eq!(decoded, msg);

    // shmem
    let (mut a, mut b) = vnf_highway::shmem::channel("smoke", 8);
    a.send(Mbuf::from_slice(&[0u8; 60])).unwrap();
    assert!(b.recv().is_some());

    // model (simnet): analytic solver produces a positive rate
    let cost = vnf_highway::model::CostModel::paper_testbed();
    let spec = vnf_highway::model::ChainSpec::memory(2, vnf_highway::model::Mode::Highway);
    assert!(vnf_highway::model::solve(&spec, &cost).aggregate_mpps > 0.0);

    // nic: histogram type constructs
    let mut hist = vnf_highway::nic::LatencyHistogram::new();
    hist.record(1_000);
    assert_eq!(hist.count(), 1);

    // vnf: an app constructs behind its trait object
    let _fw: Box<dyn vnf_highway::vnf::VnfApp> = Box::new(Firewall::new(Vec::new()));
}
