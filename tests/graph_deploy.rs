//! The paper's motivating service graph (Figure 1a) on a highway node:
//! firewall → monitor, with web traffic detouring through a cache. Only
//! the seams that are *pure* point-to-point links may be accelerated — the
//! monitor's egress carries a web/non-web split and must stay on the
//! switch. This is the scenario that separates the detector from a naive
//! "bypass everything" design.

use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use vnf_highway::highway::AccelerationPolicy;
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};
use vnf_highway::vm::{AppKind, GraphDeployment, GraphEdgeSpec, GraphPort, GraphSpec};
use vnf_highway::vnf::Nat44;

struct World {
    node: HighwayNode,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: GraphDeployment,
}

fn deploy_figure1(highway: bool) -> World {
    // External ports are not VM-backed; exclude them so the manager does
    // not even try (policy in action — without it, the edge seams would
    // be detected and logged as unsatisfiable).
    let policy = AccelerationPolicy::paper().exclude_port(1).exclude_port(2);
    let node = HighwayNode::new(HighwayNodeConfig {
        highway_enabled: highway,
        policy,
        ..HighwayNodeConfig::default()
    });
    let entry_no = node.orchestrator().alloc_port();
    assert_eq!(entry_no, 1);
    let (entry, sw_end) = node
        .registry()
        .create_channel("dpdkr1", SegmentKind::DpdkrNormal, 2048);
    node.switch().add_dpdkr_port(PortNo(1), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    assert_eq!(exit_no, 2);
    let (exit, sw_end) = node
        .registry()
        .create_channel("dpdkr2", SegmentKind::DpdkrNormal, 2048);
    node.switch().add_dpdkr_port(PortNo(2), "exit", sw_end);

    let mut web = FlowMatch::any();
    web.ip_proto = Some(17);
    web.l4_dst = Some(80);

    let fw_in = GraphPort::Vnf { node: 0, port: 0 };
    let fw_out = GraphPort::Vnf { node: 0, port: 1 };
    let mon_in = GraphPort::Vnf { node: 1, port: 0 };
    let mon_out = GraphPort::Vnf { node: 1, port: 1 };
    let cache_in = GraphPort::Vnf { node: 2, port: 0 };
    let cache_out = GraphPort::Vnf { node: 2, port: 1 };

    let dep = node.orchestrator().deploy_graph(GraphSpec {
        vnfs: vec![
            (
                VnfSpec {
                    name: "firewall".into(),
                    app: AppKind::Firewall(vec![
                        FirewallRule::deny_dst_port(23), // telnet stays dead
                        FirewallRule::any(true),
                    ]),
                },
                2,
            ),
            (
                VnfSpec {
                    name: "monitor".into(),
                    app: AppKind::Monitor,
                },
                2,
            ),
            (
                VnfSpec {
                    name: "cache".into(),
                    app: AppKind::WebCache,
                },
                2,
            ),
        ],
        edges: vec![
            GraphEdgeSpec::all(GraphPort::External(1), fw_in),
            GraphEdgeSpec::all(fw_out, mon_in),
            GraphEdgeSpec::matching(mon_out, cache_in, web, 200),
            GraphEdgeSpec::all(mon_out, GraphPort::External(2)),
            GraphEdgeSpec::all(cache_out, GraphPort::External(2)),
        ],
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        entry,
        exit,
        dep,
    }
}

fn push_and_pull(w: &mut World, dst_port: u16, expect: bool) -> bool {
    let m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).ports(40_000, dst_port).build());
    w.entry.send(m).unwrap();
    let deadline = Instant::now()
        + if expect {
            Duration::from_secs(10)
        } else {
            Duration::from_millis(300)
        };
    while Instant::now() < deadline {
        if w.exit.recv().is_some() {
            return true;
        }
        std::thread::yield_now();
    }
    false
}

fn teardown(w: World) {
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

#[test]
fn only_pure_p2p_seams_are_accelerated() {
    let w = deploy_figure1(true);
    // Acceleratable seams: firewall.out → monitor.in and
    // cache.out → exit… but exit is an external (excluded) port, so
    // exactly ONE link must be active.
    let fw_out = w.dep.vnf_ports[0][1];
    let mon_in = w.dep.vnf_ports[1][0];
    assert_eq!(
        w.node.active_links(),
        vec![(fw_out, mon_in)],
        "the firewall→monitor seam is the only pure p-2-p VM seam"
    );
    // No failures: the excluded external ports were never attempted.
    assert!(w.node.highway_failures().is_empty());
    // Exactly one bypass segment exists.
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 1);
    teardown(w);
}

#[test]
fn traffic_splits_correctly_with_the_highway_on() {
    let mut w = deploy_figure1(true);

    // DNS passes, avoiding the cache.
    assert!(push_and_pull(&mut w, 53, true));
    // Web passes, through the cache.
    assert!(push_and_pull(&mut w, 80, true));
    // Telnet dies at the firewall (over the bypassed seam it never even
    // reaches the monitor).
    assert!(!push_and_pull(&mut w, 23, false));

    let cache_seen = w.dep.vms[2].counters().forwarded.load(Ordering::Relaxed);
    assert_eq!(cache_seen, 1, "cache saw exactly the web packet");
    let monitor_seen = w.dep.vms[1].counters().forwarded.load(Ordering::Relaxed);
    assert_eq!(monitor_seen, 2, "monitor saw DNS + web, not telnet");
    teardown(w);
}

#[test]
fn split_behaviour_is_mode_invariant() {
    // The same graph, vanilla vs highway: identical per-VNF observations.
    let observe = |highway: bool| {
        let mut w = deploy_figure1(highway);
        assert!(push_and_pull(&mut w, 53, true));
        assert!(push_and_pull(&mut w, 80, true));
        assert!(!push_and_pull(&mut w, 23, false));
        let fw = w.dep.vms[0].counters().forwarded.load(Ordering::Relaxed);
        let dropped = w.dep.vms[0].counters().dropped.load(Ordering::Relaxed);
        let mon = w.dep.vms[1].counters().forwarded.load(Ordering::Relaxed);
        let cache = w.dep.vms[2].counters().forwarded.load(Ordering::Relaxed);
        teardown(w);
        (fw, dropped, mon, cache)
    };
    assert_eq!(observe(false), observe(true));
}

#[test]
fn icmp_reply_rides_the_reverse_bypass() {
    use vnf_highway::packet::{
        EtherType, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, MacAddr, ETHERNET_HEADER_LEN,
        ICMP_HEADER_LEN, IPV4_HEADER_LEN,
    };
    use vnf_highway::vnf::IcmpResponder;

    // entry → forwarder ⇄ responder. The request crosses the bypassed
    // middle seam; the responder reflects it, so the reply rides the
    // *reverse* bypass and must emerge back at the entry port.
    let node = HighwayNode::new(HighwayNodeConfig {
        policy: AccelerationPolicy::paper().exclude_port(1),
        ..HighwayNodeConfig::default()
    });
    let (mut entry, sw_end) =
        node.registry()
            .create_channel("dpdkr1", SegmentKind::DpdkrNormal, 2048);
    assert_eq!(node.orchestrator().alloc_port(), 1);
    node.switch().add_dpdkr_port(PortNo(1), "entry", sw_end);

    let me = Ipv4Addr::new(10, 0, 0, 200);
    let dep = node.orchestrator().deploy_graph(GraphSpec {
        vnfs: vec![
            (VnfSpec::forwarder("fwd"), 2),
            (
                VnfSpec {
                    name: "ping-target".into(),
                    app: AppKind::Custom(Box::new(IcmpResponder::new(me))),
                },
                2,
            ),
        ],
        edges: vec![
            GraphEdgeSpec::all(GraphPort::External(1), GraphPort::Vnf { node: 0, port: 0 }),
            // Bidirectional p-2-p middle seam (bypassed both ways).
            GraphEdgeSpec::all(
                GraphPort::Vnf { node: 0, port: 1 },
                GraphPort::Vnf { node: 1, port: 0 },
            ),
            GraphEdgeSpec::all(
                GraphPort::Vnf { node: 1, port: 0 },
                GraphPort::Vnf { node: 0, port: 1 },
            ),
            // Reverse path from the forwarder back to the entry.
            GraphEdgeSpec::all(GraphPort::Vnf { node: 0, port: 0 }, GraphPort::External(1)),
        ],
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(
        node.active_links().len(),
        2,
        "middle seam bypassed both ways"
    );

    // Build an echo request to the responder's address.
    let payload = b"hello?";
    let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + ICMP_HEADER_LEN + payload.len();
    let mut buf = vec![0u8; total];
    {
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth.set_src_addr(MacAddr::local(1));
        eth.set_dst_addr(MacAddr::local(2));
        eth.set_ethertype(EtherType::Ipv4);
    }
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
        ip.set_version_and_header_len(IPV4_HEADER_LEN);
        ip.set_total_len((total - ETHERNET_HEADER_LEN) as u16);
        ip.set_ttl(64);
        ip.set_protocol(vnf_highway::packet::IpProtocol::Icmp);
        ip.set_src_addr(Ipv4Addr::new(10, 0, 0, 1));
        ip.set_dst_addr(me);
        ip.set_flags_frag(0x4000);
        ip.fill_checksum();
    }
    {
        let off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
        let mut icmp = IcmpPacket::new_unchecked(&mut buf[off..]);
        icmp.set_icmp_type(IcmpType::EchoRequest);
        icmp.set_echo_ident(77);
        icmp.set_echo_seq(1);
        icmp.payload_mut().copy_from_slice(payload);
        icmp.fill_checksum();
    }
    entry.send(Mbuf::from_slice(&buf)).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let reply = loop {
        if let Some(m) = entry.recv() {
            break m;
        }
        assert!(Instant::now() < deadline, "no echo reply");
        std::thread::yield_now();
    };
    let key = FlowKey::extract(reply.data());
    assert_eq!(key.ipv4_src, me);
    assert_eq!(key.ipv4_dst, Ipv4Addr::new(10, 0, 0, 1));
    let l3 = &reply.data()[key.l3_offset()..];
    let ip = Ipv4Packet::new_checked(l3).unwrap();
    let icmp = IcmpPacket::new_checked(ip.payload()).unwrap();
    assert_eq!(icmp.icmp_type(), IcmpType::EchoReply);
    assert_eq!(icmp.echo_ident(), 77);
    assert!(icmp.verify_checksum());
    // Both directions of the middle seam carried exactly one packet,
    // without the switch seeing either.
    assert_eq!(
        dep.vms[1]
            .counters()
            .reflected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    node.stop();
    for vm in &dep.vms {
        vm.shutdown();
    }
}

#[test]
fn nat_chain_rewrites_over_the_bypass() {
    // A NAT VNF in a 2-VM chain: translation must be byte-identical no
    // matter which channel carries the packet.
    let node = HighwayNode::new(HighwayNodeConfig {
        policy: AccelerationPolicy::paper().exclude_port(1).exclude_port(2),
        ..HighwayNodeConfig::default()
    });
    let (mut entry, sw_end) =
        node.registry()
            .create_channel("dpdkr1", SegmentKind::DpdkrNormal, 2048);
    assert_eq!(node.orchestrator().alloc_port(), 1);
    node.switch().add_dpdkr_port(PortNo(1), "entry", sw_end);
    let (mut exit, sw_end) =
        node.registry()
            .create_channel("dpdkr2", SegmentKind::DpdkrNormal, 2048);
    assert_eq!(node.orchestrator().alloc_port(), 2);
    node.switch().add_dpdkr_port(PortNo(2), "exit", sw_end);

    let public = Ipv4Addr::new(203, 0, 113, 7);
    let dep = node.orchestrator().deploy_graph(GraphSpec {
        vnfs: vec![
            (
                VnfSpec {
                    name: "nat".into(),
                    app: AppKind::Custom(Box::new(Nat44::new(public))),
                },
                2,
            ),
            (VnfSpec::forwarder("fwd"), 2),
        ],
        edges: vec![
            GraphEdgeSpec::all(GraphPort::External(1), GraphPort::Vnf { node: 0, port: 0 }),
            GraphEdgeSpec::all(
                GraphPort::Vnf { node: 0, port: 1 },
                GraphPort::Vnf { node: 1, port: 0 },
            ),
            GraphEdgeSpec::all(GraphPort::Vnf { node: 1, port: 1 }, GraphPort::External(2)),
        ],
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(node.active_links().len(), 1, "nat→fwd seam bypassed");

    entry
        .send(Mbuf::from_slice(
            &PacketBuilder::udp_probe(64)
                .ip(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(8, 8, 8, 8))
                .ports(1234, 53)
                .build(),
        ))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let out = loop {
        if let Some(m) = exit.recv() {
            break m;
        }
        assert!(Instant::now() < deadline);
        std::thread::yield_now();
    };
    let key = FlowKey::extract(out.data());
    assert_eq!(key.ipv4_src, public, "source translated by the NAT");
    assert_eq!(key.l4_src, 40_000);
    assert_eq!(key.ipv4_dst, Ipv4Addr::new(8, 8, 8, 8));

    node.stop();
    for vm in &dep.vms {
        vm.shutdown();
    }
}
