//! Telemetry-layer smoke test (the CI gate for the observability PR).
//!
//! Drives a live multi-PMD datapath, then checks every introspection
//! surface against the same run: the structured snapshot's internal
//! accounting identities, the JSON rendering (parsed back with the
//! dependency-free parser), the appctl text commands and the Prometheus
//! exporter. The invariants are the ones an operator implicitly trusts
//! when reading `pmd-stats-show`: every lookup is attributed to exactly
//! one tier, and the stage histograms account for exactly the packets
//! the datapath processed.

use openflow::messages::FlowMod;
use openflow::{Action, FlowMatch, PortNo};
use std::time::{Duration, Instant};
use vnf_highway::highway::{HighwayNode, HighwayNodeConfig};
use vnf_highway::ovs::{VSwitchd, VSwitchdConfig};
use vnf_highway::packet::PacketBuilder;
use vnf_highway::shmem::channel;
use vnf_highway::telemetry;

const MATCHED: u64 = 512;
const MISSED: u64 = 128;

/// Builds a 4-PMD switch, pushes a mixed matched/missed workload through
/// it and returns the live-taken snapshot (PMD perf blocks deregister on
/// thread exit, so the snapshot must be taken before `stop()`).
fn run_workload() -> telemetry::TelemetrySnapshot {
    let sw = VSwitchd::new(VSwitchdConfig {
        pmd_threads: 4,
        telemetry: true,
        ..VSwitchdConfig::default()
    });
    let (in1, mut tx1) = channel("in1", 1024);
    let (in2, mut tx2) = channel("in2", 1024);
    let (out1, mut rx1) = channel("out1", 1024);
    sw.add_dpdkr_port(PortNo(1), "in1", in1);
    sw.add_dpdkr_port(PortNo(2), "in2", in2);
    sw.add_dpdkr_port(PortNo(101), "out1", out1);
    // Port 1 forwards; port 2 has no rule, so its packets are misses.
    sw.inject_flow_mod(&FlowMod::add(
        FlowMatch::in_port(PortNo(1)),
        100,
        vec![Action::Output(PortNo(101))],
    ));
    for i in 0..MATCHED {
        // 64 distinct flows so the RSS hash spreads work across all PMDs.
        let frame = PacketBuilder::udp_probe(64)
            .ports(1000 + (i % 64) as u16, 80)
            .build();
        tx1.send(vnf_highway::dpdk::Mbuf::from_slice(&frame))
            .expect("preload in1");
    }
    for i in 0..MISSED {
        let frame = PacketBuilder::udp_probe(64)
            .ports(2000 + (i % 16) as u16, 443)
            .build();
        tx2.send(vnf_highway::dpdk::Mbuf::from_slice(&frame))
            .expect("preload in2");
    }
    sw.start();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = 0u64;
    while got < MATCHED {
        if rx1.recv().is_some() {
            got += 1;
        } else {
            assert!(Instant::now() < deadline, "delivered {got}/{MATCHED}");
            std::thread::yield_now();
        }
    }
    // The missed packets carry no delivery signal; wait on the counters.
    while sw.datapath().cache_stats().lookups < MATCHED + MISSED {
        assert!(Instant::now() < deadline, "lookup counters never converged");
        std::thread::yield_now();
    }
    let snap = sw.telemetry_snapshot();
    sw.stop();
    snap
}

#[test]
fn snapshot_invariants_hold_on_a_live_multi_pmd_datapath() {
    let snap = run_workload();
    assert!(snap.enabled);
    assert_eq!(snap.pmds.len(), 4, "one perf block per PMD");

    // Tier attribution is a partition: every lookup hit exactly one tier
    // or missed — per PMD and in the datapath-wide totals.
    for p in &snap.pmds {
        assert_eq!(
            p.lookups,
            p.matched() + p.misses,
            "pmd {} lookup partition",
            p.pmd
        );
    }
    let agg = snap.aggregate();
    assert_eq!(agg.lookups, MATCHED + MISSED);
    assert_eq!(
        agg.lookups, snap.totals.lookups,
        "per-PMD == shared atomics"
    );
    assert_eq!(agg.misses, MISSED);
    assert_eq!(snap.totals.misses, MISSED);
    assert_eq!(agg.tx_packets, MATCHED, "only matched packets reach tx");

    // Stage histograms account for exactly the processed packets: every
    // packet is classified once and executed once.
    assert_eq!(
        snap.stage_summary(telemetry::Stage::Classify).count,
        agg.lookups
    );
    assert_eq!(
        snap.stage_summary(telemetry::Stage::Execute).count,
        agg.lookups
    );
    assert_eq!(snap.stage_summary(telemetry::Stage::TxFlush).count, MATCHED);
    assert_eq!(
        snap.stage_summary(telemetry::Stage::RxBurst).count,
        MATCHED + MISSED
    );

    // Tier histograms count sampled resolutions (per flow group in a
    // cycle-stamped burst), not packets.
    let tier_resolutions: u64 = telemetry::Tier::ALL
        .iter()
        .map(|&t| snap.tier_summary(t).count)
        .sum();
    assert!(tier_resolutions > 0, "first burst is always cycle-stamped");
    assert!(
        tier_resolutions <= agg.lookups,
        "≤ one resolution per packet"
    );

    // The trace sampler probed the stamped groups and retained a span.
    assert!(snap.trace_groups_observed > 0);
    assert!(snap.traces_retained >= 1, "1-in-N sampling caught group 0");

    // Coverage counters from the cache layer fired during the run.
    assert!(*snap.coverage.get("emc_insert").unwrap_or(&0) > 0);
    assert!(*snap.coverage.get("upcall_miss").unwrap_or(&0) > 0);
}

#[test]
fn snapshot_json_parses_and_matches_the_struct() {
    let snap = run_workload();
    let text = snap.to_json();
    let v = telemetry::json::parse(&text).expect("snapshot JSON must parse");

    let totals = v.get("totals").expect("totals object");
    assert_eq!(
        totals.get("lookups").and_then(|x| x.as_u64()),
        Some(snap.totals.lookups)
    );
    assert_eq!(
        totals.get("misses").and_then(|x| x.as_u64()),
        Some(snap.totals.misses)
    );
    let pmds = v
        .get("pmds")
        .and_then(|p| p.as_array())
        .expect("pmds array");
    assert_eq!(pmds.len(), snap.pmds.len());
    let json_lookups: u64 = pmds
        .iter()
        .map(|p| p.get("lookups").and_then(|x| x.as_u64()).unwrap())
        .sum();
    assert_eq!(json_lookups, snap.aggregate().lookups);
    let classify = v
        .get("stage_totals")
        .and_then(|s| s.get("classify"))
        .expect("classify stage summary");
    assert_eq!(
        classify.get("count").and_then(|x| x.as_u64()),
        Some(snap.stage_summary(telemetry::Stage::Classify).count)
    );
    assert!(v.get("coverage").is_some());
}

#[test]
fn appctl_surfaces_render_from_a_live_node() {
    // The node-level surface: a multi-PMD HighwayNode delegating appctl
    // to the switch, plus the drop classes in the status report.
    let mut cfg = HighwayNodeConfig::default();
    cfg.switch.pmd_threads = 2;
    cfg.switch.telemetry = true;
    let node = HighwayNode::new(cfg);
    node.start();

    // PMD threads register their perf blocks as they come up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while node.telemetry_snapshot().pmds.len() < 2 {
        assert!(Instant::now() < deadline, "PMDs never registered");
        std::thread::yield_now();
    }

    let stats = node.appctl("dpif-netdev/pmd-stats-show");
    assert!(stats.contains("pmd thread numa_id 0 core_id 0:"));
    assert!(stats.contains("pmd thread numa_id 0 core_id 1:"));
    assert!(stats.contains("emc hits:"));

    let perf = node.appctl("pmd-perf-show");
    assert!(perf.contains("iterations:"));

    let hist = node.appctl("histograms/show");
    assert!(hist.contains("classify"));

    let prom = node.prometheus_text();
    assert!(prom.contains("highway_datapath_lookups_total"));
    assert!(prom.contains("highway_datapath_hits_total{tier=\"emc\"}"));

    let unknown = node.appctl("no-such-command");
    assert!(unknown.contains("unknown command"));

    // Satellite: the dpctl-style stats block surfaces the drop classes.
    let report = node.status_report();
    assert!(report.contains("lookups: hit:"));
    assert!(report.contains("drops: miss:"));
    assert!(report.contains("tx_no_port:"));
    assert!(report.contains("fanout:"));

    node.stop();
}
