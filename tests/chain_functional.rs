//! Functional twins of the throughput experiments (E1/E2): the same chain
//! deployments, verified for *correctness* rather than speed — every packet
//! arrives exactly once, intact and in order, in both modes; and in highway
//! mode the switch genuinely stops seeing the inner seams' traffic.

use std::collections::HashSet;
use std::time::{Duration, Instant};
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};

struct World {
    node: HighwayNode,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: vnf_highway::vm::ChainDeployment,
}

fn deploy(n_vms: usize, highway: bool) -> World {
    let node = HighwayNode::new(if highway {
        HighwayNodeConfig::default()
    } else {
        HighwayNodeConfig::vanilla()
    });
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);
    let dep = node
        .orchestrator()
        .deploy_chain(n_vms, entry_no, exit_no, |i| {
            VnfSpec::forwarder(format!("vm{i}"))
        });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        entry,
        exit,
        dep,
    }
}

fn push(entry: &mut ChannelEnd, count: u64, base_seq: u64) {
    for seq in 0..count {
        let pkt = PacketBuilder::udp_probe(64).seq(base_seq + seq).build();
        let mut m = Mbuf::from_slice(&pkt);
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Receives `count` probes, checking integrity; returns their sequences.
fn collect(exit: &mut ChannelEnd, count: u64, timeout: Duration) -> Vec<u64> {
    let mut seqs = Vec::new();
    let deadline = Instant::now() + timeout;
    while (seqs.len() as u64) < count && Instant::now() < deadline {
        match exit.recv() {
            Some(m) => {
                assert_eq!(m.len(), 64, "frame length preserved");
                let probe = ProbeHeader::from_frame(m.data()).expect("intact probe");
                seqs.push(probe.seq);
            }
            None => std::thread::yield_now(),
        }
    }
    seqs
}

fn run_chain(n_vms: usize, highway: bool) {
    const N: u64 = 400;
    let mut w = deploy(n_vms, highway);
    push(&mut w.entry, N, 0);
    let seqs = collect(&mut w.exit, N, Duration::from_secs(20));
    assert_eq!(
        seqs.len() as u64,
        N,
        "no loss (n={n_vms}, highway={highway})"
    );
    let unique: HashSet<_> = seqs.iter().collect();
    assert_eq!(unique.len() as u64, N, "no duplication");
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "single-path chain preserves order");

    if highway {
        // Inner seams must have been bypassed: the switch-side port of every
        // inner VM egress saw (almost) nothing. "Almost": packets forwarded
        // before the bypass activated — here zero, since we waited for
        // convergence before sending.
        for i in 0..n_vms - 1 {
            let inner_egress = w.dep.vm_ports[i].1;
            let port = w
                .node
                .switch()
                .datapath()
                .port(PortNo(inner_egress as u16))
                .expect("port exists");
            assert_eq!(
                port.stats().ipackets,
                0,
                "switch must not see bypassed seam {inner_egress}"
            );
        }
    }
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

#[test]
fn vanilla_chain_of_2_delivers_everything() {
    run_chain(2, false);
}

#[test]
fn vanilla_chain_of_3_delivers_everything() {
    run_chain(3, false);
}

#[test]
fn highway_chain_of_2_delivers_everything_and_bypasses() {
    run_chain(2, true);
}

#[test]
fn highway_chain_of_3_delivers_everything_and_bypasses() {
    run_chain(3, true);
}

#[test]
fn bidirectional_traffic_both_modes() {
    for highway in [false, true] {
        let mut w = deploy(2, highway);
        const N: u64 = 150;
        // Forward direction.
        push(&mut w.entry, N, 0);
        let fwd = collect(&mut w.exit, N, Duration::from_secs(15));
        assert_eq!(fwd.len() as u64, N, "forward, highway={highway}");
        // Reverse direction (the chains carry rules both ways).
        push(&mut w.exit, N, 1000);
        let rev = collect(&mut w.entry, N, Duration::from_secs(15));
        assert_eq!(rev.len() as u64, N, "reverse, highway={highway}");
        assert!(rev.iter().all(|s| *s >= 1000), "no cross-direction leak");
        w.node.stop();
        for vm in &w.dep.vms {
            vm.shutdown();
        }
    }
}

#[test]
fn highway_chain_is_zero_copy_end_to_end() {
    // The arena census proves the tentpole property: across an N-hop
    // highway chain the payload bytes are written exactly once (the
    // generator's ingress copy) — every hop after that moves descriptors.
    const N: u64 = 300;
    let mut w = deploy(3, true);
    let arena = w.node.registry().hugepage_arena();
    let base = arena.stats();
    let base_in_use = arena.in_use();

    for seq in 0..N {
        let pkt = PacketBuilder::udp_probe(64).seq(seq).build();
        let mut m = Mbuf::from_arena(arena.alloc_from(&pkt).expect("arena sized for the test"));
        loop {
            match w.entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
    let seqs = collect(&mut w.exit, N, Duration::from_secs(20));
    assert_eq!(seqs.len() as u64, N, "no loss across the arena chain");
    let unique: HashSet<_> = seqs.iter().collect();
    assert_eq!(unique.len() as u64, N, "no duplication");

    let stats = arena.stats();
    assert_eq!(stats.allocs - base.allocs, N);
    assert_eq!(
        stats.slab_writes - base.slab_writes,
        N,
        "a hop wrote payload bytes: the chain is not zero-copy"
    );
    assert_eq!(stats.foreign_frees, 0, "every free went to its home arena");

    // Teardown releases every slot the chain ever held.
    let node = w.node;
    drop(w.entry);
    drop(w.exit);
    node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
    drop(w.dep);
    drop(node);
    arena.reclaim_credits();
    assert_eq!(arena.in_use(), base_in_use, "arena slots leaked");
}

#[test]
fn highway_bypass_segments_match_inner_seams() {
    let w = deploy(4, true);
    // 3 inner seams, one shared segment each (both directions).
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 3);
    assert_eq!(w.node.active_links().len(), 6); // 3 seams × 2 directions
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}
