//! The PR's acceptance proof: one byte-identical OpenFlow 1.0 switch
//! stream drives two very different controller applications — the built-in
//! highway chain-steering controller and the ported learning switch —
//! through the same `Transport`/`Connection` API, and both consume every
//! frame.

use std::sync::Arc;
use std::time::Duration;
use vnf_highway::highway::ChainSteering;
use vnf_highway::openflow::codec::encode;
use vnf_highway::openflow::messages::{OfpMessage, PacketIn, PacketInReason};
use vnf_highway::openflow::{ControllerApp, ControllerRuntime, LearningSwitch, ScriptedTransport};
use vnf_highway::packet::{MacAddr, PacketBuilder};
use vnf_highway::prelude::PortNo;

/// The canned switch→controller stream. Xids 1 and 2 answer the
/// handshake a fresh `Connection` deterministically emits (hello = xid 1,
/// features-request = xid 2); xid 5 acknowledges the barrier
/// `ChainSteering` sends after its two seams (flow-mods take xids 3–4).
fn switch_stream() -> Vec<u8> {
    let a = MacAddr::local(1);
    let b = MacAddr::local(2);
    let pkt = |src, dst| PacketBuilder::udp_probe(64).eth(src, dst).build();
    let mut bytes = Vec::new();
    bytes.extend(encode(&OfpMessage::Hello, 1));
    bytes.extend(encode(
        &OfpMessage::FeaturesReply {
            datapath_id: 0xfeed,
            ports: vec![1, 2, 3],
        },
        2,
    ));
    bytes.extend(encode(&OfpMessage::EchoRequest(b"ping".to_vec()), 7));
    bytes.extend(encode(
        &OfpMessage::PacketIn(PacketIn {
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: pkt(a, b),
        }),
        100,
    ));
    bytes.extend(encode(
        &OfpMessage::PacketIn(PacketIn {
            in_port: PortNo(2),
            reason: PacketInReason::NoMatch,
            data: pkt(b, a),
        }),
        101,
    ));
    bytes.extend(encode(&OfpMessage::BarrierReply, 5));
    bytes
}

/// Runs `app` against the canned stream (chunked into 5-byte reads to
/// force reassembly) and returns the app plus the transport handle for
/// inspecting what the controller wrote back.
fn drive<A: ControllerApp>(app: A) -> (ControllerRuntime<A>, Arc<ScriptedTransport>) {
    let transport = Arc::new(ScriptedTransport::new(switch_stream()).with_chunk(5));
    let conn = vnf_highway::openflow::Connection::new(Box::new(Arc::clone(&transport)));
    let mut rt = ControllerRuntime::new(conn, app);
    rt.run_until_ready(Duration::from_secs(2)).expect("ready");
    for _ in 0..50 {
        rt.poll();
    }
    (rt, transport)
}

#[test]
fn one_stream_drives_both_controller_apps() {
    // The stream really is byte-identical, not merely equivalent.
    assert_eq!(switch_stream(), switch_stream());

    let (steering, steer_io) = drive(ChainSteering::from_pairs(&[(1, 2), (2, 3)]));
    let (learning, learn_io) = drive(LearningSwitch::new());

    // Both connections completed the handshake off the same bytes.
    for rt in [
        steering.connection().features().expect("steering features"),
        learning.connection().features().expect("learning features"),
    ] {
        assert_eq!(rt.datapath_id, 0xfeed);
        assert_eq!(rt.ports, vec![1, 2, 3]);
    }

    // Every scripted byte was consumed and framed by both.
    assert_eq!(steer_io.unread(), 0);
    assert_eq!(learn_io.unread(), 0);

    // The chain-steering app installed its seams and saw the barrier ack;
    // the packet-ins were counted but did not perturb it.
    assert!(steering.app().settled(), "barrier ack must settle steering");
    assert_eq!(steering.app().packet_ins(), 2);

    // The learning switch learned both hosts and installed the pair of
    // rules once the second packet-in revealed the return path.
    assert_eq!(learning.app().known_hosts().len(), 2);
    assert_eq!(learning.app().flows_installed(), 2);

    // Both auto-answered the switch's keepalive probe with the echoed
    // payload — the reply is in each app's outbound byte stream.
    let echo_reply = encode(&OfpMessage::EchoReply(b"ping".to_vec()), 7);
    for written in [steer_io.written(), learn_io.written()] {
        assert!(
            written
                .windows(echo_reply.len())
                .any(|w| w == echo_reply.as_slice()),
            "echo reply missing from controller output"
        );
    }
}
