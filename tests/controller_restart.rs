//! Controller kill and restart in the middle of a flow-mod storm, end to
//! end: the connection's replay log re-installs every unacknowledged rule
//! over the fresh transport, the switch applies the duplicates
//! idempotently (an OpenFlow 1.0 `Add` replaces — it must NOT emit
//! `FlowRemoved`), and the highway converges as if the controller had
//! never died.

use std::collections::HashMap;
use std::time::{Duration, Instant};
use vnf_highway::openflow::{
    faulty_pair, Connection, FaultConfig, FlowMod, OfpMessage, SwitchLink,
};
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};

struct World {
    node: HighwayNode,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: vnf_highway::vm::ChainDeployment,
    mid: (u32, u32),
}

/// A 2-VM chain whose middle-seam rules are stripped, so the test's own
/// controller decides when the bypass-triggering rule appears.
fn deploy() -> World {
    let node = HighwayNode::new(HighwayNodeConfig::default());
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);
    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    let mid = (dep.vm_ports[0].1, dep.vm_ports[1].0);
    node.switch()
        .inject_flow_mod(&FlowMod::delete(FlowMatch::in_port(PortNo(mid.0 as u16))));
    node.switch()
        .inject_flow_mod(&FlowMod::delete(FlowMatch::in_port(PortNo(mid.1 as u16))));
    node.start();
    World {
        node,
        entry,
        exit,
        dep,
        mid,
    }
}

fn traffic_flows(w: &mut World, seq: u64) -> bool {
    let m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
    w.entry.send(m).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Some(m) = w.exit.recv() {
            assert_eq!(ProbeHeader::from_frame(m.data()).unwrap().seq, seq);
            return true;
        }
        std::thread::yield_now();
    }
    false
}

/// Drains the controller's async inbox, tallying `FlowRemoved` per cookie.
fn drain_flow_removed(ctrl: &Connection, into: &mut HashMap<u64, usize>) {
    while let Some(Ok((msg, _xid))) = ctrl.try_recv() {
        if let OfpMessage::FlowRemoved(fr) = msg {
            *into.entry(fr.cookie).or_insert(0) += 1;
        }
    }
}

/// Storm cookies: the bypass-triggering middle rule plus a page of
/// bystander rules on otherwise-unused ports.
const MID_COOKIE: u64 = 0xaa;
const STORM: usize = 30;

fn storm_cookie(i: usize) -> u64 {
    0x9000 + i as u64
}

#[test]
fn restart_mid_storm_replays_and_converges() {
    let mut w = deploy();

    // The controller speaks over a cuttable transport; the switch side is
    // attached exactly like `connect_controller` would.
    let (c_end, s_end, ctl) = faulty_pair(FaultConfig::default());
    w.node
        .switch()
        .attach_controller(SwitchLink::new(Box::new(s_end)));
    let ctrl = Connection::new(Box::new(c_end));
    ctrl.handshake(Duration::from_secs(5)).expect("handshake");
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));

    // Flow-mod storm: the middle-seam rule early on, then bystanders.
    // The transport is cut midway — a controller crash mid-storm.
    let mut failed_sends = 0usize;
    for i in 0..STORM {
        if i == STORM / 2 {
            ctl.cut();
        }
        let (fmatch, actions, cookie) = if i == 2 {
            (
                FlowMatch::in_port(PortNo(w.mid.0 as u16)),
                vec![Action::Output(PortNo(w.mid.1 as u16))],
                MID_COOKIE,
            )
        } else {
            (
                FlowMatch::in_port(PortNo(500 + i as u16)),
                vec![Action::Output(PortNo(600 + i as u16))],
                storm_cookie(i),
            )
        };
        if ctrl.add_flow(fmatch, 100, actions, cookie).is_err() {
            failed_sends += 1;
        }
    }
    assert!(failed_sends > 0, "the cut must interrupt the storm");
    assert_eq!(
        ctrl.unacked_flow_mods(),
        STORM,
        "nothing was barrier-acknowledged before the crash"
    );

    // Controller restart: fresh transport on both sides, replay of every
    // unacknowledged flow mod, fenced by an internal barrier.
    w.node.reconnect_controller(&ctrl);
    ctrl.barrier(Duration::from_secs(5))
        .expect("post-replay barrier");
    assert_eq!(ctrl.unacked_flow_mods(), 0, "replay log retired");

    // Replayed Adds replace their earlier copies; none may surface as a
    // FlowRemoved to the controller.
    let mut removed = HashMap::new();
    drain_flow_removed(&ctrl, &mut removed);
    assert!(
        removed.is_empty(),
        "replay produced spurious FlowRemoved: {removed:?}"
    );

    // Every storm rule is installed exactly once, with the actions of its
    // one true version — no stale or duplicated state.
    let stats = ctrl.flow_stats(Duration::from_secs(5)).expect("stats");
    for i in 0..STORM {
        let (cookie, want_out) = if i == 2 {
            (MID_COOKIE, w.mid.1 as u16)
        } else {
            (storm_cookie(i), 600 + i as u16)
        };
        let matching: Vec<_> = stats.iter().filter(|e| e.cookie == cookie).collect();
        assert_eq!(matching.len(), 1, "cookie {cookie:#x} must appear once");
        assert_eq!(
            matching[0].actions,
            vec![Action::Output(PortNo(want_out))],
            "stale actions for cookie {cookie:#x}"
        );
    }

    // The highway saw the replayed middle rule and spliced the bypass.
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links(), vec![(w.mid.0, w.mid.1)]);
    assert!(traffic_flows(&mut w, 1), "traffic over the replayed chain");

    // Deleting everything yields exactly one FlowRemoved per cookie: the
    // replay really did not leave hidden duplicates behind.
    ctrl.send(&OfpMessage::FlowMod(FlowMod::delete_strict(
        FlowMatch::in_port(PortNo(w.mid.0 as u16)),
        100,
    )))
    .unwrap();
    for i in (0..STORM).filter(|&i| i != 2) {
        ctrl.send(&OfpMessage::FlowMod(FlowMod::delete_strict(
            FlowMatch::in_port(PortNo(500 + i as u16)),
            100,
        )))
        .unwrap();
    }
    ctrl.barrier(Duration::from_secs(5))
        .expect("delete barrier");
    let mut removed = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while removed.len() < STORM && Instant::now() < deadline {
        drain_flow_removed(&ctrl, &mut removed);
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(removed.len(), STORM, "one FlowRemoved per deleted cookie");
    for (cookie, n) in &removed {
        assert_eq!(*n, 1, "cookie {cookie:#x} removed {n} times");
    }

    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

/// A second, sharper angle on the same property: two crashes in a row
/// (the replay itself is interrupted) still converge — the log survives
/// until a barrier retires it.
#[test]
fn replay_survives_a_second_crash() {
    let w = deploy();

    let (c_end, s_end, ctl) = faulty_pair(FaultConfig::default());
    w.node
        .switch()
        .attach_controller(SwitchLink::new(Box::new(s_end)));
    let ctrl = Connection::new(Box::new(c_end));
    ctrl.handshake(Duration::from_secs(5)).expect("handshake");

    for i in 0..4 {
        let _ = ctrl.add_flow(
            FlowMatch::in_port(PortNo(700 + i as u16)),
            90,
            vec![Action::Output(PortNo(800 + i as u16))],
            0xb000 + i as u64,
        );
    }
    ctl.cut();

    // First restart over another cuttable link, cut again immediately:
    // the replayed mods go into the void (or partially arrive).
    let (c2, s2, ctl2) = faulty_pair(FaultConfig::default());
    w.node
        .switch()
        .attach_controller(SwitchLink::new(Box::new(s2)));
    ctrl.reconnect(Box::new(c2));
    ctl2.cut();
    assert_eq!(ctrl.unacked_flow_mods(), 4, "log intact after second cut");

    // Second restart over a healthy link finally lands everything.
    w.node.reconnect_controller(&ctrl);
    ctrl.barrier(Duration::from_secs(5)).expect("final barrier");
    assert_eq!(ctrl.unacked_flow_mods(), 0);
    let stats = ctrl.flow_stats(Duration::from_secs(5)).expect("stats");
    for i in 0..4u64 {
        assert_eq!(
            stats.iter().filter(|e| e.cookie == 0xb000 + i).count(),
            1,
            "cookie {:#x} must appear exactly once",
            0xb000 + i
        );
    }

    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}
