//! Control-plane failure injection, end to end: QEMU hot-plugs and
//! virtio-serial round-trips fail on demand while the full node (switch +
//! detector + manager + agent + guests) is running. The properties under
//! test are the ones §2's choreography implies but the paper never had
//! room to demonstrate:
//!
//! 1. a failed bypass setup leaves the *data path intact* — traffic keeps
//!    flowing through the switch as if the highway did not exist;
//! 2. failures leave no half-plugged devices or leaked segments;
//! 3. the highway recovers on the next table change, without operator
//!    intervention.

use std::time::{Duration, Instant};
use vnf_highway::highway::BypassEventKind;
use vnf_highway::prelude::*;
use vnf_highway::shmem::{ChannelEnd, SegmentKind};
use vnf_highway::vm::FaultOp;

struct World {
    node: HighwayNode,
    ctrl: vnf_highway::openflow::Connection,
    entry: ChannelEnd,
    exit: ChannelEnd,
    dep: vnf_highway::vm::ChainDeployment,
    mid: (u32, u32),
}

/// A 2-VM highway chain whose middle-seam rules are NOT yet installed —
/// each test decides when to trigger detection (and under which faults).
fn deploy_without_middle_rules() -> World {
    let node = HighwayNode::new(HighwayNodeConfig::default());
    let entry_no = node.orchestrator().alloc_port();
    let (entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);
    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    let mid = (dep.vm_ports[0].1, dep.vm_ports[1].0);
    // Remove the middle-seam rules deploy_chain installed (both ways).
    node.switch()
        .inject_flow_mod(&vnf_highway::openflow::FlowMod::delete(FlowMatch::in_port(
            PortNo(mid.0 as u16),
        )));
    node.switch()
        .inject_flow_mod(&vnf_highway::openflow::FlowMod::delete(FlowMatch::in_port(
            PortNo(mid.1 as u16),
        )));
    node.start();
    let ctrl = node.connect_controller();
    assert!(node.wait_highway_converged(Duration::from_secs(15)));
    World {
        node,
        ctrl,
        entry,
        exit,
        dep,
        mid,
    }
}

fn install_middle_rule(w: &World, cookie: u64) {
    w.ctrl
        .add_flow(
            FlowMatch::in_port(PortNo(w.mid.0 as u16)),
            100,
            vec![Action::Output(PortNo(w.mid.1 as u16))],
            cookie,
        )
        .unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
}

fn remove_middle_rule(w: &World) {
    w.ctrl
        .del_flow_strict(FlowMatch::in_port(PortNo(w.mid.0 as u16)), 100)
        .unwrap();
    w.ctrl.barrier(Duration::from_secs(3)).unwrap();
}

fn traffic_flows(w: &mut World, seq: u64) -> bool {
    let m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
    w.entry.send(m).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Some(m) = w.exit.recv() {
            assert_eq!(ProbeHeader::from_frame(m.data()).unwrap().seq, seq);
            return true;
        }
        std::thread::yield_now();
    }
    false
}

fn teardown(w: World) {
    w.node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
}

#[test]
fn failed_setup_leaves_data_path_intact_and_recovers() {
    let mut w = deploy_without_middle_rules();
    let journal = w.node.journal().unwrap().clone();

    // Arm a hot-plug failure, then let the detector find the link.
    w.node.agent().faults().arm(FaultOp::Plug, 1);
    install_middle_rule(&w, 0xf001);

    assert!(
        journal.wait_for(
            BypassEventKind::SetupFailed,
            w.mid.0,
            w.mid.1,
            Duration::from_secs(10)
        ),
        "setup failure recorded"
    );
    assert!(w.node.active_links().is_empty());
    assert!(!w.node.highway_failures().is_empty());
    // Atomicity: nothing leaked.
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 0);
    for vm in &w.dep.vms {
        assert!(vm.plugged_devices().is_empty());
    }

    // The property that matters to tenants: traffic flows regardless,
    // through the normal path.
    assert!(
        traffic_flows(&mut w, 1),
        "switch path unaffected by the failure"
    );

    // Recovery: the next table change re-arms the desire; no faults now.
    remove_middle_rule(&w);
    install_middle_rule(&w, 0xf002);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links(), vec![(w.mid.0, w.mid.1)]);
    assert!(traffic_flows(&mut w, 2), "now over the bypass");
    teardown(w);
}

#[test]
fn failed_guest_reconfiguration_rolls_back_cleanly() {
    let mut w = deploy_without_middle_rules();
    let journal = w.node.journal().unwrap().clone();

    // Fail the last serial step (enable-tx) of the fresh-pair setup:
    // map, map, enable-rx succeed; enable-tx fails.
    w.node.agent().faults().arm_after(FaultOp::Serial, 3, 1);
    install_middle_rule(&w, 0xf003);
    assert!(journal.wait_for(
        BypassEventKind::SetupFailed,
        w.mid.0,
        w.mid.1,
        Duration::from_secs(10)
    ));
    // Rollback reached the guests: devices unplugged, segment released.
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 0);
    for vm in &w.dep.vms {
        assert!(vm.plugged_devices().is_empty());
    }
    assert!(traffic_flows(&mut w, 1));

    // A retry after the rollback works — the guests' PMDs are pristine.
    remove_middle_rule(&w);
    install_middle_rule(&w, 0xf004);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert!(traffic_flows(&mut w, 2));
    teardown(w);
}

#[test]
fn failed_teardown_is_best_effort_and_recoverable() {
    let mut w = deploy_without_middle_rules();
    let journal = w.node.journal().unwrap().clone();

    install_middle_rule(&w, 0xf005);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert!(traffic_flows(&mut w, 1));

    // Fail the first teardown step (disable-tx), then revoke the link.
    w.node.agent().faults().arm(FaultOp::Serial, 1);
    remove_middle_rule(&w);
    assert!(journal.wait_for(
        BypassEventKind::TeardownFailed,
        w.mid.0,
        w.mid.1,
        Duration::from_secs(10)
    ));
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    // Best-effort teardown still cleaned the host side.
    assert!(w.node.active_links().is_empty());
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 0);
    for vm in &w.dep.vms {
        assert!(vm.plugged_devices().is_empty());
    }

    // And a later bypass on the same seam works from scratch.
    install_middle_rule(&w, 0xf006);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links().len(), 1);
    assert!(traffic_flows(&mut w, 2));
    teardown(w);
}

#[test]
fn rolling_reconfiguration_leaks_no_arena_slots() {
    // Arena leak census under churn: arena-backed traffic is in flight
    // while the bypass link is repeatedly torn down (sometimes under an
    // injected fault, like a rolling VNF upgrade gone wrong) and rebuilt.
    // Whatever path each packet ends on — delivered, drained through the
    // app at teardown, or dropped in a dying ring — its slot must come
    // home to the arena.
    let mut w = deploy_without_middle_rules();
    let arena = w.node.registry().hugepage_arena();
    install_middle_rule(&w, 0x9000);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));

    let mut seq = 0u64;
    for round in 0..3u64 {
        // Load: a burst of arena-backed probes racing the reconfiguration.
        for _ in 0..50 {
            let pkt = PacketBuilder::udp_probe(64).seq(seq).build();
            let mut m = Mbuf::from_arena(arena.alloc_from(&pkt).expect("arena sized for the test"));
            loop {
                match w.entry.send(m) {
                    Ok(()) => break,
                    Err(ret) => {
                        m = ret;
                        std::thread::yield_now();
                    }
                }
            }
            seq += 1;
        }
        // Odd rounds: the teardown's first serial step fails mid-flight.
        if round % 2 == 1 {
            w.node.agent().faults().arm(FaultOp::Serial, 1);
        }
        remove_middle_rule(&w);
        assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
        install_middle_rule(&w, 0x9100 + round);
        assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    }

    // Drain whatever made it through (loss across an unmap is allowed;
    // leaks are not).
    let quiet = Instant::now() + Duration::from_secs(3);
    let mut delivered = 0u64;
    while Instant::now() < quiet {
        if w.exit.recv().is_some() {
            delivered += 1;
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(delivered > 0, "churn swallowed all traffic");

    // Census: stop the node, drop every ring, reclaim credits — all
    // slots home, no foreign frees.
    let node = w.node;
    drop(w.entry);
    drop(w.exit);
    node.stop();
    for vm in &w.dep.vms {
        vm.shutdown();
    }
    drop(w.dep);
    drop(w.ctrl);
    drop(node);
    arena.reclaim_credits();
    assert_eq!(arena.in_use(), 0, "arena slots leaked: {:?}", arena.stats());
    assert_eq!(arena.stats().foreign_frees, 0);
}

#[test]
fn repeated_failures_never_wedge_the_manager() {
    let mut w = deploy_without_middle_rules();

    // Ten consecutive failed setups (alternating plug and serial faults).
    for round in 0..10u64 {
        if round % 2 == 0 {
            w.node.agent().faults().arm(FaultOp::Plug, 1);
        } else {
            w.node.agent().faults().arm(FaultOp::Serial, 1);
        }
        install_middle_rule(&w, 0x1000 + round);
        let deadline = Instant::now() + Duration::from_secs(10);
        while (w.node.highway_failures().len() as u64) <= round && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        remove_middle_rule(&w);
    }
    assert!(w.node.highway_failures().len() >= 10);
    assert_eq!(w.node.registry().live_of_kind(SegmentKind::Bypass).len(), 0);

    // After the storm: a clean setup still works first try.
    install_middle_rule(&w, 0x2000);
    assert!(w.node.wait_highway_converged(Duration::from_secs(15)));
    assert_eq!(w.node.active_links().len(), 1);
    assert!(traffic_flows(&mut w, 99));
    teardown(w);
}
