//! # nic-sim
//!
//! The hardware edge of the testbed, simulated: an Intel 82599ES-style
//! 10 GbE NIC ([`NicModel`]), a PCIe bandwidth budget ([`PcieBus`]), and the
//! traffic generator / sink pair used by the paper's evaluation
//! ([`TrafficGen`], [`TrafficSink`]).
//!
//! The NIC enforces Ethernet framing economics exactly: every frame costs
//! its length plus 20 B of preamble + inter-frame gap on the wire, so a
//! 10 Gb/s port saturates at 14.88 Mpps with 64 B frames — the ceiling
//! visible in the paper's Figure 3(b).

pub mod nic;
pub mod traffic;

// The latency histogram was born here for the traffic sink; it now lives
// in the `telemetry` crate so the datapath's stage/tier histograms share
// one implementation. Re-exported for source compatibility.
pub use nic::{LineRate, NicModel, PcieBus};
pub use telemetry::hist;
pub use telemetry::LatencyHistogram;
pub use traffic::{TrafficGen, TrafficSink};

/// Per-frame wire overhead: 8 B preamble/SFD + 12 B inter-frame gap.
pub const WIRE_OVERHEAD_BYTES: u64 = 20;

/// Theoretical packets-per-second ceiling of a line rate for a frame size.
/// `frame_len` is the conventional wire frame length *including* the FCS
/// (the "64 B packets" of the paper), to which preamble + IFG are added.
pub fn line_rate_pps(gbps: f64, frame_len: usize) -> f64 {
    let wire_bits = ((frame_len as u64 + WIRE_OVERHEAD_BYTES) * 8) as f64;
    gbps * 1e9 / wire_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_matches_the_well_known_constants() {
        // 64 B at 10 GbE: 14.88 Mpps.
        let pps = line_rate_pps(10.0, 64);
        assert!((pps / 1e6 - 14.880).abs() < 0.01, "got {} Mpps", pps / 1e6);
        // 1518 B at 10 GbE: ~812 kpps.
        let pps = line_rate_pps(10.0, 1518);
        assert!((pps / 1e3 - 812.74).abs() < 1.0, "got {} kpps", pps / 1e3);
    }
}
