//! Traffic generation and measurement.
//!
//! [`TrafficGen`] plays the role of the paper's external generator: 64 B
//! UDP probes, optionally rate-limited, spread across a configurable number
//! of flows. Every probe carries a sequence number and a transmit cycle
//! stamp, which [`TrafficSink`] uses to report throughput, loss, reordering
//! and latency percentiles.

use dpdk_sim::{cycles, Mbuf};
use packet_wire::{MacAddr, PacketBuilder, ProbeHeader};
use std::net::Ipv4Addr;
use telemetry::LatencyHistogram;

/// A probe generator.
pub struct TrafficGen {
    templates: Vec<Vec<u8>>,
    next_flow: usize,
    next_seq: u64,
    /// Target rate in packets/sec; `None` = as fast as the consumer drains.
    rate_pps: Option<f64>,
    credit: f64,
    last_refill: u64,
    /// Packets generated.
    pub generated: u64,
}

impl TrafficGen {
    /// Creates a generator of `frame_len`-byte probes over `flows` distinct
    /// UDP flows (source ports vary, keys differ — exercises the EMC).
    pub fn new(frame_len: usize, flows: usize) -> TrafficGen {
        let flows = flows.max(1);
        let templates = (0..flows)
            .map(|i| {
                PacketBuilder::udp_probe(frame_len)
                    .eth(MacAddr::local(1), MacAddr::local(2))
                    .ip(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                    .ports(1000 + i as u16, 2000)
                    .no_checksums()
                    .build()
            })
            .collect();
        TrafficGen {
            templates,
            next_flow: 0,
            next_seq: 0,
            rate_pps: None,
            credit: 0.0,
            last_refill: cycles::now(),
            generated: 0,
        }
    }

    /// Caps generation at `pps` packets per second.
    pub fn with_rate(mut self, pps: f64) -> TrafficGen {
        self.rate_pps = Some(pps);
        self.credit = 0.0;
        self
    }

    fn budget(&mut self, want: usize) -> usize {
        match self.rate_pps {
            None => want,
            Some(pps) => {
                let now = cycles::now();
                let elapsed = now.saturating_sub(self.last_refill);
                self.last_refill = now;
                self.credit += elapsed as f64 * pps / cycles::CPU_HZ as f64;
                self.credit = self.credit.min(4096.0);
                let allowed = self.credit as usize;
                let n = want.min(allowed);
                self.credit -= n as f64;
                n
            }
        }
    }

    /// Produces up to `max` probes into `out`; returns how many.
    pub fn gen_burst(&mut self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let n = self.budget(max);
        let now = cycles::now();
        for _ in 0..n {
            let template = &self.templates[self.next_flow];
            self.next_flow = (self.next_flow + 1) % self.templates.len();
            let mut m = Mbuf::from_slice(template);
            ProbeHeader::stamp_frame(
                // stamp_frame needs the raw bytes; operate on the mbuf data
                m.data_mut(),
                self.next_seq,
                now,
            );
            m.udata = self.next_seq;
            m.timestamp = now;
            self.next_seq += 1;
            out.push(m);
        }
        self.generated += n as u64;
        n
    }
}

/// A measuring sink.
#[derive(Debug)]
pub struct TrafficSink {
    /// Packets received.
    pub received: u64,
    /// Bytes received.
    pub bytes: u64,
    /// Packets whose sequence number went backwards (reordering signal).
    pub reordered: u64,
    highest_seq: Option<u64>,
    latency: LatencyHistogram,
    started_at: u64,
    first_rx: Option<u64>,
    last_rx: u64,
}

impl Default for TrafficSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficSink {
    /// Creates an empty sink.
    pub fn new() -> TrafficSink {
        TrafficSink {
            received: 0,
            bytes: 0,
            reordered: 0,
            highest_seq: None,
            latency: LatencyHistogram::new(),
            started_at: cycles::now(),
            first_rx: None,
            last_rx: 0,
        }
    }

    /// Consumes a burst of delivered probes.
    pub fn consume(&mut self, pkts: &mut Vec<Mbuf>) {
        let now = cycles::now();
        for m in pkts.drain(..) {
            self.received += 1;
            self.bytes += m.len() as u64;
            if self.first_rx.is_none() {
                self.first_rx = Some(now);
            }
            self.last_rx = now;
            if let Some(probe) = ProbeHeader::from_frame(m.data()) {
                if let Some(h) = self.highest_seq {
                    if probe.seq < h {
                        self.reordered += 1;
                    }
                }
                self.highest_seq = Some(self.highest_seq.unwrap_or(0).max(probe.seq));
                if probe.tx_cycles > 0 && probe.tx_cycles <= now {
                    self.latency.record(now - probe.tx_cycles);
                }
            }
        }
    }

    /// Packets lost so far, judged by the highest sequence seen
    /// (valid once the generator has stopped).
    pub fn lost(&self) -> u64 {
        match self.highest_seq {
            Some(h) => (h + 1).saturating_sub(self.received),
            None => 0,
        }
    }

    /// Receive throughput over the observation window, in Mpps.
    pub fn rate_mpps(&self) -> f64 {
        match self.first_rx {
            Some(first) if self.last_rx > first => {
                let secs = cycles::to_duration(self.last_rx - first).as_secs_f64();
                self.received as f64 / secs / 1e6
            }
            _ => 0.0,
        }
    }

    /// Latency histogram of delivered probes.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Seconds since the sink was created.
    pub fn elapsed_secs(&self) -> f64 {
        cycles::to_duration(cycles::now() - self.started_at).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_distinct_flows_and_sequences() {
        let mut gen = TrafficGen::new(64, 4);
        let mut out = Vec::new();
        gen.gen_burst(&mut out, 8);
        assert_eq!(out.len(), 8);
        let keys: std::collections::HashSet<_> = out
            .iter()
            .map(|m| packet_wire::FlowKey::extract(m.data()).l4_src)
            .collect();
        assert_eq!(keys.len(), 4, "4 distinct flows");
        for (i, m) in out.iter().enumerate() {
            let p = ProbeHeader::from_frame(m.data()).unwrap();
            assert_eq!(p.seq, i as u64);
            assert!(p.tx_cycles > 0);
        }
    }

    #[test]
    fn rate_limit_is_enforced() {
        let mut gen = TrafficGen::new(64, 1).with_rate(100_000.0); // 100 kpps
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(50) {
            gen.gen_burst(&mut out, 64);
        }
        let secs = start.elapsed().as_secs_f64();
        let rate = out.len() as f64 / secs;
        assert!(
            rate < 140_000.0,
            "generated {rate:.0} pps against a 100 kpps cap"
        );
    }

    #[test]
    fn sink_measures_loss_and_latency() {
        let mut gen = TrafficGen::new(64, 1);
        let mut sink = TrafficSink::new();
        let mut out = Vec::new();
        gen.gen_burst(&mut out, 10);
        // Drop packets 3 and 7 before delivery.
        out.remove(7);
        out.remove(3);
        std::thread::sleep(std::time::Duration::from_micros(100));
        sink.consume(&mut out);
        assert_eq!(sink.received, 8);
        assert_eq!(sink.lost(), 2);
        assert_eq!(sink.reordered, 0);
        assert!(sink.latency().count() == 8);
        assert!(sink.latency().mean() > 0);
    }

    #[test]
    fn sink_detects_reordering() {
        let mut gen = TrafficGen::new(64, 1);
        let mut sink = TrafficSink::new();
        let mut out = Vec::new();
        gen.gen_burst(&mut out, 4);
        out.swap(1, 3);
        sink.consume(&mut out);
        assert!(sink.reordered >= 1);
    }
}
