//! The simulated 10 GbE NIC and the PCIe budget it hangs off.

use crate::WIRE_OVERHEAD_BYTES;
use dpdk_sim::ethdev::DevCounters;
use dpdk_sim::{cycles, DevStats, EthDev, Mbuf, MpmcRing};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A link speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRate {
    pub gbps: f64,
}

impl LineRate {
    /// 10 GbE (the testbed's 82599ES ports).
    pub const TEN_G: LineRate = LineRate { gbps: 10.0 };

    /// Wire bytes per cycle at this rate (3 GHz nominal clock).
    fn bytes_per_cycle(&self) -> f64 {
        self.gbps * 1e9 / 8.0 / cycles::CPU_HZ as f64
    }
}

/// A byte-denominated token bucket over the cycle clock.
struct TokenBucket {
    rate_bytes_per_cycle: f64,
    burst_bytes: f64,
    tokens: f64,
    last: u64,
}

impl TokenBucket {
    fn new(rate_bytes_per_cycle: f64, burst_bytes: f64) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_cycle,
            burst_bytes,
            tokens: burst_bytes,
            last: cycles::now(),
        }
    }

    fn refill(&mut self) {
        let now = cycles::now();
        let elapsed = now.saturating_sub(self.last);
        self.last = now;
        self.tokens =
            (self.tokens + elapsed as f64 * self.rate_bytes_per_cycle).min(self.burst_bytes);
    }

    /// Tries to spend `bytes`; returns false (and spends nothing) when the
    /// bucket cannot cover them.
    fn try_consume(&mut self, bytes: f64) -> bool {
        self.refill();
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

/// A shared PCIe bandwidth budget (e.g. one x8 Gen2 slot carrying both
/// testbed ports). Zero-cost when generous; the point is that it exists and
/// caps aggregate NIC throughput like the real bus does.
pub struct PcieBus {
    bucket: Mutex<TokenBucket>,
}

impl PcieBus {
    /// A bus with the given usable bandwidth. The burst allowance is ~10 ms
    /// of bandwidth, clamped to [1 frame, 4 MiB], so slow buses throttle
    /// almost immediately and fast ones never stall a sane burst.
    pub fn new(gbps: f64) -> Arc<PcieBus> {
        let rate = gbps * 1e9 / 8.0 / cycles::CPU_HZ as f64;
        let burst = (rate * 0.010 * cycles::CPU_HZ as f64).clamp(1500.0, 4.0 * 1024.0 * 1024.0);
        Arc::new(PcieBus {
            bucket: Mutex::new(TokenBucket::new(rate, burst)),
        })
    }

    /// PCIe x8 Gen2 (~32 Gb/s usable) — the 82599ES's slot.
    pub fn x8_gen2() -> Arc<PcieBus> {
        PcieBus::new(32.0)
    }

    fn admit(&self, bytes: u64) -> bool {
        self.bucket.lock().try_consume(bytes as f64)
    }
}

/// A simulated NIC port.
///
/// Topology: the *wire side* ([`NicModel::inject`] / [`NicModel::drain`])
/// is where a traffic generator or sink stands; the *host side* is the
/// [`EthDev`] implementation the switch polls. Line-rate is enforced on
/// both wire directions; DMA crosses the optional PCIe budget.
pub struct NicModel {
    name: String,
    rx_queue: MpmcRing<Mbuf>, // wire → host
    tx_queue: MpmcRing<Mbuf>, // host → wire
    rx_limiter: Mutex<TokenBucket>,
    tx_limiter: Mutex<TokenBucket>,
    pcie: Option<Arc<PcieBus>>,
    counters: DevCounters,
}

impl NicModel {
    /// Creates a NIC with the given queues depth and line rate.
    pub fn new(
        name: impl Into<String>,
        rate: LineRate,
        queue_depth: usize,
        pcie: Option<Arc<PcieBus>>,
    ) -> Arc<NicModel> {
        let bpc = rate.bytes_per_cycle();
        // Burst: one queue's worth of max-size frames, like HW FIFOs.
        let burst = 64.0 * 1518.0;
        Arc::new(NicModel {
            name: name.into(),
            rx_queue: MpmcRing::new(queue_depth),
            tx_queue: MpmcRing::new(queue_depth),
            rx_limiter: Mutex::new(TokenBucket::new(bpc, burst)),
            tx_limiter: Mutex::new(TokenBucket::new(bpc, burst)),
            pcie,
            counters: DevCounters::default(),
        })
    }

    /// A 10 G port with sensible defaults.
    pub fn ten_g(name: impl Into<String>) -> Arc<NicModel> {
        NicModel::new(name, LineRate::TEN_G, 4096, None)
    }

    fn wire_bytes(m: &Mbuf) -> u64 {
        m.len() as u64 + 4 + WIRE_OVERHEAD_BYTES // + FCS + preamble/IFG
    }

    /// Wire side: frames arriving at the port. Frames beyond line rate or
    /// a full rx queue are lost (counted in `imissed`), like a real NIC.
    /// Returns how many frames were accepted.
    pub fn inject(&self, pkts: &mut Vec<Mbuf>) -> usize {
        let mut accepted = 0;
        while !pkts.is_empty() {
            let bytes = Self::wire_bytes(&pkts[0]) as f64;
            if !self.rx_limiter.lock().try_consume(bytes) {
                break; // over line rate: the rest of the burst is lost
            }
            let m = pkts.remove(0);
            match self.rx_queue.enqueue(m) {
                Ok(()) => accepted += 1,
                Err(_) => {
                    self.counters.imissed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let lost = pkts.len() as u64;
        if lost > 0 {
            self.counters.imissed.fetch_add(lost, Ordering::Relaxed);
            pkts.clear();
        }
        accepted
    }

    /// Wire side: frames leaving the port (towards a sink).
    pub fn drain(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        self.tx_queue.dequeue_burst(out, max)
    }

    /// Frames waiting on the wire-out queue.
    pub fn tx_backlog(&self) -> usize {
        self.tx_queue.len()
    }
}

impl EthDev for NicModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let before = out.len();
        let mut got = 0;
        while got < max {
            // DMA from NIC to host memory crosses PCIe.
            let Some(m) = self.rx_queue.dequeue() else {
                break;
            };
            if let Some(pcie) = &self.pcie {
                if !pcie.admit(m.len() as u64) {
                    // Bus saturated: the frame waits in the HW queue.
                    let _ = self.rx_queue.enqueue(m);
                    break;
                }
            }
            out.push(m);
            got += 1;
        }
        let bytes: u64 = out[before..].iter().map(|m| m.len() as u64).sum();
        self.counters.rx(got as u64, bytes);
        got
    }

    fn tx_burst(&self, pkts: &mut Vec<Mbuf>) -> usize {
        let mut sent = 0;
        while !pkts.is_empty() {
            let bytes = Self::wire_bytes(&pkts[0]);
            if !self.tx_limiter.lock().try_consume(bytes as f64) {
                break; // line rate reached: caller keeps the rest
            }
            if let Some(pcie) = &self.pcie {
                if !pcie.admit(pkts[0].len() as u64) {
                    break;
                }
            }
            let m = pkts.remove(0);
            let len = m.len() as u64;
            match self.tx_queue.enqueue(m) {
                Ok(()) => {
                    self.counters.tx(1, len);
                    sent += 1;
                }
                Err(m) => {
                    pkts.insert(0, m);
                    break;
                }
            }
        }
        sent
    }

    fn stats(&self) -> DevStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Mbuf {
        Mbuf::from_slice(&[0u8; 60]) // 64 B on the wire with FCS
    }

    #[test]
    fn inject_then_host_rx() {
        let nic = NicModel::ten_g("nic0");
        let mut pkts = vec![frame(), frame()];
        assert_eq!(nic.inject(&mut pkts), 2);
        let mut out = Vec::new();
        assert_eq!(nic.rx_burst(&mut out, 8), 2);
        assert_eq!(nic.stats().ipackets, 2);
    }

    #[test]
    fn host_tx_then_wire_drain() {
        let nic = NicModel::ten_g("nic0");
        let mut pkts = vec![frame()];
        assert_eq!(nic.tx_burst(&mut pkts), 1);
        let mut out = Vec::new();
        assert_eq!(nic.drain(&mut out, 8), 1);
        assert_eq!(nic.stats().opackets, 1);
    }

    #[test]
    fn line_rate_caps_sustained_injection() {
        // A deliberately slow link (10 Mb/s ≈ 14.9 kpps at 64 B) so even a
        // debug build overruns it comfortably.
        let nic = NicModel::new("nic0", LineRate { gbps: 0.01 }, 1 << 20, None);
        let start = std::time::Instant::now();
        let mut accepted = 0u64;
        let mut offered = 0u64;
        while start.elapsed() < std::time::Duration::from_millis(50) {
            let mut burst: Vec<Mbuf> = (0..64).map(|_| frame()).collect();
            offered += 64;
            accepted += nic.inject(&mut burst) as u64;
        }
        let secs = start.elapsed().as_secs_f64();
        let rate_pps = accepted as f64 / secs;
        assert!(offered > accepted, "the generator must overrun the NIC");
        // 64 B line rate at 10 Mb/s is ~14.9 kpps; the initial token burst
        // inflates short-window estimates, so bound loosely.
        assert!(
            rate_pps < 2_000_000.0,
            "accepted {rate_pps:.0} pps, line rate not enforced"
        );
    }

    #[test]
    fn full_rx_queue_counts_missed() {
        let nic = NicModel::new("nic0", LineRate { gbps: 1000.0 }, 2, None);
        let mut pkts: Vec<Mbuf> = (0..5).map(|_| frame()).collect();
        nic.inject(&mut pkts);
        assert!(nic.stats().imissed >= 3);
    }

    #[test]
    fn pcie_budget_is_shared() {
        // A bus so slow almost nothing crosses it.
        let bus = PcieBus::new(0.000001);
        let nic = NicModel::new("nic0", LineRate::TEN_G, 64, Some(bus));
        let mut pkts: Vec<Mbuf> = (0..32).map(|_| frame()).collect();
        nic.inject(&mut pkts);
        let mut out = Vec::new();
        // The tiny initial burst allowance lets a few through, then stalls.
        let first = nic.rx_burst(&mut out, 32);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = nic.rx_burst(&mut out, 32);
        assert!(first + second < 32, "PCIe budget must throttle DMA");
    }
}
