//! Megaflow (wildcard-mask) cache.
//!
//! The second-level lookup of the datapath, slotted between the exact-match
//! cache and the tuple-space classifier. Where the EMC memoises one *flow*
//! per entry, a megaflow entry memoises one *traffic aggregate*: the packet
//! projected onto the staged-unwildcarding mask the classifier accumulated
//! while resolving it (see [`crate::classifier::Classifier::lookup_staged`]).
//! Every packet agreeing on the masked fields — any source port, any
//! un-consulted header — resolves through one hash probe per cached mask
//! instead of a full classifier walk.
//!
//! Invalidation mirrors the EMC's scheme: entries are stamped with the flow
//! table generation and the whole cache flushes the moment a lookup or
//! insert observes a newer generation, so no table change can ever be
//! served stale (the same invariant `crate::table::FlowTable::apply`
//! guarantees the EMC via its generation bump).

use crate::table::RuleEntry;
use openflow::fmatch::{FlowMatch, MatchMask, ProjectedKey};
use openflow::{Action, PortNo};
use std::collections::HashMap;
use std::sync::Arc;

/// Default megaflow capacity. Real OVS's dpcls is unbounded; we bound it
/// like the EMC so a pathological flow mix cannot grow memory without limit.
pub const DEFAULT_MEGAFLOW_ENTRIES: usize = 65536;

struct MegaflowEntry {
    rule: Arc<RuleEntry>,
    /// Packets resolved *by this tier* through this entry (for the
    /// dpctl-style dump). Packets the EMC short-circuits in front of the
    /// megaflow are not re-attributed here — unlike real `ovs-dpctl`,
    /// where EMC entries feed their backing megaflow's counters — so for
    /// EMC-resident elephant flows these counters undercount; the
    /// authoritative per-rule totals live on [`RuleEntry`].
    n_packets: u64,
    /// Bytes resolved by this tier through this entry.
    n_bytes: u64,
}

/// Entries sharing one wildcard mask (one hash probe per group at lookup).
struct MaskGroup {
    mask: MatchMask,
    entries: HashMap<ProjectedKey, MegaflowEntry>,
}

/// One row of a megaflow dump: the masked key, its traffic counters and the
/// actions of the rule it resolves to.
#[derive(Debug, Clone)]
pub struct MegaflowRow {
    pub mask: MatchMask,
    pub key: ProjectedKey,
    pub n_packets: u64,
    pub n_bytes: u64,
    pub rule_id: u64,
    pub actions: Vec<Action>,
}

/// A per-PMD megaflow cache.
pub struct Megaflow {
    groups: Vec<MaskGroup>,
    /// Flow-table generation the current contents were resolved against.
    generation: u64,
    capacity: usize,
    len: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Megaflow {
    /// Creates a cache bounded to `capacity` aggregates. A capacity of 0
    /// disables the tier entirely (every lookup misses, inserts are no-ops)
    /// — the EMC-only configuration of the cache-tier ablation.
    pub fn new(capacity: usize) -> Megaflow {
        Megaflow {
            groups: Vec::new(),
            generation: 0,
            capacity,
            len: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    fn revalidate(&mut self, generation: u64) {
        if generation != self.generation {
            if self.len > 0 {
                self.flushes += 1;
            }
            self.groups.clear();
            self.len = 0;
            self.generation = generation;
        }
    }

    /// Looks up a packet, validating the cache against `generation` first.
    /// `pkts`/`bytes` are the burst share this resolution stands for, folded
    /// into the hit entry's dump counters (burst-batched classification
    /// resolves once per flow group, not once per packet).
    pub fn lookup(
        &mut self,
        port: PortNo,
        key: &packet_wire::FlowKey,
        generation: u64,
        pkts: u64,
        bytes: u64,
    ) -> Option<Arc<RuleEntry>> {
        self.revalidate(generation);
        for group in &mut self.groups {
            let proj = FlowMatch::project(&group.mask, port, key);
            if let Some(entry) = group.entries.get_mut(&proj) {
                entry.n_packets += pkts;
                entry.n_bytes += bytes;
                self.hits += 1;
                return Some(Arc::clone(&entry.rule));
            }
        }
        self.misses += 1;
        None
    }

    /// Installs the aggregate `(packet projected under mask) → rule` for
    /// `generation`, seeding the dump counters with the resolving burst
    /// share (`pkts`/`bytes`). The mask must be the staged-unwildcarding
    /// mask the classifier returned for this very resolution — anything
    /// narrower wastes coverage, anything wider is unsound.
    #[allow(clippy::too_many_arguments)] // mirrors Emc::insert + burst share
    pub fn insert(
        &mut self,
        port: PortNo,
        key: &packet_wire::FlowKey,
        mask: MatchMask,
        rule: Arc<RuleEntry>,
        generation: u64,
        pkts: u64,
        bytes: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.revalidate(generation);
        if self.len >= self.capacity {
            // Same cheap bound as the EMC's last resort: flush and refill.
            self.groups.clear();
            self.len = 0;
            self.flushes += 1;
            telemetry::coverage!("megaflow_flush");
        }
        telemetry::coverage!("megaflow_insert");
        let proj = FlowMatch::project(&mask, port, key);
        let group = match self.groups.iter_mut().position(|g| g.mask == mask) {
            Some(i) => &mut self.groups[i],
            None => {
                self.groups.push(MaskGroup {
                    mask,
                    entries: HashMap::new(),
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        if group
            .entries
            .insert(
                proj,
                MegaflowEntry {
                    rule,
                    n_packets: pkts,
                    n_bytes: bytes,
                },
            )
            .is_none()
        {
            self.len += 1;
        }
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whole-cache flushes performed (generation changes + capacity resets).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Distinct wildcard masks currently cached.
    pub fn mask_count(&self) -> usize {
        self.groups.len()
    }

    /// Aggregates currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Snapshot of every cached aggregate, for `dpctl dump-flows`-style
    /// rendering (see [`crate::dump::dump_megaflows`]).
    pub fn rows(&self) -> Vec<MegaflowRow> {
        let mut out = Vec::with_capacity(self.len);
        for group in &self.groups {
            for (key, entry) in &group.entries {
                out.push(MegaflowRow {
                    mask: group.mask,
                    key: *key,
                    n_packets: entry.n_packets,
                    n_bytes: entry.n_bytes,
                    rule_id: entry.rule.id,
                    actions: entry.rule.actions.clone(),
                });
            }
        }
        // Busiest aggregates first; ties by rule id, then by a fixed-seed
        // hash of the masked key so the order is stable across runs even
        // though the entries live in a HashMap.
        fn key_hash(row: &MegaflowRow) -> u64 {
            use std::hash::{Hash, Hasher};
            // std's DefaultHasher is SipHash with fixed keys: process- and
            // run-independent, unlike HashMap's per-instance seed.
            let mut h = std::collections::hash_map::DefaultHasher::new();
            row.mask.hash(&mut h);
            row.key.hash(&mut h);
            h.finish()
        }
        out.sort_by(|a, b| {
            b.n_packets
                .cmp(&a.n_packets)
                .then(a.rule_id.cmp(&b.rule_id))
                .then(key_hash(a).cmp(&key_hash(b)))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::FlowMatch;
    use packet_wire::{FlowKey, PacketBuilder};
    use std::sync::atomic::AtomicU64;

    fn rule(id: u64, fmatch: FlowMatch) -> Arc<RuleEntry> {
        Arc::new(RuleEntry {
            id,
            fmatch: fmatch.canonicalise(),
            priority: 10,
            actions: vec![Action::Output(PortNo(2))],
            cookie: id,
            idle_timeout: 0,
            hard_timeout: 0,
            added_at: 0,
            last_used: AtomicU64::new(0),
            n_packets: AtomicU64::new(0),
            n_bytes: AtomicU64::new(0),
        })
    }

    fn key_to(dst: u16) -> FlowKey {
        FlowKey::extract(&PacketBuilder::udp_probe(64).ports(1000, dst).build())
    }

    #[test]
    fn wildcard_entry_covers_the_aggregate() {
        let mut mf = Megaflow::new(1024);
        let mut m = FlowMatch::any();
        m.l4_dst = Some(80);
        let r = rule(1, m);
        // Install under a mask that pins only l4_dst.
        mf.insert(
            PortNo(1),
            &key_to(80),
            r.fmatch.mask(),
            Arc::clone(&r),
            0,
            0,
            0,
        );
        // Any port, any source port: still a hit — the aggregate, not the flow.
        let mut other = key_to(80);
        other.l4_src = 9999;
        assert_eq!(mf.lookup(PortNo(7), &other, 0, 1, 64).unwrap().id, 1);
        // A packet differing in a masked field misses.
        assert!(mf.lookup(PortNo(7), &key_to(81), 0, 1, 64).is_none());
        assert_eq!(mf.stats(), (1, 1));
    }

    #[test]
    fn generation_change_flushes_everything() {
        let mut mf = Megaflow::new(1024);
        let r = rule(1, FlowMatch::any());
        mf.insert(PortNo(1), &key_to(80), MatchMask::empty(), r, 0, 0, 0);
        assert_eq!(mf.len(), 1);
        assert!(mf.lookup(PortNo(1), &key_to(80), 1, 1, 64).is_none());
        assert!(mf.is_empty());
        assert_eq!(mf.flushes(), 1);
    }

    #[test]
    fn capacity_zero_disables_the_tier() {
        let mut mf = Megaflow::new(0);
        let r = rule(1, FlowMatch::any());
        mf.insert(PortNo(1), &key_to(80), MatchMask::empty(), r, 0, 0, 0);
        assert!(mf.is_empty());
        assert!(mf.lookup(PortNo(1), &key_to(80), 0, 1, 64).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut mf = Megaflow::new(4);
        for i in 0..100u16 {
            let mut m = FlowMatch::any();
            m.l4_dst = Some(i);
            let r = rule(u64::from(i), m);
            let mask = r.fmatch.mask();
            mf.insert(PortNo(1), &key_to(i), mask, r, 0, 0, 0);
        }
        assert!(mf.len() <= 4);
    }

    #[test]
    fn rows_report_masked_traffic() {
        let mut mf = Megaflow::new(1024);
        let mut m = FlowMatch::any();
        m.l4_dst = Some(80);
        let r = rule(7, m);
        mf.insert(PortNo(1), &key_to(80), r.fmatch.mask(), r, 0, 0, 0);
        mf.lookup(PortNo(1), &key_to(80), 0, 3, 192);
        let rows = mf.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].n_packets, 3);
        assert_eq!(rows[0].n_bytes, 192);
        assert_eq!(rows[0].rule_id, 7);
        assert!(rows[0].mask.l4_dst && !rows[0].mask.in_port);
    }
}
