//! Exact-match cache (EMC).
//!
//! The first-level lookup of the OVS-DPDK datapath: a small per-PMD hash
//! table from `(in_port, full flow key)` to the rule that handled the last
//! packet of that flow. Entries are validated against the flow table
//! generation, so any table change invalidates the whole cache at zero cost.

use crate::table::RuleEntry;
use openflow::PortNo;
use packet_wire::FlowKey;
use std::collections::HashMap;
use std::sync::Arc;

/// Default EMC capacity, matching OVS's `EM_FLOW_HASH_ENTRIES` (8192).
pub const DEFAULT_EMC_ENTRIES: usize = 8192;

struct EmcEntry {
    generation: u64,
    rule: Arc<RuleEntry>,
}

/// A per-PMD exact-match cache.
pub struct Emc {
    map: HashMap<(PortNo, FlowKey), EmcEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Emc {
    /// Creates a cache bounded to `capacity` flows.
    pub fn new(capacity: usize) -> Emc {
        Emc {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a flow; only entries from `generation` are valid.
    pub fn lookup(
        &mut self,
        port: PortNo,
        key: &FlowKey,
        generation: u64,
    ) -> Option<Arc<RuleEntry>> {
        match self.map.get(&(port, *key)) {
            Some(e) if e.generation == generation => {
                self.hits += 1;
                Some(Arc::clone(&e.rule))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a flow → rule binding for `generation`. A capacity of 0
    /// disables the tier entirely (inserts are no-ops, lookups miss).
    pub fn insert(&mut self, port: PortNo, key: FlowKey, rule: Arc<RuleEntry>, generation: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&(port, key)) {
            // Cheap eviction: drop stale entries; if none are stale, clear.
            // (Real OVS probabilistically replaces; the effect — bounded
            // memory, occasional re-classification — is the same.)
            telemetry::coverage!("emc_evict");
            self.map.retain(|_, e| e.generation == generation);
            if self.map.len() >= self.capacity {
                self.map.clear();
            }
        }
        telemetry::coverage!("emc_insert");
        self.map.insert((port, key), EmcEntry { generation, rule });
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries currently cached (including stale ones awaiting reuse).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::{Action, FlowMatch};
    use std::sync::atomic::AtomicU64;

    fn rule(id: u64) -> Arc<RuleEntry> {
        Arc::new(RuleEntry {
            id,
            fmatch: FlowMatch::any(),
            priority: 1,
            actions: vec![Action::Output(PortNo(2))],
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            added_at: 0,
            last_used: AtomicU64::new(0),
            n_packets: AtomicU64::new(0),
            n_bytes: AtomicU64::new(0),
        })
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let mut emc = Emc::new(16);
        let key = FlowKey::default();
        assert!(emc.lookup(PortNo(1), &key, 0).is_none());
        emc.insert(PortNo(1), key, rule(1), 0);
        assert_eq!(emc.lookup(PortNo(1), &key, 0).unwrap().id, 1);
        assert_eq!(emc.stats(), (1, 1));
    }

    #[test]
    fn generation_change_invalidates() {
        let mut emc = Emc::new(16);
        let key = FlowKey::default();
        emc.insert(PortNo(1), key, rule(1), 0);
        assert!(emc.lookup(PortNo(1), &key, 1).is_none());
        // Reinsert under the new generation works.
        emc.insert(PortNo(1), key, rule(2), 1);
        assert_eq!(emc.lookup(PortNo(1), &key, 1).unwrap().id, 2);
    }

    #[test]
    fn different_ports_are_different_flows() {
        let mut emc = Emc::new(16);
        let key = FlowKey::default();
        emc.insert(PortNo(1), key, rule(1), 0);
        assert!(emc.lookup(PortNo(2), &key, 0).is_none());
    }

    #[test]
    fn capacity_zero_disables_the_tier() {
        let mut emc = Emc::new(0);
        let key = FlowKey::default();
        emc.insert(PortNo(1), key, rule(1), 0);
        assert!(emc.is_empty());
        assert!(emc.lookup(PortNo(1), &key, 0).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut emc = Emc::new(4);
        for i in 0..100u16 {
            let key = FlowKey {
                l4_dst: i,
                ..FlowKey::default()
            };
            emc.insert(PortNo(1), key, rule(u64::from(i)), 0);
        }
        assert!(emc.len() <= 5);
    }
}
