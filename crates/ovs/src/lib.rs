//! # ovs-dp
//!
//! An Open vSwitch-with-DPDK-style software switch: the substrate the paper
//! modifies. The moving parts mirror the real architecture closely enough
//! that the paper's patch points exist here too:
//!
//! * [`port`] — switch ports: `dpdkr` shared-memory ports (the kind VMs
//!   attach to) and generic [`dpdk_sim::EthDev`] ports (simulated NICs).
//! * [`table`] — the OpenFlow flow table with add/modify/delete (strict and
//!   loose) semantics, priorities, cookies, timeouts and per-rule counters.
//! * [`classifier`] — tuple-space search: one hash subtable per wildcard
//!   mask, exactly OVS's `dpcls`.
//! * [`emc`] — the exact-match cache in front of the classifier, keyed by
//!   `(in_port, flow key)`, invalidated by table generation.
//! * [`megaflow`] — the wildcard-mask cache between the EMC and the
//!   classifier: one entry per *traffic aggregate* under the staged
//!   unwildcarding mask the classifier accumulated, invalidated by the
//!   same table generation.
//! * [`actions`] — action execution: header rewrites and output.
//! * [`pmd`] — the poll-mode datapath: N PMD threads, each owning private
//!   caches and a share of the ports, resharding rx bursts to the flow's
//!   RSS owner over SPSC rings and classifying against a lock-free
//!   RCU-style flow-table snapshot.
//! * [`ofproto`] — the OpenFlow agent: decodes controller messages, applies
//!   flow_mods, answers statistics (optionally *augmented* by an external
//!   provider — the hook the paper's shared-memory stats use), and emits
//!   packet-ins.
//! * [`vswitchd`] — glues the above into a runnable switch daemon.
//!
//! Two extension hooks exist specifically for the highway (they are no-ops
//! on a vanilla switch, which is how the reproduction runs its baseline):
//!
//! 1. [`ofproto::FlowTableObserver`] — called with a rule snapshot after
//!    every table change; the p-2-p link detector lives behind it.
//! 2. [`ofproto::StatsAugmenter`] — consulted when building flow/port stats
//!    replies; the bypass stats region lives behind it.

pub mod actions;
pub mod classifier;
pub mod dump;
pub mod emc;
pub mod megaflow;
pub mod ofproto;
pub mod pmd;
pub mod port;
pub mod table;
pub mod vswitchd;

pub use dump::{dump_datapath_stats, dump_flows, dump_megaflows, dump_ports};
pub use megaflow::{Megaflow, MegaflowRow};
pub use ofproto::{FlowTableObserver, Ofproto, RuleSnapshot, StatsAugmenter};
pub use pmd::{
    build_fanout_mesh, rss_owner, CacheTier, CacheTierStats, FanoutBatch, PmdCaches, PmdFanout,
    PmdThread,
};
pub use port::{OvsPort, PortBackend, PortCounters};
pub use table::{FlowTable, RuleEntry, TableChange};
pub use vswitchd::{VSwitchd, VSwitchdConfig};
