//! Switch ports.
//!
//! A port is either a `dpdkr` shared-memory channel to a VM (the switch owns
//! one [`ChannelEnd`]; the guest PMD owns the other) or a poll-mode device
//! (simulated NIC). The PMD thread takes short-lived locks on the channel —
//! uncontended in steady state because only the PMD touches the fast path;
//! the control plane reads counters through atomics.

use dpdk_sim::ethdev::DevCounters;
use dpdk_sim::{DevStats, EthDev, Mbuf};
use openflow::PortNo;
use parking_lot::Mutex;
use shmem_sim::ChannelEnd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-port packet/byte counters, as the switch sees them.
///
/// `rx` counts packets the switch received *from* the port (VM→switch),
/// `tx` packets the switch delivered *to* the port (switch→VM) — matching
/// the OpenFlow port-stats perspective of `ofp_port_stats`.
pub type PortCounters = DevCounters;

/// The transport behind a port.
pub enum PortBackend {
    /// dpdkr: shared-memory channel whose peer is a guest PMD.
    Dpdkr(Mutex<ChannelEnd>),
    /// A poll-mode device (e.g. a simulated NIC).
    Dev(Arc<dyn EthDev>),
}

/// A switch port.
pub struct OvsPort {
    pub no: PortNo,
    pub name: String,
    pub backend: PortBackend,
    pub counters: PortCounters,
    /// Administrative state (`OFPPC_PORT_DOWN` cleared). A down port is not
    /// polled and drops everything delivered to it, like a real OVS port
    /// with the config bit set.
    admin_up: AtomicBool,
}

impl OvsPort {
    /// Creates a dpdkr port from the switch-side channel endpoint.
    pub fn dpdkr(no: PortNo, name: impl Into<String>, end: ChannelEnd) -> OvsPort {
        OvsPort {
            no,
            name: name.into(),
            backend: PortBackend::Dpdkr(Mutex::new(end)),
            counters: PortCounters::default(),
            admin_up: AtomicBool::new(true),
        }
    }

    /// Creates a device-backed port.
    pub fn device(no: PortNo, name: impl Into<String>, dev: Arc<dyn EthDev>) -> OvsPort {
        OvsPort {
            no,
            name: name.into(),
            backend: PortBackend::Dev(dev),
            counters: PortCounters::default(),
            admin_up: AtomicBool::new(true),
        }
    }

    /// Administrative state: true when the port is enabled.
    pub fn is_admin_up(&self) -> bool {
        self.admin_up.load(Ordering::Acquire)
    }

    /// Sets the administrative state; returns the previous value.
    pub fn set_admin_up(&self, up: bool) -> bool {
        self.admin_up.swap(up, Ordering::AcqRel)
    }

    /// Polls up to `max` packets from the port into `out`; stamps their
    /// ingress port metadata and updates rx counters. A down port is never
    /// polled (its peer blocks on a full ring, like a real dpdkr port whose
    /// vSwitch side stopped servicing it).
    pub fn rx_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        if !self.is_admin_up() {
            return 0;
        }
        let before = out.len();
        let n = match &self.backend {
            PortBackend::Dpdkr(end) => end.lock().recv_burst(out, max),
            PortBackend::Dev(dev) => dev.rx_burst(out, max),
        };
        let mut bytes = 0u64;
        for m in &mut out[before..] {
            m.port = u32::from(self.no.0);
            bytes += m.len() as u64;
        }
        self.counters.rx(n as u64, bytes);
        n
    }

    /// Delivers packets to the port, draining the accepted ones from the
    /// front of `pkts`; packets that do not fit are *dropped* (counted),
    /// matching OVS-DPDK's behaviour on a full vhost/dpdkr ring. A down
    /// port drops everything.
    pub fn tx_burst_or_drop(&self, pkts: &mut Vec<Mbuf>) {
        if !self.is_admin_up() {
            self.counters
                .odropped
                .fetch_add(pkts.len() as u64, std::sync::atomic::Ordering::Relaxed);
            pkts.clear();
            return;
        }
        let sent_bytes: u64;
        let sent: usize;
        match &self.backend {
            PortBackend::Dpdkr(end) => {
                let mut end = end.lock();
                let total: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                let n = end.send_burst(pkts);
                sent = n;
                // send_burst drained exactly the first n; recompute bytes of
                // the remainder to know what was sent.
                let remaining: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                sent_bytes = total - remaining;
            }
            PortBackend::Dev(dev) => {
                let total: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                let n = dev.tx_burst(pkts);
                sent = n;
                let remaining: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                sent_bytes = total - remaining;
            }
        }
        self.counters.tx(sent as u64, sent_bytes);
        if !pkts.is_empty() {
            self.counters
                .odropped
                .fetch_add(pkts.len() as u64, std::sync::atomic::Ordering::Relaxed);
            pkts.clear(); // dropped mbufs recycle to their pools
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DevStats {
        self.counters.snapshot()
    }

    /// True when the peer endpoint of a dpdkr port has disappeared.
    pub fn peer_gone(&self) -> bool {
        match &self.backend {
            PortBackend::Dpdkr(end) => end.lock().peer_gone(),
            PortBackend::Dev(_) => false,
        }
    }
}

impl std::fmt::Debug for OvsPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OvsPort")
            .field("no", &self.no)
            .field("name", &self.name)
            .field(
                "kind",
                &match &self.backend {
                    PortBackend::Dpdkr(_) => "dpdkr",
                    PortBackend::Dev(_) => "dev",
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::channel;

    #[test]
    fn dpdkr_port_moves_packets_and_counts() {
        let (sw_end, mut vm_end) = channel("dpdkr1", 8);
        let port = OvsPort::dpdkr(PortNo(1), "dpdkr1", sw_end);

        // VM → switch.
        vm_end.send(Mbuf::from_slice(&[0u8; 64])).unwrap();
        let mut rx = Vec::new();
        assert_eq!(port.rx_burst(&mut rx, 32), 1);
        assert_eq!(rx[0].port, 1);
        assert_eq!(port.stats().ipackets, 1);
        assert_eq!(port.stats().ibytes, 64);

        // Switch → VM.
        let mut tx = vec![Mbuf::from_slice(&[0u8; 60])];
        port.tx_burst_or_drop(&mut tx);
        assert!(tx.is_empty());
        assert_eq!(port.stats().opackets, 1);
        assert_eq!(port.stats().obytes, 60);
        assert_eq!(vm_end.recv().unwrap().len(), 60);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let (sw_end, _vm_end) = channel("dpdkr2", 2);
        let port = OvsPort::dpdkr(PortNo(2), "dpdkr2", sw_end);
        let mut tx: Vec<Mbuf> = (0..5).map(|_| Mbuf::from_slice(&[0u8; 64])).collect();
        port.tx_burst_or_drop(&mut tx);
        assert!(tx.is_empty());
        let s = port.stats();
        assert_eq!(s.opackets, 2);
        assert_eq!(s.odropped, 3);
    }

    #[test]
    fn device_port_wraps_ethdev() {
        let dev = Arc::new(dpdk_sim::LoopbackDev::new("lo", 8));
        let port = OvsPort::device(PortNo(3), "nic0", dev);
        let mut tx = vec![Mbuf::from_slice(&[1, 2, 3])];
        port.tx_burst_or_drop(&mut tx);
        let mut rx = Vec::new();
        assert_eq!(port.rx_burst(&mut rx, 4), 1);
        assert_eq!(rx[0].port, 3);
        assert_eq!(rx[0].data(), &[1, 2, 3]);
    }

    #[test]
    fn peer_gone_detection() {
        let (sw_end, vm_end) = channel("dpdkr3", 2);
        let port = OvsPort::dpdkr(PortNo(4), "dpdkr3", sw_end);
        assert!(!port.peer_gone());
        drop(vm_end);
        assert!(port.peer_gone());
    }

    #[test]
    fn down_port_is_not_polled() {
        let (sw_end, mut vm_end) = channel("dpdkr5", 8);
        let port = OvsPort::dpdkr(PortNo(5), "dpdkr5", sw_end);
        vm_end.send(Mbuf::from_slice(&[0u8; 64])).unwrap();
        assert!(port.set_admin_up(false));
        let mut rx = Vec::new();
        assert_eq!(port.rx_burst(&mut rx, 8), 0);
        assert_eq!(port.stats().ipackets, 0);
        // Re-enable: the queued packet is still there.
        port.set_admin_up(true);
        assert_eq!(port.rx_burst(&mut rx, 8), 1);
    }

    #[test]
    fn down_port_drops_tx() {
        let (sw_end, mut vm_end) = channel("dpdkr6", 8);
        let port = OvsPort::dpdkr(PortNo(6), "dpdkr6", sw_end);
        port.set_admin_up(false);
        let mut tx = vec![Mbuf::from_slice(&[0u8; 64]), Mbuf::from_slice(&[0u8; 64])];
        port.tx_burst_or_drop(&mut tx);
        assert!(tx.is_empty());
        assert_eq!(port.stats().odropped, 2);
        assert_eq!(port.stats().opackets, 0);
        assert!(vm_end.recv().is_none());
    }
}
