//! The OpenFlow agent: the switch-side endpoint of the control channel.
//!
//! `Ofproto` decodes controller messages, applies flow_mods to the datapath
//! table, answers echo/features/barrier/statistics, executes packet-outs and
//! forwards queued packet-ins. Two hooks make the highway possible without
//! the controller noticing anything:
//!
//! * [`FlowTableObserver`] — receives a rule snapshot after every table
//!   change (where the p-2-p link detector attaches);
//! * [`StatsAugmenter`] — contributes extra per-rule / per-port counters
//!   when statistics replies are built (where the bypass shared-memory
//!   stats are merged in).

use crate::pmd::Datapath;
use crate::table::RuleEntry;
use dpdk_sim::{cycles, Mbuf};
use openflow::messages::*;
use openflow::{Action, FlowMatch, OfError, PortNo, SwitchLink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable snapshot of one rule, handed to observers.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSnapshot {
    pub id: u64,
    pub fmatch: FlowMatch,
    pub priority: u16,
    pub actions: Vec<Action>,
    pub cookie: u64,
}

impl RuleSnapshot {
    fn of(rule: &RuleEntry) -> RuleSnapshot {
        RuleSnapshot {
            id: rule.id,
            fmatch: rule.fmatch,
            priority: rule.priority,
            actions: rule.actions.clone(),
            cookie: rule.cookie,
        }
    }
}

/// Observer of flow-table changes (the p-2-p detector hook).
pub trait FlowTableObserver: Send + Sync {
    /// Called with the complete post-change rule set.
    fn table_changed(&self, rules: &[RuleSnapshot]);

    /// Called with the complete set of administratively-down ports after
    /// every port config or membership change. A bypass must not carry
    /// traffic past a port the controller disabled — the switch would have
    /// dropped it — so the highway listens here too. Default: ignore.
    fn ports_changed(&self, down_ports: &[PortNo]) {
        let _ = down_ports;
    }
}

/// Extra statistics merged into replies (the bypass stats hook).
///
/// Returned numbers are *cumulative* totals maintained by the implementor;
/// ofproto adds them to its own counters at reply time, which is exactly how
/// the prototype's OVS reads the shared-memory region on demand.
pub trait StatsAugmenter: Send + Sync {
    /// Extra `(packets, bytes)` for the rule with this cookie.
    fn rule_extra(&self, cookie: u64) -> (u64, u64);
    /// Extra port counters for this port.
    fn port_extra(&self, port: PortNo) -> PortExtra;
}

/// Extra port counters contributed by bypassed traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortExtra {
    pub rx_packets: u64,
    pub rx_bytes: u64,
    pub tx_packets: u64,
    pub tx_bytes: u64,
}

/// The OpenFlow agent bound to one datapath.
pub struct Ofproto {
    dp: Arc<Datapath>,
    link: Mutex<Option<SwitchLink>>,
    observers: Mutex<Vec<Arc<dyn FlowTableObserver>>>,
    augmenter: Mutex<Option<Arc<dyn StatsAugmenter>>>,
    /// Last bypass packet count seen per rule cookie, so the idle-timeout
    /// sweep can tell "idle" from "busy, but over a bypass channel".
    bypass_progress: Mutex<BTreeMap<u64, u64>>,
    /// True while [`Ofproto::poll`] has dequeued a controller message it
    /// has not finished applying; see [`Ofproto::control_idle`].
    control_inflight: std::sync::atomic::AtomicBool,
    datapath_id: u64,
}

impl Ofproto {
    /// Creates the agent for a datapath.
    pub fn new(dp: Arc<Datapath>, datapath_id: u64) -> Ofproto {
        Ofproto {
            dp,
            link: Mutex::new(None),
            observers: Mutex::new(Vec::new()),
            augmenter: Mutex::new(None),
            bypass_progress: Mutex::new(BTreeMap::new()),
            control_inflight: std::sync::atomic::AtomicBool::new(false),
            datapath_id,
        }
    }

    /// True when no controller message is queued or being applied. A true
    /// result means every control message sent *before this call* has
    /// taken effect on the flow table — the switch-side half of a
    /// barrier, used by convergence waits that must not observe the table
    /// from before an in-flight flow_mod.
    pub fn control_idle(&self) -> bool {
        // The pending check and the in-flight flag are reconciled under
        // the link lock: poll() raises the flag before releasing the lock
        // it dequeued under, so "empty queue, flag down" cannot name a
        // message that is secretly being applied.
        let guard = self.link.lock();
        let pending = guard.as_ref().map(|l| l.pending()).unwrap_or(0);
        pending == 0
            && !self
                .control_inflight
                .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Attaches (or replaces) the controller link.
    pub fn attach_controller(&self, link: SwitchLink) {
        *self.link.lock() = Some(link);
    }

    /// Registers a flow-table observer.
    pub fn register_observer(&self, obs: Arc<dyn FlowTableObserver>) {
        self.observers.lock().push(obs);
    }

    /// Installs the statistics augmenter.
    pub fn set_stats_augmenter(&self, aug: Arc<dyn StatsAugmenter>) {
        *self.augmenter.lock() = Some(aug);
    }

    fn notify_observers(&self) {
        let snapshot: Vec<RuleSnapshot> = {
            let table = self.dp.table();
            table.rules().iter().map(|r| RuleSnapshot::of(r)).collect()
        };
        for obs in self.observers.lock().iter() {
            obs.table_changed(&snapshot);
        }
    }

    fn notify_ports_changed(&self) {
        let down: Vec<PortNo> = self
            .dp
            .ports
            .read()
            .values()
            .filter(|p| !p.is_admin_up())
            .map(|p| p.no)
            .collect();
        for obs in self.observers.lock().iter() {
            obs.ports_changed(&down);
        }
    }

    /// Emits a `PortStatus` for a port membership change and re-notifies
    /// observers (called by the vswitchd layer on add/remove).
    pub fn announce_port(&self, no: PortNo, name: &str, reason: PortStatusReason) {
        telemetry::coverage!("port_status");
        let down = match reason {
            PortStatusReason::Delete => false,
            _ => self.dp.port(no).map(|p| !p.is_admin_up()).unwrap_or(false),
        };
        self.send(
            &OfpMessage::PortStatus(PortStatus {
                reason,
                port_no: no.0,
                name: name.to_string(),
                down,
            }),
            0,
        );
        self.notify_ports_changed();
    }

    /// Applies a `port_mod`: flips the admin state, announces the change
    /// and informs observers (the highway tears down bypasses over down
    /// ports). Unknown ports produce an OF error back to the controller.
    pub fn apply_port_mod(&self, pm: &PortMod) {
        match self.dp.port(pm.port_no) {
            Some(port) => {
                let was_up = port.set_admin_up(!pm.down);
                if was_up == pm.down {
                    // State actually changed.
                    self.send(
                        &OfpMessage::PortStatus(PortStatus {
                            reason: PortStatusReason::Modify,
                            port_no: pm.port_no.0,
                            name: port.name.clone(),
                            down: pm.down,
                        }),
                        0,
                    );
                    self.notify_ports_changed();
                }
            }
            None => {
                self.send(
                    &OfpMessage::Error {
                        err_type: 2, // OFPET_BAD_ACTION family: bad port
                        code: 4,     // OFPBAC_BAD_OUT_PORT
                    },
                    0,
                );
            }
        }
    }

    fn send(&self, msg: &OfpMessage, xid: u32) {
        if let Some(link) = self.link.lock().as_ref() {
            let _ = link.send(msg, xid);
        }
    }

    /// Applies a flow_mod directly (used by the controller path and by
    /// tests/orchestrators that bypass the wire).
    pub fn apply_flow_mod(&self, fm: &FlowMod) {
        telemetry::coverage!("flow_mod");
        let change = self.dp.table_apply(fm);
        if change.is_empty() {
            return;
        }
        for removed in &change.removed {
            telemetry::coverage!("flow_removed");
            let (packets, bytes) = removed.counters();
            // Fold in bypass counters so FlowRemoved reports the truth.
            let (ep, eb) = self
                .augmenter
                .lock()
                .as_ref()
                .map(|a| a.rule_extra(removed.cookie))
                .unwrap_or((0, 0));
            self.send(
                &OfpMessage::FlowRemoved(FlowRemoved {
                    fmatch: removed.fmatch,
                    priority: removed.priority,
                    cookie: removed.cookie,
                    packet_count: packets + ep,
                    byte_count: bytes + eb,
                }),
                0,
            );
        }
        self.notify_observers();
    }

    /// Sweeps rule timeouts (called by the vswitchd housekeeping loop).
    ///
    /// Before sweeping, rules whose bypass counters advanced since the
    /// last sweep get their idle clock refreshed: a fully bypassed rule
    /// generates no switch-side hits, but it is *not* idle — expiring it
    /// would tear down a live fast path and then blackhole the traffic.
    /// (The prototype has the same obligation: OVS "is not able to count
    /// statistics related to p-2-p links by itself".)
    pub fn sweep_timeouts(&self) {
        let now = cycles::now();
        if let Some(aug) = self.augmenter.lock().clone() {
            // Touching rules through a snapshot works because the entries
            // are Arc-shared with the master table.
            let table = self.dp.table();
            let mut progress = self.bypass_progress.lock();
            for rule in table.rules() {
                if rule.idle_timeout == 0 {
                    continue;
                }
                let (pkts, _bytes) = aug.rule_extra(rule.cookie);
                let seen = progress.entry(rule.cookie).or_insert(0);
                if pkts > *seen {
                    *seen = pkts;
                    rule.touch(now);
                }
            }
            // Drop progress for rules that no longer exist, so a future
            // rule reusing a cookie starts from the region's current count.
            progress.retain(|cookie, _| table.rules().iter().any(|r| r.cookie == *cookie));
        }
        let change = self.dp.table_sweep(cycles::now());
        if change.is_empty() {
            return;
        }
        for removed in &change.removed {
            telemetry::coverage!("flow_removed");
            let (packets, bytes) = removed.counters();
            let (ep, eb) = self
                .augmenter
                .lock()
                .as_ref()
                .map(|a| a.rule_extra(removed.cookie))
                .unwrap_or((0, 0));
            self.send(
                &OfpMessage::FlowRemoved(FlowRemoved {
                    fmatch: removed.fmatch,
                    priority: removed.priority,
                    cookie: removed.cookie,
                    packet_count: packets + ep,
                    byte_count: bytes + eb,
                }),
                0,
            );
        }
        self.notify_observers();
    }

    fn build_flow_stats(&self, req: &FlowStatsRequest) -> Vec<FlowStatsEntry> {
        let aug = self.augmenter.lock().clone();
        let table = self.dp.table();
        let now = cycles::now();
        table
            .rules()
            .iter()
            .filter(|r| {
                // Loose filter semantics, like flow stats in OF 1.0.
                crate::table::loose_filter_matches(&req.fmatch, &r.fmatch)
                    && (req.out_port == PortNo::NONE
                        || r.actions.iter().any(|a| *a == Action::Output(req.out_port)))
            })
            .map(|r| {
                let (mut packets, mut bytes) = r.counters();
                if let Some(aug) = &aug {
                    let (ep, eb) = aug.rule_extra(r.cookie);
                    packets += ep;
                    bytes += eb;
                }
                FlowStatsEntry {
                    fmatch: r.fmatch,
                    priority: r.priority,
                    cookie: r.cookie,
                    duration_sec: (cycles::to_duration(now.saturating_sub(r.added_at))).as_secs()
                        as u32,
                    idle_timeout: r.idle_timeout,
                    hard_timeout: r.hard_timeout,
                    packet_count: packets,
                    byte_count: bytes,
                    actions: r.actions.clone(),
                }
            })
            .collect()
    }

    fn build_port_stats(&self, req: &PortStatsRequest) -> Vec<PortStatsEntry> {
        let aug = self.augmenter.lock().clone();
        let ports = self.dp.ports.read();
        ports
            .values()
            .filter(|p| req.port_no == PortNo::NONE || p.no == req.port_no)
            .map(|p| {
                let s = p.stats();
                let extra = aug.as_ref().map(|a| a.port_extra(p.no)).unwrap_or_default();
                PortStatsEntry {
                    port_no: p.no.0,
                    rx_packets: s.ipackets + extra.rx_packets,
                    tx_packets: s.opackets + extra.tx_packets,
                    rx_bytes: s.ibytes + extra.rx_bytes,
                    tx_bytes: s.obytes + extra.tx_bytes,
                    rx_dropped: s.imissed,
                    tx_dropped: s.odropped,
                }
            })
            .collect()
    }

    /// A full flow-stats snapshot (all rules, augmented), as an
    /// `ovs-ofctl dump-flows` through the stats path would see it.
    pub fn flow_stats_snapshot(&self) -> Vec<FlowStatsEntry> {
        self.build_flow_stats(&FlowStatsRequest {
            fmatch: FlowMatch::any(),
            out_port: PortNo::NONE,
        })
    }

    fn build_aggregate_stats(&self, req: &AggregateStatsRequest) -> AggregateStats {
        let aug = self.augmenter.lock().clone();
        let table = self.dp.table();
        let mut agg = AggregateStats::default();
        for r in table.rules() {
            if !crate::table::loose_filter_matches(&req.fmatch, &r.fmatch) {
                continue;
            }
            if req.out_port != PortNo::NONE
                && !r.actions.iter().any(|a| *a == Action::Output(req.out_port))
            {
                continue;
            }
            let (mut packets, mut bytes) = r.counters();
            if let Some(aug) = &aug {
                let (ep, eb) = aug.rule_extra(r.cookie);
                packets += ep;
                bytes += eb;
            }
            agg.packet_count += packets;
            agg.byte_count += bytes;
            agg.flow_count += 1;
        }
        agg
    }

    fn build_table_stats(&self) -> Vec<TableStatsEntry> {
        // One table, like the OF 1.0 profile of the prototype's OVS. The
        // lookup/matched counters are switch-side only: packets riding a
        // bypass never enter the table, and the prototype makes the same
        // choice (only flow and port stats are shared-memory augmented).
        //
        // With the three-tier datapath (EMC → megaflow → classifier) the
        // `OFPST_TABLE` semantics are: `lookup_count` counts every packet
        // the datapath processed exactly once, whichever tier resolved it;
        // `matched_count` equals the sum of the per-tier hit counters.
        // The reply reports the single `matched` counter rather than
        // re-summing the tier counters, so a concurrent PMD cannot produce
        // a transient matched > lookups view. The identities are pinned by
        // `ovs_dp::pmd::tests::stats_split_by_tier_is_consistent` and
        // `table_stats_report_tier_consistent_counts` below.
        //
        // `tx_no_port_drops` (packets staged for a port that vanished
        // before flush) is deliberately *not* folded into these counters:
        // the drop happens after the match, so lookups/matched identities
        // hold regardless. It is observable via `Datapath::cache_stats`.
        let stats = self.dp.cache_stats();
        vec![TableStatsEntry {
            table_id: 0,
            name: "classifier".into(),
            max_entries: 1 << 20,
            active_count: self.dp.table().len() as u32,
            lookup_count: stats.lookups,
            matched_count: stats.matched,
        }]
    }

    fn build_desc_stats(&self) -> DescStats {
        DescStats {
            manufacturer: "vnf-highway (SIGCOMM'16 reproduction)".into(),
            hardware: "simulated OVS-DPDK datapath".into(),
            software: concat!("ovs-dp ", env!("CARGO_PKG_VERSION")).into(),
            serial: "None".into(),
            datapath: format!("dpid {:#x}", self.datapath_id),
        }
    }

    fn handle_packet_out(&self, po: PacketOut) {
        let snapshot: Vec<_> = self.dp.ports.read().values().cloned().collect();
        let mut pkt = Mbuf::from_slice(&po.data);
        let targets = crate::actions::execute(&mut pkt, &po.actions);
        let mut staged = BTreeMap::new();
        self.dp
            .stage_outputs(pkt, po.in_port, &targets, &mut staged, &snapshot);
        self.dp.flush_staged(&mut staged);
    }

    /// Processes every pending controller message and forwards queued
    /// packet-ins. Returns how many messages were handled.
    pub fn poll(&self) -> usize {
        let mut handled = 0;
        // Forward packet-ins punted by the datapath.
        for pi in self.dp.drain_packet_ins(64) {
            telemetry::coverage!("packet_in");
            self.send(&OfpMessage::PacketIn(pi), 0);
        }
        use std::sync::atomic::Ordering;
        loop {
            let msg = {
                let guard = self.link.lock();
                let msg = match guard.as_ref() {
                    Some(link) => link.try_recv(),
                    None => None,
                };
                // Raised before the dequeue's lock is released, so
                // `control_idle` never sees "queue empty, nothing
                // in flight" while a message awaits application below.
                if msg.is_some() {
                    self.control_inflight.store(true, Ordering::Release);
                }
                msg
            };
            let Some(msg) = msg else { break };
            let (msg, xid) = match msg {
                Ok(m) => m,
                Err(OfError::Disconnected) => {
                    self.control_inflight.store(false, Ordering::Release);
                    break;
                }
                Err(_e) => {
                    self.send(
                        &OfpMessage::Error {
                            err_type: 1, // OFPET_BAD_REQUEST
                            code: 0,
                        },
                        0,
                    );
                    self.control_inflight.store(false, Ordering::Release);
                    continue;
                }
            };
            handled += 1;
            match msg {
                OfpMessage::Hello => self.send(&OfpMessage::Hello, xid),
                OfpMessage::EchoRequest(data) => self.send(&OfpMessage::EchoReply(data), xid),
                OfpMessage::FeaturesRequest => {
                    let ports = self.dp.port_numbers().iter().map(|p| p.0).collect();
                    self.send(
                        &OfpMessage::FeaturesReply {
                            datapath_id: self.datapath_id,
                            ports,
                        },
                        xid,
                    );
                }
                OfpMessage::FlowMod(fm) => self.apply_flow_mod(&fm),
                OfpMessage::PortMod(pm) => self.apply_port_mod(&pm),
                OfpMessage::FlowStatsRequest(req) => {
                    let entries = self.build_flow_stats(&req);
                    self.send(&OfpMessage::FlowStatsReply(entries), xid);
                }
                OfpMessage::PortStatsRequest(req) => {
                    let entries = self.build_port_stats(&req);
                    self.send(&OfpMessage::PortStatsReply(entries), xid);
                }
                OfpMessage::AggregateStatsRequest(req) => {
                    let agg = self.build_aggregate_stats(&req);
                    self.send(&OfpMessage::AggregateStatsReply(agg), xid);
                }
                OfpMessage::TableStatsRequest => {
                    let entries = self.build_table_stats();
                    self.send(&OfpMessage::TableStatsReply(entries), xid);
                }
                OfpMessage::DescStatsRequest => {
                    let desc = self.build_desc_stats();
                    self.send(&OfpMessage::DescStatsReply(desc), xid);
                }
                OfpMessage::PacketOut(po) => self.handle_packet_out(po),
                OfpMessage::BarrierRequest => self.send(&OfpMessage::BarrierReply, xid),
                // Replies/asynchronous messages are controller-bound only.
                other => {
                    let _ = other;
                }
            }
            self.control_inflight.store(false, Ordering::Release);
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmd::PmdCaches;
    use crate::port::OvsPort;
    use openflow::messages::FlowMod;
    use packet_wire::PacketBuilder;
    use shmem_sim::channel;

    /// `OFPST_TABLE` reports the tier-consistent counters: one lookup per
    /// processed packet, matched == sum of per-tier hits — regardless of
    /// which cache tier resolved each packet.
    #[test]
    fn table_stats_report_tier_consistent_counts() {
        let dp = Datapath::new(false);
        let ofproto = Ofproto::new(Arc::clone(&dp), 0x1);
        let (sw1, mut vm1) = channel("t1", 64);
        let (sw2, _vm2) = channel("t2", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(1), "t1", sw1));
        dp.add_port(OvsPort::dpdkr(PortNo(2), "t2", sw2));
        ofproto.apply_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));

        let caches = Mutex::new(PmdCaches::new());
        // Same flow three times: classifier resolves once, EMC the rest.
        for _ in 0..3 {
            vm1.send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
                .unwrap();
            crate::pmd::pump_once(&dp, Some(&caches));
        }

        let entries = ofproto.build_table_stats();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lookup_count, 3);
        assert_eq!(entries[0].matched_count, 3);
        let s = dp.cache_stats();
        assert_eq!(entries[0].matched_count, s.matched);
        assert_eq!(
            s.matched,
            s.emc_hits + s.megaflow_hits + s.classifier_hits,
            "matched must equal the sum of per-tier hits"
        );
        assert_eq!(s.classifier_hits, 1);
        assert_eq!(s.emc_hits, 2);
        assert_eq!(s.megaflow_hits, 0);
        assert_eq!(s.lookups, s.matched + s.misses);
    }
}
