//! The OpenFlow flow table.
//!
//! Stores [`RuleEntry`]s with OF 1.0 add/modify/delete semantics and keeps
//! the tuple-space [`crate::classifier::Classifier`] in sync. Every mutation
//! bumps a generation counter that invalidates exact-match caches, and
//! returns a [`TableChange`] describing what happened so the ofproto layer
//! can notify observers (the p-2-p detector) and emit `FlowRemoved`s.

use crate::classifier::Classifier;
use dpdk_sim::cycles;
use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, FlowMatch, PortNo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One installed rule. Shared (`Arc`) between the table, the classifier and
/// EMC entries, so counters written by the datapath are immediately visible
/// to statistics readers.
#[derive(Debug)]
pub struct RuleEntry {
    /// Unique id (never reused within a table's lifetime).
    pub id: u64,
    pub fmatch: FlowMatch,
    pub priority: u16,
    pub actions: Vec<Action>,
    pub cookie: u64,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    /// Cycle stamp at installation (for duration / hard timeout).
    pub added_at: u64,
    /// Cycle stamp of the last hit (for idle timeout).
    pub last_used: AtomicU64,
    /// Packets handled via the switch datapath (bypass packets are counted
    /// separately in the shared stats region and merged at reply time).
    pub n_packets: AtomicU64,
    /// Bytes handled via the switch datapath.
    pub n_bytes: AtomicU64,
}

impl RuleEntry {
    /// Records a datapath hit of `bytes` at cycle time `now`.
    pub fn hit(&self, bytes: u64, now: u64) {
        self.n_packets.fetch_add(1, Ordering::Relaxed);
        self.n_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.last_used.store(now, Ordering::Relaxed);
    }

    /// Refreshes the idle-timeout clock without touching counters. Used
    /// when activity is observed out-of-band (bypassed traffic counted in
    /// the shared stats region): the rule is demonstrably not idle even
    /// though the switch never saw its packets.
    pub fn touch(&self, now: u64) {
        self.last_used.store(now, Ordering::Relaxed);
    }

    /// Switch-side counters `(packets, bytes)`.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.n_packets.load(Ordering::Relaxed),
            self.n_bytes.load(Ordering::Relaxed),
        )
    }
}

/// Loose-filter semantics shared by flow stats requests and loose
/// modify/delete: the filter hits a rule when it subsumes the rule's match.
pub fn loose_filter_matches(filter: &FlowMatch, rule: &FlowMatch) -> bool {
    subsumes(&filter.canonicalise(), rule)
}

/// `self` subsumes `other` when every packet matching `other` also matches
/// `self` — the relation OF 1.0 loose modify/delete uses.
fn subsumes(general: &FlowMatch, specific: &FlowMatch) -> bool {
    fn field_ok<T: PartialEq + Copy>(g: Option<T>, s: Option<T>) -> bool {
        match (g, s) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a == b,
        }
    }
    fn prefix_ok(g: Option<(std::net::Ipv4Addr, u8)>, s: Option<(std::net::Ipv4Addr, u8)>) -> bool {
        match (g, s) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((ga, gl)), Some((sa, sl))) => {
                if gl > sl {
                    return false;
                }
                let mask = if gl == 0 { 0 } else { u32::MAX << (32 - gl) };
                u32::from(ga) & mask == u32::from(sa) & mask
            }
        }
    }
    field_ok(general.in_port, specific.in_port)
        && field_ok(general.eth_src, specific.eth_src)
        && field_ok(general.eth_dst, specific.eth_dst)
        && field_ok(general.vlan_id, specific.vlan_id)
        && field_ok(general.eth_type, specific.eth_type)
        && field_ok(general.ip_tos, specific.ip_tos)
        && field_ok(general.ip_proto, specific.ip_proto)
        && prefix_ok(general.ipv4_src, specific.ipv4_src)
        && prefix_ok(general.ipv4_dst, specific.ipv4_dst)
        && field_ok(general.l4_src, specific.l4_src)
        && field_ok(general.l4_dst, specific.l4_dst)
}

/// The outcome of applying a flow_mod (or a timeout sweep).
#[derive(Debug, Default)]
pub struct TableChange {
    /// Rules inserted.
    pub added: Vec<Arc<RuleEntry>>,
    /// Rules whose actions changed in place (modify).
    pub modified: Vec<Arc<RuleEntry>>,
    /// Rules removed, with their final counters (for `FlowRemoved`).
    pub removed: Vec<Arc<RuleEntry>>,
    /// Rules displaced by an `Add` with the same match and priority. In
    /// OF 1.0 this replacement does *not* produce a `FlowRemoved`, which
    /// is also what makes replaying an `Add` after a controller reconnect
    /// idempotent on the wire.
    pub replaced: Vec<Arc<RuleEntry>>,
}

impl TableChange {
    /// True when nothing happened.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.modified.is_empty()
            && self.removed.is_empty()
            && self.replaced.is_empty()
    }
}

/// The flow table plus its classifier index.
///
/// Cloning produces a *snapshot*: rule entries stay shared (`Arc`, so
/// counters recorded through a snapshot are visible everywhere), the
/// classifier index is copied, and the generation cell stays shared so the
/// snapshot can be compared against the live counter. The datapath
/// publishes such snapshots RCU-style (see `Datapath::table` in
/// `crate::pmd`) so classify-path reads never touch the write-side lock.
pub struct FlowTable {
    rules: Vec<Arc<RuleEntry>>,
    classifier: Classifier,
    next_id: u64,
    generation: Arc<AtomicU64>,
    /// Generation this instance reflects. On the live (master) table it
    /// tracks the shared counter; on a clone it stays frozen at the value
    /// current when the snapshot was taken.
    as_of: u64,
}

impl Clone for FlowTable {
    fn clone(&self) -> FlowTable {
        FlowTable {
            rules: self.rules.clone(),
            classifier: self.classifier.clone(),
            next_id: self.next_id,
            generation: Arc::clone(&self.generation),
            as_of: self.as_of,
        }
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> FlowTable {
        FlowTable {
            rules: Vec::new(),
            classifier: Classifier::new(),
            next_id: 1,
            generation: Arc::new(AtomicU64::new(0)),
            as_of: 0,
        }
    }

    /// Shared handle to the generation counter (EMC invalidation).
    pub fn generation_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.generation)
    }

    /// Current generation (the live shared counter — keeps moving even
    /// after this instance was snapshotted).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Generation this instance reflects. Cache entries primed from a
    /// snapshot must be stamped with this frozen value, never the moving
    /// [`FlowTable::generation`] — otherwise a stale snapshot could
    /// populate the EMC/megaflow under a newer generation and serve stale
    /// actions after a table change.
    pub fn as_of(&self) -> u64 {
        self.as_of
    }

    fn bump(&mut self) {
        self.as_of = self.generation.fetch_add(1, Ordering::Release) + 1;
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules (unspecified order).
    pub fn rules(&self) -> &[Arc<RuleEntry>] {
        &self.rules
    }

    /// Highest-priority rule matching `(port, key)`; ties broken by lowest
    /// rule id (OF leaves it undefined; we make it deterministic).
    pub fn lookup(&self, port: PortNo, key: &packet_wire::FlowKey) -> Option<Arc<RuleEntry>> {
        self.classifier.lookup(port, key)
    }

    /// Like [`FlowTable::lookup`], but also returns the staged-unwildcarding
    /// mask accumulated by the classifier — the widest-safe wildcard under
    /// which a megaflow entry for this resolution may be installed.
    pub fn lookup_staged(
        &self,
        port: PortNo,
        key: &packet_wire::FlowKey,
    ) -> (Option<Arc<RuleEntry>>, openflow::fmatch::MatchMask) {
        self.classifier.lookup_staged(port, key)
    }

    /// Applies a flow_mod, returning what changed.
    pub fn apply(&mut self, fm: &FlowMod) -> TableChange {
        let fmatch = fm.fmatch.canonicalise();
        let mut change = TableChange::default();
        match fm.command {
            FlowModCommand::Add => {
                // Identical match+priority ⇒ replace (counters reset).
                if let Some(pos) = self
                    .rules
                    .iter()
                    .position(|r| r.fmatch == fmatch && r.priority == fm.priority)
                {
                    let old = self.rules.remove(pos);
                    self.classifier.remove(&old);
                    change.replaced.push(old);
                }
                let rule = Arc::new(RuleEntry {
                    id: self.next_id,
                    fmatch,
                    priority: fm.priority,
                    actions: fm.actions.clone(),
                    cookie: fm.cookie,
                    idle_timeout: fm.idle_timeout,
                    hard_timeout: fm.hard_timeout,
                    added_at: cycles::now(),
                    last_used: AtomicU64::new(cycles::now()),
                    n_packets: AtomicU64::new(0),
                    n_bytes: AtomicU64::new(0),
                });
                self.next_id += 1;
                self.classifier.insert(&rule);
                self.rules.push(Arc::clone(&rule));
                change.added.push(rule);
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let mut any = false;
                let mut new_rules = Vec::with_capacity(self.rules.len());
                for rule in self.rules.drain(..) {
                    let hit = if strict {
                        rule.fmatch == fmatch && rule.priority == fm.priority
                    } else {
                        subsumes(&fmatch, &rule.fmatch)
                    };
                    if hit {
                        any = true;
                        // Actions are immutable in the Arc; rebuild the entry
                        // keeping id and counters (OF modify preserves them).
                        let replacement = Arc::new(RuleEntry {
                            id: rule.id,
                            fmatch: rule.fmatch,
                            priority: rule.priority,
                            actions: fm.actions.clone(),
                            cookie: if fm.cookie != 0 {
                                fm.cookie
                            } else {
                                rule.cookie
                            },
                            idle_timeout: rule.idle_timeout,
                            hard_timeout: rule.hard_timeout,
                            added_at: rule.added_at,
                            last_used: AtomicU64::new(rule.last_used.load(Ordering::Relaxed)),
                            n_packets: AtomicU64::new(rule.n_packets.load(Ordering::Relaxed)),
                            n_bytes: AtomicU64::new(rule.n_bytes.load(Ordering::Relaxed)),
                        });
                        self.classifier.remove(&rule);
                        self.classifier.insert(&replacement);
                        change.modified.push(Arc::clone(&replacement));
                        new_rules.push(replacement);
                    } else {
                        new_rules.push(rule);
                    }
                }
                self.rules = new_rules;
                // OF 1.0: a modify that matches nothing behaves like an add.
                if !any {
                    let add = FlowMod {
                        command: FlowModCommand::Add,
                        ..fm.clone()
                    };
                    let mut sub = self.apply(&add);
                    change.added.append(&mut sub.added);
                    change.replaced.append(&mut sub.replaced);
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let out_filter = fm.out_port;
                let mut kept = Vec::with_capacity(self.rules.len());
                for rule in self.rules.drain(..) {
                    let match_hit = if strict {
                        rule.fmatch == fmatch && rule.priority == fm.priority
                    } else {
                        subsumes(&fmatch, &rule.fmatch)
                    };
                    let port_hit = out_filter == PortNo::NONE
                        || rule
                            .actions
                            .iter()
                            .any(|a| *a == Action::Output(out_filter));
                    if match_hit && port_hit {
                        self.classifier.remove(&rule);
                        change.removed.push(rule);
                    } else {
                        kept.push(rule);
                    }
                }
                self.rules = kept;
            }
        }
        if !change.is_empty() {
            self.bump();
        }
        change
    }

    /// Evicts rules whose idle or hard timeout has expired at cycle `now`.
    pub fn sweep_timeouts(&mut self, now: u64) -> TableChange {
        let mut change = TableChange::default();
        let mut kept = Vec::with_capacity(self.rules.len());
        for rule in self.rules.drain(..) {
            let hard_hit = rule.hard_timeout > 0
                && now.saturating_sub(rule.added_at)
                    >= u64::from(rule.hard_timeout) * cycles::CPU_HZ;
            let idle_hit = rule.idle_timeout > 0
                && now.saturating_sub(rule.last_used.load(Ordering::Relaxed))
                    >= u64::from(rule.idle_timeout) * cycles::CPU_HZ;
            if hard_hit || idle_hit {
                self.classifier.remove(&rule);
                change.removed.push(rule);
            } else {
                kept.push(rule);
            }
        }
        self.rules = kept;
        if !change.is_empty() {
            self.bump();
        }
        change
    }
}

impl std::fmt::Debug for FlowTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("rules", &self.rules.len())
            .field("generation", &self.generation())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet_wire::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn key_to(dst_port: u16) -> FlowKey {
        FlowKey::extract(&PacketBuilder::udp_probe(64).ports(1000, dst_port).build())
    }

    fn out(p: u16) -> Vec<Action> {
        vec![Action::Output(PortNo(p))]
    }

    #[test]
    fn add_and_lookup_by_priority() {
        let mut t = FlowTable::new();
        t.apply(&FlowMod::add(FlowMatch::any(), 1, out(9)));
        let mut narrow = FlowMatch::any();
        narrow.l4_dst = Some(80);
        t.apply(&FlowMod::add(narrow, 100, out(2)));

        let hit = t.lookup(PortNo(1), &key_to(80)).unwrap();
        assert_eq!(hit.actions, out(2));
        let miss = t.lookup(PortNo(1), &key_to(81)).unwrap();
        assert_eq!(miss.actions, out(9));
    }

    #[test]
    fn add_identical_replaces_and_resets_counters() {
        let mut t = FlowTable::new();
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(2)));
        let rule = t.lookup(PortNo(1), &key_to(1)).unwrap();
        rule.hit(64, cycles::now());
        assert_eq!(rule.counters().0, 1);

        let change = t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(3)));
        assert_eq!(change.added.len(), 1);
        // The displaced rule is a replacement, not a removal: OF 1.0 sends
        // no FlowRemoved for it (and replayed Adds stay idempotent).
        assert_eq!(change.replaced.len(), 1);
        assert!(change.removed.is_empty());
        let rule = t.lookup(PortNo(1), &key_to(1)).unwrap();
        assert_eq!(rule.actions, out(3));
        assert_eq!(rule.counters().0, 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_delete_requires_exact_match_and_priority() {
        let mut t = FlowTable::new();
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(2)));
        let miss = t.apply(&FlowMod::delete_strict(FlowMatch::in_port(PortNo(1)), 6));
        assert!(miss.is_empty());
        assert_eq!(t.len(), 1);
        let hit = t.apply(&FlowMod::delete_strict(FlowMatch::in_port(PortNo(1)), 5));
        assert_eq!(hit.removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn loose_delete_uses_subsumption() {
        let mut t = FlowTable::new();
        let mut narrow = FlowMatch::in_port(PortNo(1));
        narrow.l4_dst = Some(80);
        t.apply(&FlowMod::add(narrow, 10, out(2)));
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(2)), 10, out(3)));

        // Deleting "everything from port 1" removes only the first.
        let change = t.apply(&FlowMod::delete(FlowMatch::in_port(PortNo(1))));
        assert_eq!(change.removed.len(), 1);
        assert_eq!(t.len(), 1);

        // Deleting with an any-match removes the rest.
        let change = t.apply(&FlowMod::delete(FlowMatch::any()));
        assert_eq!(change.removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn loose_delete_with_out_port_filter() {
        let mut t = FlowTable::new();
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(2)));
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(2)), 5, out(3)));
        let mut del = FlowMod::delete(FlowMatch::any());
        del.out_port = PortNo(3);
        let change = t.apply(&del);
        assert_eq!(change.removed.len(), 1);
        assert_eq!(change.removed[0].actions, out(3));
    }

    #[test]
    fn modify_preserves_counters_and_id() {
        let mut t = FlowTable::new();
        t.apply(&FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(2)));
        let before = t.lookup(PortNo(1), &key_to(1)).unwrap();
        before.hit(64, cycles::now());
        let old_id = before.id;

        let mut fm = FlowMod::add(FlowMatch::in_port(PortNo(1)), 5, out(7));
        fm.command = FlowModCommand::ModifyStrict;
        let change = t.apply(&fm);
        assert_eq!(change.modified.len(), 1);
        let after = t.lookup(PortNo(1), &key_to(1)).unwrap();
        assert_eq!(after.id, old_id);
        assert_eq!(after.actions, out(7));
        assert_eq!(after.counters(), (1, 64));
    }

    #[test]
    fn modify_of_nothing_behaves_like_add() {
        let mut t = FlowTable::new();
        let mut fm = FlowMod::add(FlowMatch::in_port(PortNo(9)), 5, out(1));
        fm.command = FlowModCommand::Modify;
        let change = t.apply(&fm);
        assert_eq!(change.added.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn generation_bumps_only_on_real_changes() {
        let mut t = FlowTable::new();
        let g0 = t.generation();
        t.apply(&FlowMod::delete(FlowMatch::any())); // no-op
        assert_eq!(t.generation(), g0);
        t.apply(&FlowMod::add(FlowMatch::any(), 1, out(1)));
        assert!(t.generation() > g0);
    }

    #[test]
    fn subsumption_on_prefixes() {
        let mut gen = FlowMatch::any();
        gen.ipv4_dst = Some((Ipv4Addr::new(10, 0, 0, 0), 8));
        let mut spec = FlowMatch::any();
        spec.ipv4_dst = Some((Ipv4Addr::new(10, 1, 0, 0), 16));
        assert!(subsumes(&gen, &spec));
        assert!(!subsumes(&spec, &gen));
        assert!(subsumes(&gen, &gen));
        let mut other = FlowMatch::any();
        other.ipv4_dst = Some((Ipv4Addr::new(11, 0, 0, 0), 8));
        assert!(!subsumes(&gen, &other));
    }

    #[test]
    fn hard_timeout_sweep() {
        let mut t = FlowTable::new();
        let mut fm = FlowMod::add(FlowMatch::any(), 1, out(1));
        fm.hard_timeout = 1; // 1 second
        t.apply(&fm);
        assert!(t.sweep_timeouts(cycles::now()).is_empty());
        // Jump 2 simulated seconds ahead.
        let later = cycles::now() + 2 * cycles::CPU_HZ;
        let change = t.sweep_timeouts(later);
        assert_eq!(change.removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_hit() {
        let mut t = FlowTable::new();
        let mut fm = FlowMod::add(FlowMatch::any(), 1, out(1));
        fm.idle_timeout = 1;
        t.apply(&fm);
        let rule = t.lookup(PortNo(1), &key_to(1)).unwrap();
        let later = cycles::now() + 2 * cycles::CPU_HZ;
        rule.hit(64, later); // activity just before the sweep
        assert!(t.sweep_timeouts(later).is_empty());
        let much_later = later + 2 * cycles::CPU_HZ;
        assert_eq!(t.sweep_timeouts(much_later).removed.len(), 1);
    }
}
