//! `ovs-ofctl dump-flows`-style textual rendering of the flow table, the
//! per-PMD megaflow caches (`ovs-dpctl dump-flows`-style) and ports — the
//! operator-facing view of the switch, handy in examples and when
//! debugging steering rules.

use crate::megaflow::MegaflowRow;
use crate::pmd::Datapath;
use crate::table::RuleEntry;
use openflow::fmatch::{MatchMask, ProjectedKey};
use openflow::{Action, PortNo};
use std::net::Ipv4Addr;

fn fmt_match(rule: &RuleEntry) -> String {
    let m = &rule.fmatch;
    let mut parts: Vec<String> = Vec::new();
    if let Some(p) = m.in_port {
        parts.push(format!("in_port={p}"));
    }
    if let Some(mac) = m.eth_src {
        parts.push(format!("dl_src={mac}"));
    }
    if let Some(mac) = m.eth_dst {
        parts.push(format!("dl_dst={mac}"));
    }
    if let Some(v) = m.vlan_id {
        parts.push(format!("dl_vlan={v}"));
    }
    if let Some(t) = m.eth_type {
        parts.push(format!("dl_type=0x{t:04x}"));
    }
    if let Some(t) = m.ip_tos {
        parts.push(format!("nw_tos={t}"));
    }
    if let Some(p) = m.ip_proto {
        parts.push(format!("nw_proto={p}"));
    }
    if let Some((a, l)) = m.ipv4_src {
        parts.push(format!("nw_src={a}/{l}"));
    }
    if let Some((a, l)) = m.ipv4_dst {
        parts.push(format!("nw_dst={a}/{l}"));
    }
    if let Some(p) = m.l4_src {
        parts.push(format!("tp_src={p}"));
    }
    if let Some(p) = m.l4_dst {
        parts.push(format!("tp_dst={p}"));
    }
    if parts.is_empty() {
        "*".into()
    } else {
        parts.join(",")
    }
}

fn fmt_actions(actions: &[Action]) -> String {
    if actions.is_empty() {
        return "drop".into();
    }
    actions
        .iter()
        .map(|a| match a {
            Action::Output(PortNo(p)) => match PortNo(*p) {
                PortNo::FLOOD => "FLOOD".into(),
                PortNo::ALL => "ALL".into(),
                PortNo::CONTROLLER => "CONTROLLER".into(),
                PortNo::IN_PORT => "IN_PORT".into(),
                PortNo(n) => format!("output:{n}"),
            },
            Action::SetVlanId(v) => format!("mod_vlan_vid:{v}"),
            Action::StripVlan => "strip_vlan".into(),
            Action::SetEthSrc(m) => format!("mod_dl_src:{m}"),
            Action::SetEthDst(m) => format!("mod_dl_dst:{m}"),
            Action::SetIpv4Src(a) => format!("mod_nw_src:{a}"),
            Action::SetIpv4Dst(a) => format!("mod_nw_dst:{a}"),
            Action::SetIpTos(t) => format!("mod_nw_tos:{t}"),
            Action::SetL4Src(p) => format!("mod_tp_src:{p}"),
            Action::SetL4Dst(p) => format!("mod_tp_dst:{p}"),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the flow table like `ovs-ofctl dump-flows`, one rule per line,
/// highest priority first (ties by id).
pub fn dump_flows(dp: &Datapath) -> String {
    let table = dp.table();
    let mut rules: Vec<_> = table.rules().to_vec();
    rules.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.id.cmp(&b.id)));
    let mut out = String::new();
    for r in rules {
        let (packets, bytes) = r.counters();
        out.push_str(&format!(
            " cookie=0x{:x}, n_packets={packets}, n_bytes={bytes}, priority={},{} actions={}\n",
            r.cookie,
            r.priority,
            if fmt_match(&r) == "*" {
                String::new()
            } else {
                format!("{},", fmt_match(&r))
            },
            fmt_actions(&r.actions),
        ));
    }
    out
}

/// Renders a megaflow's masked key `ovs-dpctl`-style: only the fields the
/// staged mask pins appear; everything else is wildcarded by omission.
fn fmt_masked_key(mask: &MatchMask, key: &ProjectedKey) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(p) = key.in_port {
        parts.push(format!("in_port({p})"));
    }
    if let Some(m) = key.eth_src {
        parts.push(format!("eth(src={m})"));
    }
    if let Some(m) = key.eth_dst {
        parts.push(format!("eth(dst={m})"));
    }
    if let Some(v) = key.vlan_id {
        parts.push(format!("vlan({v})"));
    }
    if let Some(t) = key.eth_type {
        parts.push(format!("eth_type(0x{t:04x})"));
    }
    if let Some(t) = key.ip_tos {
        parts.push(format!("ipv4(tos={t})"));
    }
    if let Some(p) = key.ip_proto {
        parts.push(format!("ipv4(proto={p})"));
    }
    if mask.ipv4_src_len > 0 {
        parts.push(format!(
            "ipv4(src={}/{})",
            Ipv4Addr::from(key.ipv4_src),
            mask.ipv4_src_len
        ));
    }
    if mask.ipv4_dst_len > 0 {
        parts.push(format!(
            "ipv4(dst={}/{})",
            Ipv4Addr::from(key.ipv4_dst),
            mask.ipv4_dst_len
        ));
    }
    if let Some(p) = key.l4_src {
        parts.push(format!("l4(src={p})"));
    }
    if let Some(p) = key.l4_dst {
        parts.push(format!("l4(dst={p})"));
    }
    if parts.is_empty() {
        "*".into()
    } else {
        parts.join(",")
    }
}

/// Renders every PMD's megaflow cache like `ovs-dpctl dump-flows`: one
/// masked aggregate per line with its traffic counters and resolved
/// actions, busiest first, grouped per PMD.
pub fn dump_megaflows(dp: &Datapath) -> String {
    let mut out = String::new();
    for (pmd, rows) in dp.megaflow_rows().into_iter().enumerate() {
        out.push_str(&format!("pmd {pmd}: {} megaflows\n", rows.len()));
        for row in rows {
            out.push_str(&format_megaflow_row(&row));
        }
    }
    out
}

/// One `dpctl`-style line for a megaflow row (used by [`dump_megaflows`]
/// and by callers holding a [`crate::megaflow::Megaflow`] directly).
pub fn format_megaflow_row(row: &MegaflowRow) -> String {
    format!(
        " {}, packets:{}, bytes:{}, rule:{}, actions:{}\n",
        fmt_masked_key(&row.mask, &row.key),
        row.n_packets,
        row.n_bytes,
        row.rule_id,
        fmt_actions(&row.actions),
    )
}

/// Renders the datapath-wide counters like `ovs-dpctl show`'s stats block:
/// the tier-split lookup identities plus every drop class (miss, tx to a
/// vanished port, fan-out ring overflow, packet-in queue overflow).
pub fn dump_datapath_stats(dp: &Datapath) -> String {
    use std::sync::atomic::Ordering;
    let s = dp.cache_stats();
    let mut out = String::new();
    out.push_str(&format!(
        "  lookups: hit:{} missed:{} total:{}\n",
        s.matched, s.misses, s.lookups
    ));
    out.push_str(&format!(
        "  cache tiers: emc:{} megaflow:{} classifier:{}\n",
        s.emc_hits, s.megaflow_hits, s.classifier_hits
    ));
    out.push_str(&format!(
        "  drops: miss:{} tx_no_port:{} fanout:{} packet_in:{}\n",
        dp.miss_drops.load(Ordering::Relaxed),
        s.tx_no_port_drops,
        dp.fanout_drops.load(Ordering::Relaxed),
        dp.packet_in_drops.load(Ordering::Relaxed),
    ));
    out
}

/// Renders the port list like `ovs-ofctl dump-ports` (administratively
/// disabled ports are flagged, like `LINK_DOWN` in `ovs-ofctl show`).
pub fn dump_ports(dp: &Datapath) -> String {
    let ports = dp.ports.read();
    let mut out = String::new();
    for port in ports.values() {
        let s = port.stats();
        out.push_str(&format!(
            "  port {:>4} ({}){}: rx pkts={}, bytes={}, drop={} | tx pkts={}, bytes={}, drop={}\n",
            port.no.0,
            port.name,
            if port.is_admin_up() {
                ""
            } else {
                " [PORT_DOWN]"
            },
            s.ipackets,
            s.ibytes,
            s.imissed,
            s.opackets,
            s.obytes,
            s.odropped,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::FlowMatch;

    #[test]
    fn dump_formats_rules_like_ofctl() {
        let dp = Datapath::new(false);
        let mut m = FlowMatch::in_port(PortNo(1));
        m.eth_type = Some(0x0800);
        m.l4_dst = Some(80);
        dp.table_apply(&FlowMod::add(m, 200, vec![Action::Output(PortNo(2))]).with_cookie(0xbeef));
        dp.table_apply(&FlowMod::add(FlowMatch::any(), 1, vec![]));

        let dump = dump_flows(&dp);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        // Priority order: the specific rule first.
        assert!(lines[0].contains("cookie=0xbeef"));
        assert!(lines[0].contains("in_port=1"));
        assert!(lines[0].contains("dl_type=0x0800"));
        assert!(lines[0].contains("tp_dst=80"));
        assert!(lines[0].contains("actions=output:2"));
        assert!(lines[1].contains("actions=drop"));
    }

    #[test]
    fn dump_ports_includes_counters() {
        let dp = Datapath::new(false);
        let (sw_end, mut vm_end) = shmem_sim::channel("d1", 8);
        dp.add_port(crate::port::OvsPort::dpdkr(PortNo(3), "dpdkr3", sw_end));
        vm_end.send(dpdk_sim::Mbuf::from_slice(&[0u8; 64])).unwrap();
        let mut rx = Vec::new();
        dp.port(PortNo(3)).unwrap().rx_burst(&mut rx, 8);
        let dump = dump_ports(&dp);
        assert!(dump.contains("port    3 (dpdkr3)"));
        assert!(dump.contains("rx pkts=1, bytes=64"));
    }

    #[test]
    fn dump_megaflows_renders_masked_aggregates() {
        use crate::pmd::PmdCaches;
        use parking_lot::Mutex;
        use std::sync::Arc;

        let dp = Datapath::new(false);
        let (sw1, mut vm1) = shmem_sim::channel("m1", 8);
        let (sw2, _vm2) = shmem_sim::channel("m2", 8);
        dp.add_port(crate::port::OvsPort::dpdkr(PortNo(1), "m1", sw1));
        dp.add_port(crate::port::OvsPort::dpdkr(PortNo(2), "m2", sw2));
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(80);
        dp.table_apply(&FlowMod::add(m, 10, vec![Action::Output(PortNo(2))]));

        let caches = Arc::new(Mutex::new(PmdCaches::new()));
        dp.register_pmd_caches(&caches);
        vm1.send(dpdk_sim::Mbuf::from_slice(
            &packet_wire::PacketBuilder::udp_probe(64)
                .ports(5, 80)
                .build(),
        ))
        .unwrap();
        crate::pmd::pump_once(&dp, Some(&*caches));

        let dump = dump_megaflows(&dp);
        assert!(dump.contains("pmd 0: 1 megaflows"), "{dump}");
        assert!(dump.contains("in_port(1)"), "{dump}");
        assert!(dump.contains("l4(dst=80)"), "{dump}");
        assert!(dump.contains("actions:output:2"), "{dump}");
        // The resolving packet seeds the fresh entry's counters.
        assert!(dump.contains("packets:1, bytes:64"), "{dump}");
    }

    #[test]
    fn dump_datapath_stats_reports_drop_classes() {
        let dp = Datapath::new(false);
        dp.lookups.store(10, std::sync::atomic::Ordering::Relaxed);
        dp.matched.store(8, std::sync::atomic::Ordering::Relaxed);
        dp.emc_hits.store(5, std::sync::atomic::Ordering::Relaxed);
        dp.megaflow_hits
            .store(2, std::sync::atomic::Ordering::Relaxed);
        dp.classifier_hits
            .store(1, std::sync::atomic::Ordering::Relaxed);
        dp.miss_drops.store(2, std::sync::atomic::Ordering::Relaxed);
        dp.tx_no_port_drops
            .store(3, std::sync::atomic::Ordering::Relaxed);
        dp.fanout_drops
            .store(4, std::sync::atomic::Ordering::Relaxed);
        let dump = dump_datapath_stats(&dp);
        assert!(dump.contains("lookups: hit:8 missed:2 total:10"), "{dump}");
        assert!(
            dump.contains("cache tiers: emc:5 megaflow:2 classifier:1"),
            "{dump}"
        );
        assert!(
            dump.contains("drops: miss:2 tx_no_port:3 fanout:4 packet_in:0"),
            "{dump}"
        );
    }

    #[test]
    fn reserved_ports_render_by_name() {
        assert_eq!(fmt_actions(&[Action::Output(PortNo::FLOOD)]), "FLOOD");
        assert_eq!(
            fmt_actions(&[Action::SetIpTos(4), Action::Output(PortNo(9))]),
            "mod_nw_tos:4,output:9"
        );
    }
}
