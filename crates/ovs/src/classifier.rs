//! Tuple-space classifier (OVS `dpcls`).
//!
//! Rules are grouped into *subtables* by wildcard mask; within a subtable a
//! packet projected onto the mask is an exact hash key. A lookup probes
//! subtables in descending order of their best rule priority, keeping the
//! best-priority hit and stopping as soon as no remaining subtable can beat
//! it — O(#masks consulted) instead of O(#rules), which is why real service
//! graphs with thousands of rules but a handful of distinct masks classify
//! quickly.
//!
//! Lookups also support *staged unwildcarding*: [`Classifier::lookup_staged`]
//! returns the fold of the masks of every subtable it consulted. Any packet
//! that agrees with the looked-up packet on the folded fields walks the same
//! subtables, sees the same candidates and exits at the same point — so the
//! folded mask is a sound wildcard for a megaflow cache entry covering the
//! widest-safe traffic aggregate.

use crate::table::RuleEntry;
use openflow::fmatch::{FlowMatch, MatchMask, ProjectedKey};
use openflow::PortNo;
use packet_wire::FlowKey;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone)]
struct Subtable {
    mask: MatchMask,
    /// Projected rule key → rules with that projection, best priority first.
    entries: HashMap<ProjectedKey, Vec<Arc<RuleEntry>>>,
    len: usize,
    /// Best priority of any rule in this subtable (probe-order sort key;
    /// lookups stop once the running best beats every remaining subtable).
    max_priority: u16,
}

/// The classifier index over a flow table's rules.
///
/// Cloning copies the index structure while sharing the rule entries
/// (`Arc`) — how [`crate::table::FlowTable`] snapshots stay cheap.
#[derive(Clone)]
pub struct Classifier {
    subtables: Vec<Subtable>,
}

impl Default for Classifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier {
    /// Creates an empty classifier.
    pub fn new() -> Classifier {
        Classifier {
            subtables: Vec::new(),
        }
    }

    /// Number of distinct masks (subtables).
    pub fn subtable_count(&self) -> usize {
        self.subtables.len()
    }

    /// Indexes a rule.
    pub fn insert(&mut self, rule: &Arc<RuleEntry>) {
        let mask = rule.fmatch.mask();
        let (sub, is_new) = match self.subtables.iter_mut().position(|s| s.mask == mask) {
            Some(i) => (&mut self.subtables[i], false),
            None => {
                self.subtables.push(Subtable {
                    mask,
                    entries: HashMap::new(),
                    len: 0,
                    max_priority: 0,
                });
                (self.subtables.last_mut().expect("just pushed"), true)
            }
        };
        let bucket = sub.entries.entry(rule.fmatch.own_projection()).or_default();
        // Keep best priority first; stable for equal priorities (insertion
        // order ⇒ lower id first because ids are monotonic).
        let pos = bucket
            .iter()
            .position(|r| r.priority < rule.priority)
            .unwrap_or(bucket.len());
        bucket.insert(pos, Arc::clone(rule));
        sub.len += 1;
        // Probe order only changes when a subtable appears or its best
        // priority rises; skip the resort for the common case (another
        // rule at or below the subtable's existing ceiling).
        let raised = rule.priority > sub.max_priority;
        sub.max_priority = sub.max_priority.max(rule.priority);
        if is_new || raised {
            self.resort();
        }
    }

    /// Unindexes a rule (by id).
    pub fn remove(&mut self, rule: &Arc<RuleEntry>) {
        let mask = rule.fmatch.mask();
        if let Some(idx) = self.subtables.iter().position(|s| s.mask == mask) {
            let sub = &mut self.subtables[idx];
            let proj = rule.fmatch.own_projection();
            if let Some(bucket) = sub.entries.get_mut(&proj) {
                if let Some(pos) = bucket.iter().position(|r| r.id == rule.id) {
                    bucket.remove(pos);
                    sub.len -= 1;
                }
                if bucket.is_empty() {
                    sub.entries.remove(&proj);
                }
            }
            if sub.entries.is_empty() {
                self.subtables.remove(idx);
            } else if rule.priority == sub.max_priority {
                // Buckets keep best priority first, so the subtable max is
                // the max over bucket heads.
                sub.max_priority = sub
                    .entries
                    .values()
                    .filter_map(|b| b.first())
                    .map(|r| r.priority)
                    .max()
                    .unwrap_or(0);
                self.resort();
            }
        }
    }

    /// Restores the probe-order invariant: subtables sorted by descending
    /// `max_priority`. Stable, so the order (and therefore the staged mask
    /// of any lookup) is deterministic between table mutations.
    fn resort(&mut self) {
        self.subtables
            .sort_by_key(|s| std::cmp::Reverse(s.max_priority));
    }

    /// Best-priority rule matching `(port, key)`; ties broken by lowest id.
    pub fn lookup(&self, port: PortNo, key: &FlowKey) -> Option<Arc<RuleEntry>> {
        self.lookup_staged(port, key).0
    }

    /// Like [`Classifier::lookup`], but also returns the fold of the masks
    /// of every subtable consulted — the *staged unwildcarding* mask. A
    /// megaflow entry installed under this mask is sound: every packet
    /// projecting equal under it resolves to the same rule (or the same
    /// miss) as a cold classifier walk.
    pub fn lookup_staged(
        &self,
        port: PortNo,
        key: &FlowKey,
    ) -> (Option<Arc<RuleEntry>>, MatchMask) {
        let mut best: Option<&Arc<RuleEntry>> = None;
        let mut staged = MatchMask::empty();
        for sub in &self.subtables {
            if let Some(b) = best {
                // Probe order is descending max_priority: once the running
                // best strictly beats a subtable's ceiling it beats all that
                // follow. Equal ceilings must still be probed — a same-
                // priority candidate with a lower id wins the tie.
                if b.priority > sub.max_priority {
                    break;
                }
            }
            staged.fold(&sub.mask);
            let proj = FlowMatch::project(&sub.mask, port, key);
            if let Some(bucket) = sub.entries.get(&proj) {
                if let Some(candidate) = bucket.first() {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            candidate.priority > b.priority
                                || (candidate.priority == b.priority && candidate.id < b.id)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        (best.cloned(), staged)
    }
}

impl std::fmt::Debug for Classifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Classifier")
            .field("subtables", &self.subtables.len())
            .field(
                "rules",
                &self.subtables.iter().map(|s| s.len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::Action;
    use packet_wire::PacketBuilder;
    use std::sync::atomic::AtomicU64;

    fn rule(id: u64, fmatch: FlowMatch, priority: u16, out: u16) -> Arc<RuleEntry> {
        Arc::new(RuleEntry {
            id,
            fmatch: fmatch.canonicalise(),
            priority,
            actions: vec![Action::Output(PortNo(out))],
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            added_at: 0,
            last_used: AtomicU64::new(0),
            n_packets: AtomicU64::new(0),
            n_bytes: AtomicU64::new(0),
        })
    }

    fn key() -> FlowKey {
        FlowKey::extract(&PacketBuilder::udp_probe(64).ports(5, 80).build())
    }

    #[test]
    fn same_mask_rules_share_a_subtable() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::in_port(PortNo(1)), 10, 2));
        c.insert(&rule(2, FlowMatch::in_port(PortNo(2)), 10, 3));
        assert_eq!(c.subtable_count(), 1);
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(80);
        c.insert(&rule(3, m, 20, 4));
        assert_eq!(c.subtable_count(), 2);
    }

    #[test]
    fn priority_wins_across_subtables() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::any(), 1, 9));
        let mut m = FlowMatch::any();
        m.l4_dst = Some(80);
        c.insert(&rule(2, m, 50, 2));
        let hit = c.lookup(PortNo(7), &key()).unwrap();
        assert_eq!(hit.id, 2);

        let mut other = key();
        other.l4_dst = 81;
        let hit = c.lookup(PortNo(7), &other).unwrap();
        assert_eq!(hit.id, 1);
    }

    #[test]
    fn equal_priority_breaks_ties_by_id() {
        let mut c = Classifier::new();
        c.insert(&rule(5, FlowMatch::any(), 10, 1));
        c.insert(&rule(3, FlowMatch::in_port(PortNo(1)), 10, 2));
        let hit = c.lookup(PortNo(1), &key()).unwrap();
        assert_eq!(hit.id, 3);
    }

    #[test]
    fn remove_cleans_empty_subtables() {
        let mut c = Classifier::new();
        let r = rule(1, FlowMatch::in_port(PortNo(1)), 10, 2);
        c.insert(&r);
        assert_eq!(c.subtable_count(), 1);
        c.remove(&r);
        assert_eq!(c.subtable_count(), 0);
        assert!(c.lookup(PortNo(1), &key()).is_none());
    }

    #[test]
    fn miss_returns_none() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::in_port(PortNo(3)), 10, 2));
        assert!(c.lookup(PortNo(4), &key()).is_none());
    }
}
