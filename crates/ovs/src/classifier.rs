//! Tuple-space classifier (OVS `dpcls`).
//!
//! Rules are grouped into *subtables* by wildcard mask; within a subtable a
//! packet projected onto the mask is an exact hash key. A lookup probes each
//! subtable once, keeping the best-priority hit — O(#masks) instead of
//! O(#rules), which is why real service graphs with thousands of rules but a
//! handful of distinct masks classify quickly.

use crate::table::RuleEntry;
use openflow::fmatch::{FlowMatch, MatchMask, ProjectedKey};
use openflow::PortNo;
use packet_wire::FlowKey;
use std::collections::HashMap;
use std::sync::Arc;

struct Subtable {
    mask: MatchMask,
    /// Projected rule key → rules with that projection, best priority first.
    entries: HashMap<ProjectedKey, Vec<Arc<RuleEntry>>>,
    len: usize,
}

/// The classifier index over a flow table's rules.
pub struct Classifier {
    subtables: Vec<Subtable>,
}

impl Default for Classifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier {
    /// Creates an empty classifier.
    pub fn new() -> Classifier {
        Classifier {
            subtables: Vec::new(),
        }
    }

    /// Number of distinct masks (subtables).
    pub fn subtable_count(&self) -> usize {
        self.subtables.len()
    }

    /// Indexes a rule.
    pub fn insert(&mut self, rule: &Arc<RuleEntry>) {
        let mask = rule.fmatch.mask();
        let sub = match self.subtables.iter_mut().find(|s| s.mask == mask) {
            Some(s) => s,
            None => {
                self.subtables.push(Subtable {
                    mask,
                    entries: HashMap::new(),
                    len: 0,
                });
                self.subtables.last_mut().expect("just pushed")
            }
        };
        let bucket = sub.entries.entry(rule.fmatch.own_projection()).or_default();
        // Keep best priority first; stable for equal priorities (insertion
        // order ⇒ lower id first because ids are monotonic).
        let pos = bucket
            .iter()
            .position(|r| r.priority < rule.priority)
            .unwrap_or(bucket.len());
        bucket.insert(pos, Arc::clone(rule));
        sub.len += 1;
    }

    /// Unindexes a rule (by id).
    pub fn remove(&mut self, rule: &Arc<RuleEntry>) {
        let mask = rule.fmatch.mask();
        if let Some(idx) = self.subtables.iter().position(|s| s.mask == mask) {
            let sub = &mut self.subtables[idx];
            let proj = rule.fmatch.own_projection();
            if let Some(bucket) = sub.entries.get_mut(&proj) {
                if let Some(pos) = bucket.iter().position(|r| r.id == rule.id) {
                    bucket.remove(pos);
                    sub.len -= 1;
                }
                if bucket.is_empty() {
                    sub.entries.remove(&proj);
                }
            }
            if sub.entries.is_empty() {
                self.subtables.swap_remove(idx);
            }
        }
    }

    /// Best-priority rule matching `(port, key)`; ties broken by lowest id.
    pub fn lookup(&self, port: PortNo, key: &FlowKey) -> Option<Arc<RuleEntry>> {
        let mut best: Option<&Arc<RuleEntry>> = None;
        for sub in &self.subtables {
            let proj = FlowMatch::project(&sub.mask, port, key);
            if let Some(bucket) = sub.entries.get(&proj) {
                if let Some(candidate) = bucket.first() {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            candidate.priority > b.priority
                                || (candidate.priority == b.priority && candidate.id < b.id)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        best.cloned()
    }
}

impl std::fmt::Debug for Classifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Classifier")
            .field("subtables", &self.subtables.len())
            .field(
                "rules",
                &self.subtables.iter().map(|s| s.len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::Action;
    use packet_wire::PacketBuilder;
    use std::sync::atomic::AtomicU64;

    fn rule(id: u64, fmatch: FlowMatch, priority: u16, out: u16) -> Arc<RuleEntry> {
        Arc::new(RuleEntry {
            id,
            fmatch: fmatch.canonicalise(),
            priority,
            actions: vec![Action::Output(PortNo(out))],
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            added_at: 0,
            last_used: AtomicU64::new(0),
            n_packets: AtomicU64::new(0),
            n_bytes: AtomicU64::new(0),
        })
    }

    fn key() -> FlowKey {
        FlowKey::extract(&PacketBuilder::udp_probe(64).ports(5, 80).build())
    }

    #[test]
    fn same_mask_rules_share_a_subtable() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::in_port(PortNo(1)), 10, 2));
        c.insert(&rule(2, FlowMatch::in_port(PortNo(2)), 10, 3));
        assert_eq!(c.subtable_count(), 1);
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(80);
        c.insert(&rule(3, m, 20, 4));
        assert_eq!(c.subtable_count(), 2);
    }

    #[test]
    fn priority_wins_across_subtables() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::any(), 1, 9));
        let mut m = FlowMatch::any();
        m.l4_dst = Some(80);
        c.insert(&rule(2, m, 50, 2));
        let hit = c.lookup(PortNo(7), &key()).unwrap();
        assert_eq!(hit.id, 2);

        let mut other = key();
        other.l4_dst = 81;
        let hit = c.lookup(PortNo(7), &other).unwrap();
        assert_eq!(hit.id, 1);
    }

    #[test]
    fn equal_priority_breaks_ties_by_id() {
        let mut c = Classifier::new();
        c.insert(&rule(5, FlowMatch::any(), 10, 1));
        c.insert(&rule(3, FlowMatch::in_port(PortNo(1)), 10, 2));
        let hit = c.lookup(PortNo(1), &key()).unwrap();
        assert_eq!(hit.id, 3);
    }

    #[test]
    fn remove_cleans_empty_subtables() {
        let mut c = Classifier::new();
        let r = rule(1, FlowMatch::in_port(PortNo(1)), 10, 2);
        c.insert(&r);
        assert_eq!(c.subtable_count(), 1);
        c.remove(&r);
        assert_eq!(c.subtable_count(), 0);
        assert!(c.lookup(PortNo(1), &key()).is_none());
    }

    #[test]
    fn miss_returns_none() {
        let mut c = Classifier::new();
        c.insert(&rule(1, FlowMatch::in_port(PortNo(3)), 10, 2));
        assert!(c.lookup(PortNo(4), &key()).is_none());
    }
}
