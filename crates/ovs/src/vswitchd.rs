//! The switch daemon: assembles the datapath, the OpenFlow agent and the
//! PMD thread(s) into a runnable vSwitch.

use crate::ofproto::{FlowTableObserver, Ofproto, StatsAugmenter};
use crate::pmd::{build_fanout_mesh, Datapath, PmdThread};
use crate::port::OvsPort;
use dpdk_sim::EthDev;
use openflow::messages::FlowMod;
use openflow::{PortNo, SwitchLink};
use shmem_sim::ChannelEnd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct VSwitchdConfig {
    /// Datapath id reported in features replies.
    pub datapath_id: u64,
    /// Punt table misses to the controller (OF 1.0 default) or drop them.
    pub miss_to_controller: bool,
    /// Housekeeping period (timeout sweeps, control-message polling).
    pub housekeeping_interval: Duration,
    /// PMD threads polling the ports. One (the default) mirrors a
    /// single-core OVS-DPDK deployment; the paper's testbed dedicates
    /// several cores. Ports are partitioned round-robin across threads
    /// (like `pmd-rxq-affinity` defaults) and, with more than one PMD,
    /// polled bursts are RSS-resharded by flow hash over an SPSC fan-out
    /// mesh so each flow is classified by its owner PMD's caches.
    pub pmd_threads: usize,
    /// Collect cycle-denominated telemetry (stage/tier latency histograms,
    /// busy/idle cycle accounting, sampled packet traces). Counters tick
    /// regardless; this only gates the cycle reads on the hot path.
    pub telemetry: bool,
    /// Doorbell coalescing threshold applied to the switch side of every
    /// dpdkr channel: ring the peer's doorbell at most once per this many
    /// packets (0/1 = per-packet). Interrupt-suppression-style batching;
    /// delivery is poll-based either way, this bounds notification cost.
    pub doorbell_coalesce: usize,
}

impl Default for VSwitchdConfig {
    fn default() -> Self {
        VSwitchdConfig {
            datapath_id: 0x00_c0ffee,
            miss_to_controller: false,
            housekeeping_interval: Duration::from_millis(1),
            // `HIGHWAY_PMDS` overrides the default PMD count so the whole
            // test suite can be re-run under a sharded datapath (CI does
            // this with HIGHWAY_PMDS=4).
            pmd_threads: std::env::var("HIGHWAY_PMDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            // `HIGHWAY_TELEMETRY=0` disables the cycle-stamping half of the
            // telemetry layer (the overhead-gate configuration of the
            // pmd_scaling bench); anything else leaves it on.
            telemetry: std::env::var("HIGHWAY_TELEMETRY")
                .map(|v| v != "0" && !v.eq_ignore_ascii_case("off"))
                .unwrap_or(true),
            // `HIGHWAY_DOORBELL` overrides the packets-per-notification
            // threshold (e.g. 1 to measure the per-packet baseline).
            doorbell_coalesce: std::env::var("HIGHWAY_DOORBELL")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(shmem_sim::DEFAULT_DOORBELL_COALESCE),
        }
    }
}

/// A running (or stopped) vSwitch instance.
pub struct VSwitchd {
    dp: Arc<Datapath>,
    ofproto: Arc<Ofproto>,
    stop: Arc<AtomicBool>,
    threads: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    /// Control-port acceptor threads (see `listen_controller`), joined on
    /// `stop` — kept apart from `threads` so a listener can be opened
    /// before or after `start`.
    listeners: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    housekeeping: Duration,
    pmd_threads: usize,
    doorbell_coalesce: usize,
}

impl VSwitchd {
    /// Builds a stopped switch with no ports.
    pub fn new(config: VSwitchdConfig) -> VSwitchd {
        let dp = Datapath::new(config.miss_to_controller);
        dp.set_telemetry_enabled(config.telemetry);
        let ofproto = Arc::new(Ofproto::new(Arc::clone(&dp), config.datapath_id));
        VSwitchd {
            dp,
            ofproto,
            stop: Arc::new(AtomicBool::new(false)),
            threads: parking_lot::Mutex::new(Vec::new()),
            listeners: parking_lot::Mutex::new(Vec::new()),
            housekeeping: config.housekeeping_interval,
            pmd_threads: config.pmd_threads.max(1),
            doorbell_coalesce: config.doorbell_coalesce,
        }
    }

    /// The shared datapath (ports + table).
    pub fn datapath(&self) -> Arc<Datapath> {
        Arc::clone(&self.dp)
    }

    /// The OpenFlow agent.
    pub fn ofproto(&self) -> Arc<Ofproto> {
        Arc::clone(&self.ofproto)
    }

    /// A structured snapshot of every telemetry surface: per-PMD perf
    /// blocks, datapath totals, coverage counters and trace-ring state.
    pub fn telemetry_snapshot(&self) -> telemetry::TelemetrySnapshot {
        self.dp.telemetry_snapshot()
    }

    /// `ovs-appctl`-style introspection: renders `pmd-stats-show`,
    /// `pmd-perf-show`, `coverage/show`, `histograms/show`,
    /// `telemetry/json` or `telemetry/prometheus` from a fresh snapshot.
    pub fn appctl(&self, command: &str) -> String {
        telemetry::appctl::dispatch(&self.telemetry_snapshot(), command)
    }

    /// Adds a dpdkr port backed by the switch side of a shared channel.
    /// Announces the port to the controller (`PortStatus` Add).
    pub fn add_dpdkr_port(
        &self,
        no: PortNo,
        name: impl Into<String>,
        mut end: ChannelEnd,
    ) -> Arc<OvsPort> {
        end.set_doorbell_coalesce(self.doorbell_coalesce);
        let port = self.dp.add_port(OvsPort::dpdkr(no, name, end));
        self.ofproto
            .announce_port(no, &port.name, openflow::PortStatusReason::Add);
        port
    }

    /// Adds a device-backed port (e.g. a simulated NIC).
    pub fn add_device_port(
        &self,
        no: PortNo,
        name: impl Into<String>,
        dev: Arc<dyn EthDev>,
    ) -> Arc<OvsPort> {
        let port = self.dp.add_port(OvsPort::device(no, name, dev));
        self.ofproto
            .announce_port(no, &port.name, openflow::PortStatusReason::Add);
        port
    }

    /// Removes a port, announcing the deletion.
    pub fn remove_port(&self, no: PortNo) -> Option<Arc<OvsPort>> {
        let removed = self.dp.remove_port(no);
        if let Some(port) = &removed {
            self.ofproto
                .announce_port(no, &port.name, openflow::PortStatusReason::Delete);
        }
        removed
    }

    /// Administratively enables/disables a port (the `port_mod` path used
    /// by tests and orchestrators that bypass the wire).
    pub fn set_port_down(&self, no: PortNo, down: bool) {
        self.ofproto
            .apply_port_mod(&openflow::PortMod { port_no: no, down });
    }

    /// Attaches the controller link.
    pub fn attach_controller(&self, link: SwitchLink) {
        self.ofproto.attach_controller(link);
    }

    /// Opens a TCP control port on an ephemeral loopback address and
    /// returns it. An acceptor thread attaches each accepted connection
    /// as the controller link — a newly dialling controller (initial
    /// connect, restart, or a standby taking over) simply replaces the
    /// previous link, exactly like `attach_controller`.
    pub fn listen_controller(&self) -> std::io::Result<std::net::SocketAddr> {
        let (listener, addr) = openflow::loopback_listener()?;
        listener.set_nonblocking(true)?;
        let ofproto = Arc::clone(&self.ofproto);
        let stop = Arc::clone(&self.stop);
        self.listeners.lock().push(
            std::thread::Builder::new()
                .name(format!("ovs-of-listen-{}", addr.port()))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if let Ok(t) = openflow::TcpTransport::from_stream(stream) {
                                    ofproto.attach_controller(SwitchLink::new(Box::new(t)));
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn control-port acceptor"),
        );
        Ok(addr)
    }

    /// Registers a flow-table observer (the p-2-p detector hook).
    pub fn register_observer(&self, obs: Arc<dyn FlowTableObserver>) {
        self.ofproto.register_observer(obs);
    }

    /// Installs the statistics augmenter (the bypass stats hook).
    pub fn set_stats_augmenter(&self, aug: Arc<dyn StatsAugmenter>) {
        self.ofproto.set_stats_augmenter(aug);
    }

    /// Applies a flow_mod without a controller (orchestrator/test path);
    /// observers and FlowRemoved generation behave exactly as via the wire.
    pub fn inject_flow_mod(&self, fm: &FlowMod) {
        self.ofproto.apply_flow_mod(fm);
    }

    /// True when no controller message is queued or mid-application — all
    /// control traffic sent before this call has reached the flow table.
    pub fn control_idle(&self) -> bool {
        self.ofproto.control_idle()
    }

    /// Starts the PMD thread(s) and the housekeeping/control thread.
    pub fn start(&self) {
        let mut threads = self.threads.lock();
        assert!(threads.is_empty(), "vswitchd already started");
        self.stop.store(false, Ordering::Release);

        // With one PMD there is nothing to reshard; with several, each PMD
        // gets its endpoints of the RSS fan-out mesh so flows polled on
        // any port land on their owner PMD's caches.
        let pmds: Vec<PmdThread> = if self.pmd_threads > 1 {
            build_fanout_mesh(self.pmd_threads)
                .into_iter()
                .enumerate()
                .map(|(i, fanout)| {
                    PmdThread::with_fanout(
                        Arc::clone(&self.dp),
                        Arc::clone(&self.stop),
                        i,
                        self.pmd_threads,
                        fanout,
                    )
                })
                .collect()
        } else {
            vec![PmdThread::new(Arc::clone(&self.dp), Arc::clone(&self.stop))]
        };
        for (i, pmd) in pmds.into_iter().enumerate() {
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ovs-pmd-{i}"))
                    .spawn(move || pmd.run())
                    .expect("spawn pmd"),
            );
        }

        let ofproto = Arc::clone(&self.ofproto);
        let stop = Arc::clone(&self.stop);
        let interval = self.housekeeping;
        threads.push(
            std::thread::Builder::new()
                .name("ovs-main".into())
                .spawn(move || {
                    let mut last_sweep = std::time::Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        let handled = ofproto.poll();
                        if last_sweep.elapsed() >= Duration::from_millis(100) {
                            ofproto.sweep_timeouts();
                            last_sweep = std::time::Instant::now();
                        }
                        if handled == 0 {
                            std::thread::sleep(interval);
                        }
                    }
                })
                .expect("spawn main"),
        );
    }

    /// Stops all threads (idempotent).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        for t in self.listeners.lock().drain(..) {
            let _ = t.join();
        }
    }

    /// True while the daemon threads run.
    pub fn is_running(&self) -> bool {
        !self.threads.lock().is_empty()
    }
}

impl Drop for VSwitchd {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;
    use openflow::{framed_link, Action, FlowMatch};
    use packet_wire::PacketBuilder;
    use shmem_sim::channel;

    #[test]
    fn end_to_end_via_controller_wire() {
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let (sw1, mut vm1) = channel("dpdkr1", 64);
        let (sw2, mut vm2) = channel("dpdkr2", 64);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        sw.add_dpdkr_port(PortNo(2), "dpdkr2", sw2);

        let (ctrl, link) = framed_link();
        sw.attach_controller(link);
        sw.start();

        ctrl.add_flow(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
            0xc0de,
        )
        .unwrap();
        ctrl.barrier(Duration::from_secs(2)).unwrap();

        let pkt = PacketBuilder::udp_probe(64).build();
        vm1.send(dpdk_sim::Mbuf::from_slice(&pkt)).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let got = loop {
            if let Some(m) = vm2.recv() {
                break Some(m);
            }
            if std::time::Instant::now() > deadline {
                break None;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.expect("packet crossed the switch").len(), 64);

        // Flow stats over the wire reflect the hit.
        let stats = ctrl.flow_stats(Duration::from_secs(2)).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].cookie, 0xc0de);
        assert_eq!(stats[0].packet_count, 1);
        assert_eq!(stats[0].byte_count, 64);

        // Port stats too.
        let pstats = ctrl.port_stats(Duration::from_secs(2)).unwrap();
        let p1 = pstats.iter().find(|p| p.port_no == 1).unwrap();
        let p2 = pstats.iter().find(|p| p.port_no == 2).unwrap();
        assert_eq!(p1.rx_packets, 1);
        assert_eq!(p2.tx_packets, 1);

        sw.stop();
    }

    #[test]
    fn multi_pmd_deployment_forwards_across_thread_shares() {
        // 4 ports, 2 PMD threads: ports 1,3 belong to PMD 0 and 2,4 to
        // PMD 1 (round-robin by position), so both rules below cross PMD
        // ownership boundaries — delivery must be thread-safe.
        let sw = VSwitchd::new(VSwitchdConfig {
            pmd_threads: 2,
            ..VSwitchdConfig::default()
        });
        let (sw1, mut vm1) = channel("dpdkr1", 256);
        let (sw2, mut vm2) = channel("dpdkr2", 256);
        let (sw3, mut vm3) = channel("dpdkr3", 256);
        let (sw4, mut vm4) = channel("dpdkr4", 256);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        sw.add_dpdkr_port(PortNo(2), "dpdkr2", sw2);
        sw.add_dpdkr_port(PortNo(3), "dpdkr3", sw3);
        sw.add_dpdkr_port(PortNo(4), "dpdkr4", sw4);
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(4)),
            10,
            vec![Action::Output(PortNo(3))],
        ));
        sw.start();

        const N: u64 = 200;
        for i in 0..N {
            let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).build());
            m.udata = i;
            while vm1.send(m).is_err() {
                m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).build());
                m.udata = i;
                std::thread::yield_now();
            }
            let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).build());
            m.udata = i;
            while vm4.send(m).is_err() {
                m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).build());
                m.udata = i;
                std::thread::yield_now();
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let (mut got2, mut got3) = (0u64, 0u64);
        while (got2 < N || got3 < N) && std::time::Instant::now() < deadline {
            if vm2.recv().is_some() {
                got2 += 1;
            }
            if vm3.recv().is_some() {
                got3 += 1;
            }
            std::thread::yield_now();
        }
        assert_eq!((got2, got3), (N, N), "both PMD shares forwarded everything");
        sw.stop();
    }

    /// Four PMDs with the RSS fan-out mesh: a many-flow workload is
    /// resharded across all PMDs yet delivered losslessly and in order
    /// within each flow.
    #[test]
    fn four_pmd_rss_fanout_is_lossless_across_many_flows() {
        let sw = VSwitchd::new(VSwitchdConfig {
            pmd_threads: 4,
            ..VSwitchdConfig::default()
        });
        let (sw1, mut vm1) = channel("dpdkr1", 512);
        let (sw2, mut vm2) = channel("dpdkr2", 512);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        sw.add_dpdkr_port(PortNo(2), "dpdkr2", sw2);
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        sw.start();

        const N: u64 = 256;
        for i in 0..N {
            // 64 distinct flows so the RSS hash spreads across the PMDs.
            let build = || {
                let mut m = Mbuf::from_slice(
                    &PacketBuilder::udp_probe(64)
                        .ports(1000 + (i % 64) as u16, 80)
                        .build(),
                );
                m.udata = i;
                m
            };
            let mut m = build();
            while vm1.send(m).is_err() {
                m = build();
                std::thread::yield_now();
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut got = 0u64;
        let mut last_per_flow = std::collections::BTreeMap::new();
        while got < N && std::time::Instant::now() < deadline {
            match vm2.recv() {
                Some(m) => {
                    // Per-flow order: udata is monotonic within each flow.
                    let flow = m.udata % 64;
                    if let Some(prev) = last_per_flow.insert(flow, m.udata) {
                        assert!(prev < m.udata, "flow {flow} reordered");
                    }
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        assert_eq!(got, N, "4-PMD RSS datapath must be lossless");
        assert_eq!(sw.datapath().fanout_drops.load(Ordering::Relaxed), 0);
        sw.stop();
    }

    #[test]
    fn packet_out_reaches_port() {
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let (sw1, mut vm1) = channel("dpdkr1", 8);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        let (ctrl, link) = framed_link();
        sw.attach_controller(link);
        sw.start();

        ctrl.packet_out(
            PacketBuilder::udp_probe(64).build(),
            vec![Action::Output(PortNo(1))],
        )
        .unwrap();
        ctrl.barrier(Duration::from_secs(2)).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = false;
        while std::time::Instant::now() < deadline {
            if vm1.recv().is_some() {
                got = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(got, "packet-out delivered to dpdkr port");
        sw.stop();
    }

    #[test]
    fn echo_and_features() {
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let (sw1, _vm1) = channel("dpdkr1", 8);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        let (ctrl, link) = framed_link();
        sw.attach_controller(link);
        sw.start();

        let xid = ctrl
            .send(&openflow::OfpMessage::EchoRequest(vec![9, 9]))
            .unwrap();
        match ctrl.wait_reply(xid, Duration::from_secs(2)).unwrap() {
            openflow::OfpMessage::EchoReply(d) => assert_eq!(d, vec![9, 9]),
            other => panic!("unexpected {other:?}"),
        }

        let xid = ctrl.send(&openflow::OfpMessage::FeaturesRequest).unwrap();
        match ctrl.wait_reply(xid, Duration::from_secs(2)).unwrap() {
            openflow::OfpMessage::FeaturesReply { datapath_id, ports } => {
                assert_eq!(datapath_id, 0x00_c0ffee);
                assert_eq!(ports, vec![1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        sw.stop();
    }

    #[test]
    fn port_mod_disables_forwarding_and_announces() {
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let (sw1, mut vm1) = channel("dpdkr1", 64);
        let (sw2, mut vm2) = channel("dpdkr2", 64);
        let (ctrl, link) = framed_link();
        sw.attach_controller(link);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        sw.add_dpdkr_port(PortNo(2), "dpdkr2", sw2);
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        sw.start();

        // Port-status Adds were announced for both ports.
        let wait_status = |n: usize| {
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let mut seen = Vec::new();
            while seen.len() < n && std::time::Instant::now() < deadline {
                seen.extend(ctrl.drain_port_status());
                std::thread::yield_now();
            }
            seen
        };
        let added = wait_status(2);
        assert_eq!(added.len(), 2);
        assert!(added
            .iter()
            .all(|s| s.reason == openflow::PortStatusReason::Add && !s.down));

        // Bring the egress port down over the wire.
        ctrl.set_port_down(PortNo(2), true).unwrap();
        ctrl.barrier(Duration::from_secs(2)).unwrap();
        let modified = wait_status(1);
        assert_eq!(modified.len(), 1);
        assert_eq!(modified[0].port_no, 2);
        assert!(modified[0].down);

        // Traffic to the down port is dropped (counted), not delivered.
        vm1.send(dpdk_sim::Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).build(),
        ))
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while sw.datapath().port(PortNo(2)).unwrap().stats().odropped == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(sw.datapath().port(PortNo(2)).unwrap().stats().odropped, 1);
        assert!(vm2.recv().is_none());

        // Bring it back up: traffic flows again.
        ctrl.set_port_down(PortNo(2), false).unwrap();
        ctrl.barrier(Duration::from_secs(2)).unwrap();
        vm1.send(dpdk_sim::Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).build(),
        ))
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = false;
        while std::time::Instant::now() < deadline {
            if vm2.recv().is_some() {
                got = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(got, "traffic resumes after port re-enable");
        sw.stop();
    }

    #[test]
    fn aggregate_table_desc_stats_over_the_wire() {
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let (sw1, mut vm1) = channel("dpdkr1", 64);
        let (sw2, _vm2) = channel("dpdkr2", 64);
        sw.add_dpdkr_port(PortNo(1), "dpdkr1", sw1);
        sw.add_dpdkr_port(PortNo(2), "dpdkr2", sw2);
        let (ctrl, link) = framed_link();
        sw.attach_controller(link);
        sw.start();

        ctrl.add_flow(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
            1,
        )
        .unwrap();
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(2)),
            10,
            vec![Action::Output(PortNo(1))],
            2,
        )
        .unwrap();
        ctrl.barrier(Duration::from_secs(2)).unwrap();

        vm1.send(dpdk_sim::Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).build(),
        ))
        .unwrap();
        // Wait until the datapath processed it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            let agg = ctrl
                .aggregate_stats(FlowMatch::any(), Duration::from_secs(2))
                .unwrap();
            if agg.packet_count == 1 {
                break;
            }
            std::thread::yield_now();
        }

        let agg = ctrl
            .aggregate_stats(FlowMatch::any(), Duration::from_secs(2))
            .unwrap();
        assert_eq!(agg.flow_count, 2);
        assert_eq!(agg.packet_count, 1);
        assert_eq!(agg.byte_count, 64);

        // Filtered aggregate: only the port-1 rule.
        let agg1 = ctrl
            .aggregate_stats(FlowMatch::in_port(PortNo(1)), Duration::from_secs(2))
            .unwrap();
        assert_eq!(agg1.flow_count, 1);
        assert_eq!(agg1.packet_count, 1);

        let tables = ctrl.table_stats(Duration::from_secs(2)).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].active_count, 2);
        assert_eq!(tables[0].lookup_count, 1);
        assert_eq!(tables[0].matched_count, 1);

        let desc = ctrl.desc_stats(Duration::from_secs(2)).unwrap();
        assert!(desc.manufacturer.contains("vnf-highway"));
        sw.stop();
    }

    #[test]
    fn observers_fire_on_flow_mods() {
        use std::sync::atomic::AtomicUsize;
        struct Counter(AtomicUsize);
        impl FlowTableObserver for Counter {
            fn table_changed(&self, rules: &[crate::ofproto::RuleSnapshot]) {
                self.0.store(rules.len(), Ordering::SeqCst);
            }
        }
        let sw = VSwitchd::new(VSwitchdConfig::default());
        let counter = Arc::new(Counter(AtomicUsize::new(usize::MAX)));
        sw.register_observer(counter.clone());
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            1,
            vec![Action::Output(PortNo(2))],
        ));
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        sw.inject_flow_mod(&FlowMod::delete(FlowMatch::any()));
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }
}
