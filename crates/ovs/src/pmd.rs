//! The poll-mode datapath: shared state ([`Datapath`]) plus the PMD loop
//! that services every port, classifies packets (EMC → classifier) and
//! executes actions.

use crate::actions::{execute, OutputTarget};
use crate::emc::{Emc, DEFAULT_EMC_ENTRIES};
use crate::port::OvsPort;
use crate::table::FlowTable;
use crossbeam::channel::{Receiver, Sender, TrySendError};
use dpdk_sim::{cycles, Mbuf, DEFAULT_BURST};
use openflow::messages::{PacketIn, PacketInReason};
use openflow::PortNo;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared datapath state: the port table and the flow table.
pub struct Datapath {
    pub ports: RwLock<BTreeMap<PortNo, Arc<OvsPort>>>,
    pub table: RwLock<FlowTable>,
    /// Bumped whenever the port set changes (PMD refreshes its snapshot).
    pub ports_generation: AtomicU64,
    /// Table lookups performed (every processed packet counts one, whether
    /// it resolves in the EMC or the classifier — `OFPST_TABLE` semantics).
    pub lookups: AtomicU64,
    /// Lookups that hit a rule.
    pub matched: AtomicU64,
    /// Packets dropped because no rule matched (miss policy = drop).
    pub miss_drops: AtomicU64,
    /// Punt misses to the controller instead of dropping.
    pub miss_to_controller: bool,
    packet_in_tx: Sender<PacketIn>,
    packet_in_rx: Receiver<PacketIn>,
    /// Packet-ins dropped because the controller queue was full.
    pub packet_in_drops: AtomicU64,
}

impl Datapath {
    /// Creates an empty datapath. `miss_to_controller` selects the miss
    /// policy (OF 1.0 defaults to punting; benchmarks install full tables
    /// so either way no misses occur there).
    pub fn new(miss_to_controller: bool) -> Arc<Datapath> {
        let (tx, rx) = crossbeam::channel::bounded(1024);
        Arc::new(Datapath {
            ports: RwLock::new(BTreeMap::new()),
            table: RwLock::new(FlowTable::new()),
            ports_generation: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            matched: AtomicU64::new(0),
            miss_drops: AtomicU64::new(0),
            miss_to_controller,
            packet_in_tx: tx,
            packet_in_rx: rx,
            packet_in_drops: AtomicU64::new(0),
        })
    }

    /// Adds a port; panics on duplicate numbers (compute-agent logic error).
    pub fn add_port(&self, port: OvsPort) -> Arc<OvsPort> {
        let no = port.no;
        let port = Arc::new(port);
        let prev = self.ports.write().insert(no, Arc::clone(&port));
        assert!(prev.is_none(), "duplicate port number {no}");
        self.ports_generation.fetch_add(1, Ordering::Release);
        port
    }

    /// Removes a port, returning it if present.
    pub fn remove_port(&self, no: PortNo) -> Option<Arc<OvsPort>> {
        let removed = self.ports.write().remove(&no);
        if removed.is_some() {
            self.ports_generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Port by number.
    pub fn port(&self, no: PortNo) -> Option<Arc<OvsPort>> {
        self.ports.read().get(&no).cloned()
    }

    /// Numbers of all ports, ascending.
    pub fn port_numbers(&self) -> Vec<PortNo> {
        self.ports.read().keys().copied().collect()
    }

    /// Queued packet-ins for the control plane to forward.
    pub fn drain_packet_ins(&self, max: usize) -> Vec<PacketIn> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.packet_in_rx.try_recv() {
                Ok(pi) => out.push(pi),
                Err(_) => break,
            }
        }
        out
    }

    fn punt(&self, pkt: &Mbuf, in_port: PortNo, reason: PacketInReason) {
        let pi = PacketIn {
            in_port,
            reason,
            data: pkt.to_vec(),
        };
        match self.packet_in_tx.try_send(pi) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.packet_in_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Resolves output targets for one packet and queues it (or duplicates)
    /// on the destination ports' staging queues.
    pub fn stage_outputs(
        &self,
        pkt: Mbuf,
        in_port: PortNo,
        targets: &[OutputTarget],
        staged: &mut BTreeMap<PortNo, Vec<Mbuf>>,
        port_snapshot: &[Arc<OvsPort>],
    ) {
        if targets.is_empty() {
            return; // drop
        }
        // Expand flood/in-port into a concrete port list.
        let mut concrete: Vec<PortNo> = Vec::with_capacity(targets.len());
        for t in targets {
            match t {
                OutputTarget::Port(p) => concrete.push(*p),
                OutputTarget::InPort => concrete.push(in_port),
                OutputTarget::Flood => {
                    for port in port_snapshot {
                        if port.no != in_port {
                            concrete.push(port.no);
                        }
                    }
                }
                OutputTarget::Controller => {
                    self.punt(&pkt, in_port, PacketInReason::Action);
                }
            }
        }
        let n = concrete.len();
        for (i, dest) in concrete.into_iter().enumerate() {
            let m = if i + 1 == n {
                // Move the original into the last destination.
                // (Loop consumes pkt; a placeholder keeps borrowck happy.)
                None
            } else {
                Some(pkt.duplicate())
            };
            let m = match m {
                Some(d) => d,
                None => {
                    staged.entry(dest).or_default().push(pkt);
                    return;
                }
            };
            staged.entry(dest).or_default().push(m);
        }
    }

    /// Runs one packet through table lookup + action execution, staging the
    /// results. Shared by the PMD loop and packet-out handling.
    pub fn process_packet(
        &self,
        mut pkt: Mbuf,
        in_port: PortNo,
        emc: Option<&mut Emc>,
        staged: &mut BTreeMap<PortNo, Vec<Mbuf>>,
        port_snapshot: &[Arc<OvsPort>],
        now: u64,
    ) {
        let key = packet_wire::FlowKey::extract(pkt.data());
        let generation;
        let rule = {
            // EMC first (generation-checked), then the classifier.
            let table = self.table.read();
            generation = table.generation();
            match emc {
                Some(emc) => match emc.lookup(in_port, &key, generation) {
                    Some(rule) => Some(rule),
                    None => {
                        let found = table.lookup(in_port, &key);
                        if let Some(ref r) = found {
                            emc.insert(in_port, key, Arc::clone(r), generation);
                        }
                        found
                    }
                },
                None => table.lookup(in_port, &key),
            }
        };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        match rule {
            Some(rule) => {
                self.matched.fetch_add(1, Ordering::Relaxed);
                rule.hit(pkt.len() as u64, now);
                let targets = execute(&mut pkt, &rule.actions);
                self.stage_outputs(pkt, in_port, &targets, staged, port_snapshot);
            }
            None => {
                if self.miss_to_controller {
                    self.punt(&pkt, in_port, PacketInReason::NoMatch);
                } else {
                    self.miss_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Flushes staged packets to their ports (dropping on full rings).
    pub fn flush_staged(&self, staged: &mut BTreeMap<PortNo, Vec<Mbuf>>) {
        let ports = self.ports.read();
        for (dest, pkts) in staged.iter_mut() {
            if pkts.is_empty() {
                continue;
            }
            match ports.get(dest) {
                Some(port) => port.tx_burst_or_drop(pkts),
                None => pkts.clear(), // port vanished: drop
            }
        }
    }
}

/// A PMD thread: polls its share of the ports in round-robin. With one
/// thread (the default) this is a single-core OVS-DPDK deployment; with
/// several, ports are partitioned round-robin like default
/// `pmd-rxq-affinity`.
pub struct PmdThread {
    dp: Arc<Datapath>,
    stop: Arc<AtomicBool>,
    /// This thread's index within the PMD set.
    index: usize,
    /// Total PMD threads sharing the ports.
    total: usize,
    /// Polling iterations performed (idle or not).
    pub iterations: Arc<AtomicU64>,
}

impl PmdThread {
    /// Creates a PMD owning *all* ports (single-PMD deployment).
    pub fn new(dp: Arc<Datapath>, stop: Arc<AtomicBool>) -> PmdThread {
        PmdThread::with_share(dp, stop, 0, 1)
    }

    /// Creates PMD `index` of `total`, polling ports whose position in the
    /// ascending port order is `index` modulo `total`.
    pub fn with_share(
        dp: Arc<Datapath>,
        stop: Arc<AtomicBool>,
        index: usize,
        total: usize,
    ) -> PmdThread {
        assert!(total >= 1 && index < total, "bad PMD share {index}/{total}");
        PmdThread {
            dp,
            stop,
            index,
            total,
            iterations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Runs until the stop flag is raised. Yields when fully idle so the
    /// reproduction behaves on machines with fewer cores than the testbed.
    pub fn run(self) {
        let mut emc = Emc::new(DEFAULT_EMC_ENTRIES);
        let mut rx_buf: Vec<Mbuf> = Vec::with_capacity(DEFAULT_BURST);
        let mut staged: BTreeMap<PortNo, Vec<Mbuf>> = BTreeMap::new();
        let mut snapshot: Vec<Arc<OvsPort>> = Vec::new();
        let mut mine: Vec<Arc<OvsPort>> = Vec::new();
        let mut snapshot_gen = u64::MAX;

        while !self.stop.load(Ordering::Acquire) {
            let gen = self.dp.ports_generation.load(Ordering::Acquire);
            if gen != snapshot_gen {
                snapshot = self.dp.ports.read().values().cloned().collect();
                mine = snapshot
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % self.total == self.index)
                    .map(|(_, p)| Arc::clone(p))
                    .collect();
                snapshot_gen = gen;
            }
            let mut idle = true;
            let now = cycles::now();
            for port in &mine {
                rx_buf.clear();
                let n = port.rx_burst(&mut rx_buf, DEFAULT_BURST);
                if n == 0 {
                    continue;
                }
                idle = false;
                for pkt in rx_buf.drain(..) {
                    self.dp.process_packet(
                        pkt,
                        port.no,
                        Some(&mut emc),
                        &mut staged,
                        &snapshot,
                        now,
                    );
                }
                self.dp.flush_staged(&mut staged);
            }
            self.iterations.fetch_add(1, Ordering::Relaxed);
            if idle {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, FlowMatch};
    use packet_wire::PacketBuilder;
    use shmem_sim::channel;

    fn probe() -> Mbuf {
        Mbuf::from_slice(&PacketBuilder::udp_probe(64).build())
    }

    /// Builds a 2-port datapath; returns (dp, vm1 end, vm2 end).
    fn two_port_dp(
        miss_to_controller: bool,
    ) -> (Arc<Datapath>, shmem_sim::ChannelEnd, shmem_sim::ChannelEnd) {
        let dp = Datapath::new(miss_to_controller);
        let (sw1, vm1) = channel("dpdkr1", 64);
        let (sw2, vm2) = channel("dpdkr2", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(1), "dpdkr1", sw1));
        dp.add_port(OvsPort::dpdkr(PortNo(2), "dpdkr2", sw2));
        (dp, vm1, vm2)
    }

    fn pump(dp: &Arc<Datapath>) {
        // One synchronous PMD iteration (no thread), for deterministic tests.
        let snapshot: Vec<_> = dp.ports.read().values().cloned().collect();
        let mut staged = BTreeMap::new();
        let now = cycles::now();
        for port in &snapshot {
            let mut rx = Vec::new();
            port.rx_burst(&mut rx, 32);
            for pkt in rx {
                dp.process_packet(pkt, port.no, None, &mut staged, &snapshot, now);
            }
        }
        dp.flush_staged(&mut staged);
    }

    #[test]
    fn forwards_along_installed_rule() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(vm2.recv().unwrap().len(), 64);
        assert!(vm1.recv().is_none());
        // Rule counters ticked.
        let table = dp.table.read();
        let rule = &table.rules()[0];
        assert_eq!(rule.counters(), (1, 64));
    }

    #[test]
    fn miss_drop_policy_counts() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(dp.miss_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn miss_punt_policy_queues_packet_in() {
        let (dp, mut vm1, _vm2) = two_port_dp(true);
        vm1.send(probe()).unwrap();
        pump(&dp);
        let pis = dp.drain_packet_ins(8);
        assert_eq!(pis.len(), 1);
        assert_eq!(pis[0].in_port, PortNo(1));
        assert_eq!(pis[0].reason, PacketInReason::NoMatch);
        assert_eq!(pis[0].data.len(), 64);
    }

    #[test]
    fn flood_replicates_to_all_but_ingress() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        let (sw3, mut vm3) = channel("dpdkr3", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(3), "dpdkr3", sw3));
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::any(),
            1,
            vec![Action::Output(PortNo::FLOOD)],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert!(vm1.recv().is_none());
        assert_eq!(vm2.recv().unwrap().len(), 64);
        assert_eq!(vm3.recv().unwrap().len(), 64);
    }

    #[test]
    fn controller_action_punts_and_still_forwards() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![
                Action::Output(PortNo::CONTROLLER),
                Action::Output(PortNo(2)),
            ],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(dp.drain_packet_ins(8).len(), 1);
        assert!(vm2.recv().is_some());
    }

    #[test]
    fn pmd_thread_moves_traffic_end_to_end() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let pmd = PmdThread::new(Arc::clone(&dp), Arc::clone(&stop));
        let handle = std::thread::spawn(move || pmd.run());

        for i in 0..100u64 {
            let mut m = probe();
            m.udata = i;
            while vm1.send(m).is_err() {
                m = probe();
                m.udata = i;
                std::thread::yield_now();
            }
        }
        let mut got = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got < 100 && std::time::Instant::now() < deadline {
            if vm2.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
        assert_eq!(got, 100);
    }

    #[test]
    fn in_port_target_hairpins() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo::IN_PORT)],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert!(vm1.recv().is_some());
    }

    #[test]
    fn remove_port_stops_delivery() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        dp.table.write().apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        dp.remove_port(PortNo(2));
        vm1.send(probe()).unwrap();
        pump(&dp); // staged for a vanished port: dropped, no panic
        assert_eq!(dp.port_numbers(), vec![PortNo(1)]);
    }
}
