//! The poll-mode datapath: shared state ([`Datapath`]) plus the PMD loop
//! that services every port, classifies packets through the three-tier
//! cache hierarchy (EMC → megaflow → classifier) and executes actions.
//!
//! Classification is *burst-batched*: a received burst is grouped by flow
//! key and each group resolves through the cache hierarchy once, so a
//! 32-packet burst of one flow costs one lookup, not thirty-two.
//!
//! The datapath shards across N PMD threads (see `docs/datapath.md`):
//! every polled burst is re-sharded by an RSS-style flow hash
//! ([`rss_owner`]) over per-PMD SPSC rings ([`build_fanout_mesh`]), so
//! each flow is always classified by the same PMD against that PMD's own
//! caches. The shared [`FlowTable`] sits behind an RCU-style snapshot
//! ([`Datapath::table`]): writers clone-and-publish an `Arc<FlowTable>`,
//! readers revalidate a cached `Arc` against the shared generation — the
//! classify path never takes the write-side lock.

use crate::actions::{execute, OutputTarget};
use crate::emc::{Emc, DEFAULT_EMC_ENTRIES};
use crate::megaflow::{Megaflow, MegaflowRow, DEFAULT_MEGAFLOW_ENTRIES};
use crate::port::OvsPort;
use crate::table::{FlowTable, RuleEntry, TableChange};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use dpdk_sim::{cycles, spsc_ring, Mbuf, SpscConsumer, SpscProducer, DEFAULT_BURST};
use openflow::messages::{FlowMod, PacketIn, PacketInReason};
use openflow::PortNo;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use telemetry::{
    coverage, DatapathTotals, PmdPerf, Stage, TelemetrySnapshot, Tier, TraceRing, TraceSpan,
};

/// Megaflow hits promote their exact flow into the EMC once per this many
/// hits (OVS's `emc-insert-inv-prob` idea): frequent flows converge into
/// the EMC while a mouse-heavy working set larger than the EMC cannot
/// continuously wipe it.
pub const EMC_PROMOTION_INTERVAL: u64 = 8;

/// 1-in-N bursts get per-group cycle stamps for the classify/execute
/// histograms and tier resolution costs. A TSC read costs tens of
/// nanoseconds — comparable to an EMC hit — so stamping every flow group
/// of every burst would dominate the classify fast path; sampled bursts
/// keep the histograms honest while the unstamped majority pays only a
/// counter add (the ≤5% overhead gate in the `pmd_scaling` bench).
pub const STAGE_SAMPLE_INTERVAL: u32 = 8;

/// The per-PMD lookup caches in front of the shared classifier: the
/// exact-match cache (tier 1) and the megaflow cache (tier 2).
pub struct PmdCaches {
    pub emc: Emc,
    pub megaflow: Megaflow,
    /// This PMD's perf block: counters plus per-stage/per-tier cycle
    /// histograms. Lives behind the same (uncontended) per-PMD mutex as
    /// the caches, so hot-path attribution happens while the guard for the
    /// lookup group is already held; operator snapshots clone it.
    pub perf: PmdPerf,
    /// Rolling megaflow-hit counter driving 1-in-[`EMC_PROMOTION_INTERVAL`]
    /// EMC promotion.
    emc_promotion_tick: u64,
    /// Rolling burst counter driving 1-in-[`STAGE_SAMPLE_INTERVAL`]
    /// cycle-stamped bursts (a TSC read per flow group is too expensive to
    /// pay on every burst; see [`Datapath::process_burst`]).
    stage_sample_tick: u32,
    /// Packets processed in unstamped bursts since the last stamped one.
    /// Flushed into the classify/execute histograms at the representative
    /// costs below, so stage counts always equal packets processed.
    carry_pkts: u64,
    /// Mean per-group classify cost of the last stamped burst.
    last_classify_cyc: u64,
    /// Burst-level execute cost of the last stamped burst.
    last_exec_cyc: u64,
    /// This PMD's cached flow-table snapshot (the RCU read side). Refreshed
    /// by [`PmdCaches::table_snapshot`] only when the shared generation
    /// moved, so steady-state classification touches no lock at all.
    table: Option<Arc<FlowTable>>,
}

impl Default for PmdCaches {
    fn default() -> Self {
        Self::new()
    }
}

impl PmdCaches {
    /// Default-sized caches (8 Ki exact flows, 64 Ki aggregates).
    pub fn new() -> PmdCaches {
        PmdCaches::with_capacity(DEFAULT_EMC_ENTRIES, DEFAULT_MEGAFLOW_ENTRIES)
    }

    /// Caches bounded to the given entry counts; a capacity of 0 disables
    /// the corresponding tier (the ablation configurations).
    pub fn with_capacity(emc_entries: usize, megaflow_entries: usize) -> PmdCaches {
        PmdCaches {
            emc: Emc::new(emc_entries),
            megaflow: Megaflow::new(megaflow_entries),
            perf: PmdPerf::new(0),
            emc_promotion_tick: 0,
            stage_sample_tick: 0,
            carry_pkts: 0,
            last_classify_cyc: 0,
            last_exec_cyc: 0,
            table: None,
        }
    }

    /// Folds packets carried from unstamped bursts into the classify and
    /// execute histograms at the last stamped burst's representative
    /// costs, restoring the "stage counts == packets processed" identity.
    /// Called at the end of every stamped burst and before snapshotting.
    fn flush_stage_carry(&mut self) {
        if self.carry_pkts > 0 {
            let (carry, lc, le) = (self.carry_pkts, self.last_classify_cyc, self.last_exec_cyc);
            self.carry_pkts = 0;
            self.perf.record_stage(Stage::Classify, lc, carry);
            self.perf.record_stage(Stage::Execute, le, carry);
        }
    }

    /// Returns a flow-table snapshot current as of this call, refreshing
    /// the cached `Arc` only when the shared generation moved since the
    /// last refresh. The EMC/megaflow entries this PMD holds were stamped
    /// with snapshot generations, so a refresh implicitly invalidates them:
    /// their stamps no longer equal the new snapshot's `as_of`.
    fn table_snapshot(&mut self, dp: &Datapath) -> Arc<FlowTable> {
        let live = dp.table_generation();
        let fresh = matches!(&self.table, Some(t) if t.as_of() == live);
        if !fresh {
            self.table = Some(dp.table());
        }
        Arc::clone(self.table.as_ref().expect("just populated"))
    }

    /// Generation of the snapshot this PMD currently holds (`None` before
    /// the first classification). The multi-PMD coherence tests assert this
    /// catches up with the live generation after `flow_mod` churn.
    pub fn snapshot_generation(&self) -> Option<u64> {
        self.table.as_ref().map(|t| t.as_of())
    }
}

/// Which tier of the lookup hierarchy resolved a packet group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Tier 1: exact-match cache.
    Emc,
    /// Tier 2: megaflow (wildcard) cache.
    Megaflow,
    /// Tier 3: full tuple-space classifier walk (also the miss tier).
    Classifier,
}

/// A point-in-time copy of the datapath's lookup counters, split by the
/// tier that resolved each packet. The invariants these satisfy are pinned
/// by `stats_split_by_tier_is_consistent` (and reported via `OFPST_TABLE`):
///
/// * `lookups == matched + misses`  — every processed packet is one lookup;
/// * `matched == emc_hits + megaflow_hits + classifier_hits` — every
///   matched packet is attributed to exactly one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTierStats {
    pub lookups: u64,
    pub matched: u64,
    pub emc_hits: u64,
    pub megaflow_hits: u64,
    pub classifier_hits: u64,
    /// Packets that matched no rule (dropped or punted, per miss policy).
    pub misses: u64,
    /// Packets dropped at transmit because their destination port vanished
    /// between classification and flush. Post-match, so it does not perturb
    /// the `lookups`/`matched` identities above.
    pub tx_no_port_drops: u64,
}

/// Shared datapath state: the port table and the flow table.
pub struct Datapath {
    pub ports: RwLock<BTreeMap<PortNo, Arc<OvsPort>>>,
    /// Write-side master flow table. Control-plane only: every mutation
    /// goes through [`Datapath::table_apply`]/[`Datapath::table_sweep`],
    /// which republish a fresh snapshot; readers use [`Datapath::table`].
    master: Mutex<FlowTable>,
    /// RCU-style publication slot holding the latest immutable snapshot.
    snapshot: RwLock<Arc<FlowTable>>,
    /// The shared generation counter (the same cell the master table
    /// bumps); PMDs compare their cached snapshot's `as_of` against it
    /// lock-free to detect staleness.
    table_generation: Arc<AtomicU64>,
    /// Bumped whenever the port set changes (PMD refreshes its snapshot).
    pub ports_generation: AtomicU64,
    /// Table lookups performed: every processed packet counts exactly one,
    /// whichever tier resolves it — `OFPST_TABLE` lookup semantics. Always
    /// equals `matched + (miss_drops + punted misses)`.
    pub lookups: AtomicU64,
    /// Lookups that hit a rule, in any tier. Always equals
    /// `emc_hits + megaflow_hits + classifier_hits`.
    pub matched: AtomicU64,
    /// Packets resolved by the exact-match cache (tier 1).
    pub emc_hits: AtomicU64,
    /// Packets resolved by the megaflow cache (tier 2).
    pub megaflow_hits: AtomicU64,
    /// Packets resolved by a full classifier walk (tier 3).
    pub classifier_hits: AtomicU64,
    /// Packets dropped because no rule matched (miss policy = drop).
    pub miss_drops: AtomicU64,
    /// Packets dropped at transmit because the staged destination port had
    /// been removed by the time [`Datapath::flush_staged`] ran.
    pub tx_no_port_drops: AtomicU64,
    /// Packets dropped because an RSS fan-out ring toward a peer PMD
    /// stayed full past the bounded retry budget.
    pub fanout_drops: AtomicU64,
    /// Punt misses to the controller instead of dropping.
    pub miss_to_controller: bool,
    packet_in_tx: Sender<PacketIn>,
    packet_in_rx: Receiver<PacketIn>,
    /// Packet-ins dropped because the controller queue was full.
    pub packet_in_drops: AtomicU64,
    /// Cache handles registered by running PMD threads, so operator paths
    /// (`dump_megaflows`) can observe the per-PMD caches.
    pmd_caches: RwLock<Vec<Arc<Mutex<PmdCaches>>>>,
    /// When false, the hot path skips every cycle read and histogram
    /// update (packet/tier counters still tick — they are plain adds on
    /// state already held). Flippable at runtime.
    telemetry_enabled: AtomicBool,
    /// Ring of 1-in-N sampled packet trace spans (`trace/show`).
    pub trace: TraceRing,
}

impl Datapath {
    /// Creates an empty datapath. `miss_to_controller` selects the miss
    /// policy (OF 1.0 defaults to punting; benchmarks install full tables
    /// so either way no misses occur there).
    pub fn new(miss_to_controller: bool) -> Arc<Datapath> {
        let (tx, rx) = crossbeam::channel::bounded(1024);
        let master = FlowTable::new();
        let table_generation = master.generation_handle();
        let snapshot = RwLock::new(Arc::new(master.clone()));
        Arc::new(Datapath {
            ports: RwLock::new(BTreeMap::new()),
            master: Mutex::new(master),
            snapshot,
            table_generation,
            ports_generation: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            matched: AtomicU64::new(0),
            emc_hits: AtomicU64::new(0),
            megaflow_hits: AtomicU64::new(0),
            classifier_hits: AtomicU64::new(0),
            miss_drops: AtomicU64::new(0),
            tx_no_port_drops: AtomicU64::new(0),
            fanout_drops: AtomicU64::new(0),
            miss_to_controller,
            packet_in_tx: tx,
            packet_in_rx: rx,
            packet_in_drops: AtomicU64::new(0),
            pmd_caches: RwLock::new(Vec::new()),
            telemetry_enabled: AtomicBool::new(true),
            trace: TraceRing::default(),
        })
    }

    /// Whether cycle-stamped telemetry (histograms, traces) is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables cycle-stamped telemetry at runtime. Counters
    /// keep ticking either way; only histogram/trace stamping is gated.
    pub fn set_telemetry_enabled(&self, enabled: bool) {
        self.telemetry_enabled.store(enabled, Ordering::Relaxed);
    }

    /// The latest published flow-table snapshot (the RCU read side). The
    /// returned table is immutable; rule entries inside it are shared with
    /// the master (`Arc`), so counters recorded through a snapshot are
    /// visible to statistics readers everywhere.
    pub fn table(&self) -> Arc<FlowTable> {
        Arc::clone(&self.snapshot.read())
    }

    /// The live table generation. This moves inside the master-table
    /// mutation, momentarily before the new snapshot is published; PMDs use
    /// it as a cheap staleness probe and re-read [`Datapath::table`] when
    /// their cached snapshot's `as_of` falls behind.
    pub fn table_generation(&self) -> u64 {
        self.table_generation.load(Ordering::Acquire)
    }

    /// Applies a flow_mod to the master table and, if anything changed,
    /// publishes a fresh snapshot before returning — so a caller that
    /// mutates and then classifies always observes its own change.
    pub fn table_apply(&self, fm: &FlowMod) -> TableChange {
        let mut master = self.master.lock();
        let change = master.apply(fm);
        if !change.is_empty() {
            *self.snapshot.write() = Arc::new(master.clone());
        }
        change
    }

    /// Sweeps rule timeouts on the master table at cycle `now`,
    /// republishing the snapshot when anything expired.
    pub fn table_sweep(&self, now: u64) -> TableChange {
        let mut master = self.master.lock();
        let change = master.sweep_timeouts(now);
        if !change.is_empty() {
            *self.snapshot.write() = Arc::new(master.clone());
        }
        change
    }

    /// Registers a PMD thread's caches for operator observation
    /// (megaflow dumps).
    pub fn register_pmd_caches(&self, caches: &Arc<Mutex<PmdCaches>>) {
        self.pmd_caches.write().push(Arc::clone(caches));
    }

    /// Drops a stopped PMD thread's cache registration.
    pub fn deregister_pmd_caches(&self, caches: &Arc<Mutex<PmdCaches>>) {
        self.pmd_caches.write().retain(|c| !Arc::ptr_eq(c, caches));
    }

    /// Per-PMD snapshots of every cached megaflow aggregate (one vec per
    /// registered PMD, in registration order).
    pub fn megaflow_rows(&self) -> Vec<Vec<MegaflowRow>> {
        self.pmd_caches
            .read()
            .iter()
            .map(|c| c.lock().megaflow.rows())
            .collect()
    }

    /// Point-in-time copy of the tier-split lookup counters.
    pub fn cache_stats(&self) -> CacheTierStats {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let matched = self.matched.load(Ordering::Relaxed);
        CacheTierStats {
            lookups,
            matched,
            emc_hits: self.emc_hits.load(Ordering::Relaxed),
            megaflow_hits: self.megaflow_hits.load(Ordering::Relaxed),
            classifier_hits: self.classifier_hits.load(Ordering::Relaxed),
            misses: lookups.saturating_sub(matched),
            tx_no_port_drops: self.tx_no_port_drops.load(Ordering::Relaxed),
        }
    }

    /// Builds the full structured telemetry view: datapath-wide totals,
    /// one cloned perf block per registered PMD (registration order),
    /// process-wide coverage counters and the trace-ring occupancy. This
    /// is the single source every rendering surface (appctl text, JSON,
    /// Prometheus) formats from.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let s = self.cache_stats();
        let pmds: Vec<PmdPerf> = self
            .pmd_caches
            .read()
            .iter()
            .map(|c| {
                let mut guard = c.lock();
                // Settle packets from bursts the sampler skipped, so the
                // snapshot honours "stage counts == packets processed".
                guard.flush_stage_carry();
                guard.perf.clone()
            })
            .collect();
        TelemetrySnapshot {
            enabled: self.telemetry_enabled(),
            taken_at_cycles: cycles::now(),
            pmds,
            totals: DatapathTotals {
                lookups: s.lookups,
                matched: s.matched,
                emc_hits: s.emc_hits,
                megaflow_hits: s.megaflow_hits,
                classifier_hits: s.classifier_hits,
                misses: s.misses,
                miss_drops: self.miss_drops.load(Ordering::Relaxed),
                tx_no_port_drops: s.tx_no_port_drops,
                fanout_drops: self.fanout_drops.load(Ordering::Relaxed),
                packet_in_drops: self.packet_in_drops.load(Ordering::Relaxed),
            },
            coverage: coverage::snapshot(),
            traces_retained: self.trace.len(),
            trace_groups_observed: self.trace.observed(),
            pools: telemetry::pools::snapshot_pools(),
            doorbells: telemetry::pools::doorbell_totals(),
        }
    }

    /// Adds a port; panics on duplicate numbers (compute-agent logic error).
    pub fn add_port(&self, port: OvsPort) -> Arc<OvsPort> {
        let no = port.no;
        let port = Arc::new(port);
        let prev = self.ports.write().insert(no, Arc::clone(&port));
        assert!(prev.is_none(), "duplicate port number {no}");
        self.ports_generation.fetch_add(1, Ordering::Release);
        port
    }

    /// Removes a port, returning it if present.
    pub fn remove_port(&self, no: PortNo) -> Option<Arc<OvsPort>> {
        let removed = self.ports.write().remove(&no);
        if removed.is_some() {
            self.ports_generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Port by number.
    pub fn port(&self, no: PortNo) -> Option<Arc<OvsPort>> {
        self.ports.read().get(&no).cloned()
    }

    /// Numbers of all ports, ascending.
    pub fn port_numbers(&self) -> Vec<PortNo> {
        self.ports.read().keys().copied().collect()
    }

    /// Queued packet-ins for the control plane to forward.
    pub fn drain_packet_ins(&self, max: usize) -> Vec<PacketIn> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.packet_in_rx.try_recv() {
                Ok(pi) => out.push(pi),
                Err(_) => break,
            }
        }
        out
    }

    fn punt(&self, pkt: &Mbuf, in_port: PortNo, reason: PacketInReason) {
        let pi = PacketIn {
            in_port,
            reason,
            data: pkt.to_vec(),
        };
        match self.packet_in_tx.try_send(pi) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.packet_in_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Resolves output targets for one packet and queues it (or duplicates)
    /// on the destination ports' staging queues.
    pub fn stage_outputs(
        &self,
        pkt: Mbuf,
        in_port: PortNo,
        targets: &[OutputTarget],
        staged: &mut BTreeMap<PortNo, Vec<Mbuf>>,
        port_snapshot: &[Arc<OvsPort>],
    ) {
        if targets.is_empty() {
            return; // drop
        }
        // Expand flood/in-port into a concrete port list.
        let mut concrete: Vec<PortNo> = Vec::with_capacity(targets.len());
        for t in targets {
            match t {
                OutputTarget::Port(p) => concrete.push(*p),
                OutputTarget::InPort => concrete.push(in_port),
                OutputTarget::Flood => {
                    for port in port_snapshot {
                        if port.no != in_port {
                            concrete.push(port.no);
                        }
                    }
                }
                OutputTarget::Controller => {
                    self.punt(&pkt, in_port, PacketInReason::Action);
                }
            }
        }
        let n = concrete.len();
        for (i, dest) in concrete.into_iter().enumerate() {
            let m = if i + 1 == n {
                // Move the original into the last destination.
                // (Loop consumes pkt; a placeholder keeps borrowck happy.)
                None
            } else {
                Some(pkt.duplicate())
            };
            let m = match m {
                Some(d) => d,
                None => {
                    staged.entry(dest).or_default().push(pkt);
                    return;
                }
            };
            staged.entry(dest).or_default().push(m);
        }
    }

    /// Resolves one flow key through the lookup hierarchy: EMC, then
    /// megaflow, then a staged classifier walk whose result primes both
    /// caches. Returns the rule (if any) and the tier that resolved it.
    /// `pkts`/`bytes` are the burst share this resolution stands for
    /// (megaflow dump counters); counter attribution on the datapath
    /// itself is the caller's job.
    pub fn classify(
        &self,
        in_port: PortNo,
        key: &packet_wire::FlowKey,
        caches: Option<&mut PmdCaches>,
        pkts: u64,
        bytes: u64,
    ) -> (Option<Arc<RuleEntry>>, CacheTier) {
        let Some(caches) = caches else {
            return (self.table().lookup(in_port, key), CacheTier::Classifier);
        };
        let table = caches.table_snapshot(self);
        // Stamp cache entries with the snapshot's frozen generation, not
        // the live counter: a snapshot one publish behind must prime the
        // caches under *its* generation or it would serve stale actions.
        let generation = table.as_of();
        if let Some(rule) = caches.emc.lookup(in_port, key, generation) {
            return (Some(rule), CacheTier::Emc);
        }
        if let Some(rule) = caches
            .megaflow
            .lookup(in_port, key, generation, pkts, bytes)
        {
            // A megaflow hit promotes the exact flow into the EMC only
            // 1-in-N, like OVS's probabilistic EMC insertion on the dpcls
            // path: when the working set exceeds the EMC, unconditional
            // promotion would keep clearing the hot flows it just cached.
            caches.emc_promotion_tick = caches.emc_promotion_tick.wrapping_add(1);
            if caches.emc_promotion_tick % EMC_PROMOTION_INTERVAL == 1 {
                caches
                    .emc
                    .insert(in_port, *key, Arc::clone(&rule), generation);
            }
            return (Some(rule), CacheTier::Megaflow);
        }
        let (found, staged_mask) = table.lookup_staged(in_port, key);
        if let Some(rule) = &found {
            caches.megaflow.insert(
                in_port,
                key,
                staged_mask,
                Arc::clone(rule),
                generation,
                pkts,
                bytes,
            );
            caches
                .emc
                .insert(in_port, *key, Arc::clone(rule), generation);
        }
        (found, CacheTier::Classifier)
    }

    /// Runs one received burst through grouped classification + action
    /// execution, staging the results. The burst is grouped by flow key;
    /// each group resolves through [`Datapath::classify`] once and its
    /// packets then execute the matched actions in sequence (relative order
    /// within a flow is preserved; the burst drains completely).
    ///
    /// `caches` is locked once *per lookup group*, never across the whole
    /// burst, so an operator snapshot (`dump_megaflows`, `status_report`)
    /// contends for at most one cache resolution instead of stalling the
    /// hot path for an entire burst.
    pub fn process_burst(
        &self,
        burst: &mut Vec<Mbuf>,
        in_port: PortNo,
        caches: Option<&Mutex<PmdCaches>>,
        staged: &mut BTreeMap<PortNo, Vec<Mbuf>>,
        port_snapshot: &[Arc<OvsPort>],
        now: u64,
    ) {
        // Group by flow key in place: extract every key once, then walk
        // the burst per group leader (first packet of each distinct key).
        // Bursts are small (≤ DEFAULT_BURST), so the linear rescans beat
        // both hashing and per-group buffers — two bounded allocations per
        // burst instead of one per flow group.
        let keys: Vec<packet_wire::FlowKey> = burst
            .iter()
            .map(|pkt| packet_wire::FlowKey::extract(pkt.data()))
            .collect();
        let mut slots: Vec<Option<Mbuf>> = burst.drain(..).map(Some).collect();
        let telemetry = self.telemetry_enabled();
        // Cycle stamping is *burst-sampled* (1-in-STAGE_SAMPLE_INTERVAL):
        // the sampling decision is made under the first group's cache
        // guard, stamps chain through the group loop (each group's
        // execute-end stamp is the next group's classify-start), and
        // execute costs are accumulated and recorded with a single lock at
        // the end — so a stamped burst pays two TSC reads per flow group
        // and an unstamped burst pays one for the whole burst.
        let mut exec_cycles = 0u64;
        let mut exec_packets = 0u64;
        let mut classify_cycles = 0u64;
        let mut groups = 0u64;
        let mut sampled = false;
        let mut decided = !telemetry;
        let mut cursor = if telemetry { cycles::now() } else { 0 };
        for leader in 0..keys.len() {
            if slots[leader].is_none() {
                continue; // consumed with an earlier leader's group
            }
            let key = keys[leader];
            let mut n = 0u64;
            let mut bytes = 0u64;
            for (k, pkt) in keys.iter().zip(&slots).skip(leader) {
                if *k == key {
                    if let Some(pkt) = pkt {
                        n += 1;
                        bytes += pkt.len() as u64;
                    }
                }
            }
            let group_start = cursor;
            let mut classify_cyc = 0u64;
            let mut pmd_idx = None;
            let (rule, tier) = match caches {
                Some(m) => {
                    let mut guard = m.lock();
                    if !decided {
                        decided = true;
                        sampled = guard.stage_sample_tick % STAGE_SAMPLE_INTERVAL == 0;
                        guard.stage_sample_tick = guard.stage_sample_tick.wrapping_add(1);
                    }
                    let (rule, tier) = self.classify(in_port, &key, Some(&mut guard), n, bytes);
                    // Misses are attributed with `None`: they walked the
                    // whole hierarchy but hit no tier.
                    let resolved = rule.as_ref().map(|_| match tier {
                        CacheTier::Emc => Tier::Emc,
                        CacheTier::Megaflow => Tier::Megaflow,
                        CacheTier::Classifier => Tier::Classifier,
                    });
                    if sampled {
                        let t = cycles::now();
                        classify_cyc = t.saturating_sub(cursor);
                        cursor = t;
                        guard.perf.record_lookup(resolved, classify_cyc, n);
                        guard.perf.record_stage(Stage::Classify, classify_cyc, n);
                    } else {
                        guard.perf.count_lookup(resolved, n);
                        if telemetry {
                            guard.carry_pkts += n;
                        }
                    }
                    pmd_idx = Some(guard.perf.pmd);
                    (rule, tier)
                }
                None => self.classify(in_port, &key, None, n, bytes),
            };
            self.lookups.fetch_add(n, Ordering::Relaxed);
            let tracing = sampled && pmd_idx.is_some() && self.trace.should_sample();
            let tier_name = match (&rule, tier) {
                (None, _) => "miss",
                (Some(_), CacheTier::Emc) => "emc",
                (Some(_), CacheTier::Megaflow) => "megaflow",
                (Some(_), CacheTier::Classifier) => "classifier",
            };
            match rule {
                Some(rule) => {
                    self.matched.fetch_add(n, Ordering::Relaxed);
                    let tier_counter = match tier {
                        CacheTier::Emc => &self.emc_hits,
                        CacheTier::Megaflow => &self.megaflow_hits,
                        CacheTier::Classifier => &self.classifier_hits,
                    };
                    tier_counter.fetch_add(n, Ordering::Relaxed);
                    for i in leader..keys.len() {
                        if keys[i] != key {
                            continue;
                        }
                        if let Some(mut pkt) = slots[i].take() {
                            rule.hit(pkt.len() as u64, now);
                            let targets = execute(&mut pkt, &rule.actions);
                            self.stage_outputs(pkt, in_port, &targets, staged, port_snapshot);
                        }
                    }
                }
                None => {
                    coverage!("upcall_miss");
                    for i in leader..keys.len() {
                        if keys[i] != key {
                            continue;
                        }
                        if let Some(pkt) = slots[i].take() {
                            if self.miss_to_controller {
                                self.punt(&pkt, in_port, PacketInReason::NoMatch);
                            } else {
                                self.miss_drops.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            if sampled {
                let t = cycles::now();
                let group_exec = t.saturating_sub(cursor);
                cursor = t;
                exec_cycles += group_exec;
                exec_packets += n;
                classify_cycles += classify_cyc;
                groups += 1;
                if tracing {
                    self.trace.push(TraceSpan {
                        start_cycles: group_start,
                        pmd: pmd_idx.unwrap_or(0),
                        in_port: in_port.0,
                        packets: n,
                        flow: format!("{key:?}"),
                        tier: tier_name,
                        stages: vec![("classify", classify_cyc), ("execute", group_exec)],
                    });
                }
            }
        }
        if sampled && exec_packets > 0 {
            if let Some(m) = caches {
                let mut guard = m.lock();
                guard
                    .perf
                    .record_stage(Stage::Execute, exec_cycles, exec_packets);
                // Remember this burst's costs as the representative value
                // for packets carried from the unstamped bursts around it.
                guard.last_classify_cyc = classify_cycles / groups.max(1);
                guard.last_exec_cyc = exec_cycles;
                guard.flush_stage_carry();
            }
        }
    }

    /// Runs one packet through lookup + action execution, staging the
    /// results — a burst of one. Shared by packet-out handling and tests.
    pub fn process_packet(
        &self,
        pkt: Mbuf,
        in_port: PortNo,
        caches: Option<&Mutex<PmdCaches>>,
        staged: &mut BTreeMap<PortNo, Vec<Mbuf>>,
        port_snapshot: &[Arc<OvsPort>],
        now: u64,
    ) {
        let mut burst = vec![pkt];
        self.process_burst(&mut burst, in_port, caches, staged, port_snapshot, now);
    }

    /// Flushes staged packets to their ports (dropping on full rings).
    /// Packets staged for a port that vanished since classification are
    /// counted in [`Datapath::tx_no_port_drops`] and their key is removed
    /// from `staged` — dead ports must not pin map entries forever across
    /// PMD iterations.
    pub fn flush_staged(&self, staged: &mut BTreeMap<PortNo, Vec<Mbuf>>) {
        let ports = self.ports.read();
        staged.retain(|dest, pkts| match ports.get(dest) {
            Some(port) => {
                if !pkts.is_empty() {
                    port.tx_burst_or_drop(pkts);
                }
                true
            }
            None => {
                self.tx_no_port_drops
                    .fetch_add(pkts.len() as u64, Ordering::Relaxed);
                false
            }
        });
    }
}

/// The PMD that owns a flow under RSS sharding: a deterministic hash of
/// `(in_port, 5-tuple key)` modulo the PMD count. Every dispatching PMD
/// must agree on the owner, so this uses `DefaultHasher::new()` (fixed
/// keys — identical across threads) rather than a per-instance-randomised
/// hasher. Flow→PMD affinity keeps per-flow packet order and gives each
/// flow one home cache.
pub fn rss_owner(in_port: PortNo, key: &packet_wire::FlowKey, total: usize) -> usize {
    use std::hash::{Hash, Hasher};
    if total <= 1 {
        return 0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    in_port.0.hash(&mut h);
    key.hash(&mut h);
    (h.finish() % total as u64) as usize
}

/// Capacity (in batches) of each PMD→PMD fan-out ring.
pub const FANOUT_RING_BATCHES: usize = 1024;

/// Bounded enqueue retries toward a full peer ring before the batch is
/// dropped (counted in [`Datapath::fanout_drops`]). Bounded so two PMDs
/// flooding each other's full rings cannot livelock the dispatch loops.
const FANOUT_ENQUEUE_RETRIES: usize = 1024;

/// Batches drained from the fan-out inbox per PMD iteration, so a flood
/// from one peer cannot starve the PMD's own port polling.
const FANOUT_INBOX_BATCHES_PER_ITER: usize = 64;

/// One RSS-dispatched unit: packets of flows owned by the receiving PMD,
/// all received on `in_port`.
pub struct FanoutBatch {
    pub in_port: PortNo,
    pub pkts: Vec<Mbuf>,
}

/// One PMD's endpoints of the N×N SPSC fan-out mesh built by
/// [`build_fanout_mesh`]: a producer toward every peer and a consumer from
/// every peer.
pub struct PmdFanout {
    /// `producers[j]` feeds PMD `j`; `None` at this PMD's own index.
    producers: Vec<Option<SpscProducer<FanoutBatch>>>,
    consumers: Vec<SpscConsumer<FanoutBatch>>,
    /// Round-robin drain cursor over `consumers` (fairness across peers).
    next: usize,
}

impl PmdFanout {
    /// Hands a batch to its owner PMD's ring, yielding on a full ring for
    /// a bounded number of retries before dropping (counted on `dp`).
    fn send(&mut self, owner: usize, batch: FanoutBatch, dp: &Datapath) {
        let producer = self.producers[owner]
            .as_mut()
            .expect("fan-out send to own index");
        if let Err(dropped) = producer.enqueue_yielding(batch, FANOUT_ENQUEUE_RETRIES) {
            dp.fanout_drops
                .fetch_add(dropped.pkts.len() as u64, Ordering::Relaxed);
        }
    }

    /// The next queued batch from any peer, round-robin across consumers.
    fn recv(&mut self) -> Option<FanoutBatch> {
        let n = self.consumers.len();
        for _ in 0..n {
            let idx = self.next;
            self.next = (self.next + 1) % n;
            if let Some(batch) = self.consumers[idx].dequeue() {
                return Some(batch);
            }
        }
        None
    }
}

/// Builds the N×N mesh of SPSC rings connecting `total` PMDs; element `i`
/// of the result belongs to PMD `i`. Each ordered pair of distinct PMDs
/// gets its own single-producer/single-consumer ring, so no fan-out path
/// ever shares an endpoint between threads.
pub fn build_fanout_mesh(total: usize) -> Vec<PmdFanout> {
    let mut producers: Vec<Vec<Option<SpscProducer<FanoutBatch>>>> = (0..total)
        .map(|_| (0..total).map(|_| None).collect())
        .collect();
    let mut consumers: Vec<Vec<SpscConsumer<FanoutBatch>>> =
        (0..total).map(|_| Vec::with_capacity(total)).collect();
    for (from, row) in producers.iter_mut().enumerate() {
        for (to, slot) in row.iter_mut().enumerate() {
            if from == to {
                continue;
            }
            let (tx, rx) = spsc_ring(FANOUT_RING_BATCHES);
            *slot = Some(tx);
            consumers[to].push(rx);
        }
    }
    producers
        .into_iter()
        .zip(consumers)
        .map(|(producers, consumers)| PmdFanout {
            producers,
            consumers,
            next: 0,
        })
        .collect()
}

/// One synchronous burst-batched PMD iteration over every port — the body
/// of [`PmdThread::run`] minus the thread, for deterministic unit tests.
#[cfg(test)]
pub(crate) fn pump_once(dp: &Datapath, caches: Option<&Mutex<PmdCaches>>) {
    let snapshot: Vec<Arc<OvsPort>> = dp.ports.read().values().cloned().collect();
    let mut staged = BTreeMap::new();
    let now = cycles::now();
    for port in &snapshot {
        let mut rx = Vec::new();
        port.rx_burst(&mut rx, DEFAULT_BURST);
        if !rx.is_empty() {
            dp.process_burst(&mut rx, port.no, caches, &mut staged, &snapshot, now);
        }
    }
    dp.flush_staged(&mut staged);
}

/// A PMD thread: polls its share of the ports in round-robin. With one
/// thread (the default) this is a single-core OVS-DPDK deployment; with
/// several, ports are partitioned round-robin like default
/// `pmd-rxq-affinity`, and — when a fan-out mesh is attached — polled
/// bursts are re-sharded by flow hash so every flow is classified by its
/// owner PMD against that PMD's caches.
pub struct PmdThread {
    dp: Arc<Datapath>,
    stop: Arc<AtomicBool>,
    /// This thread's index within the PMD set.
    index: usize,
    /// Total PMD threads sharing the ports.
    total: usize,
    /// RSS fan-out endpoints; `None` means this PMD keeps every flow it
    /// polls (single-PMD deployments and port-partitioned legacy shares).
    fanout: Option<PmdFanout>,
    /// Polling iterations performed (idle or not).
    pub iterations: Arc<AtomicU64>,
}

impl PmdThread {
    /// Creates a PMD owning *all* ports (single-PMD deployment).
    pub fn new(dp: Arc<Datapath>, stop: Arc<AtomicBool>) -> PmdThread {
        PmdThread::with_share(dp, stop, 0, 1)
    }

    /// Creates PMD `index` of `total`, polling ports whose position in the
    /// ascending port order is `index` modulo `total`. Without a fan-out
    /// mesh, flows stay on whichever PMD polls their ingress port.
    pub fn with_share(
        dp: Arc<Datapath>,
        stop: Arc<AtomicBool>,
        index: usize,
        total: usize,
    ) -> PmdThread {
        assert!(total >= 1 && index < total, "bad PMD share {index}/{total}");
        PmdThread {
            dp,
            stop,
            index,
            total,
            fanout: None,
            iterations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates PMD `index` of `total` with its endpoints of the RSS
    /// fan-out mesh (element `index` of [`build_fanout_mesh`]`(total)`):
    /// polled bursts are partitioned by [`rss_owner`], remote flows ride
    /// the SPSC rings to their owner, and batches re-sharded here by peers
    /// are drained each iteration.
    pub fn with_fanout(
        dp: Arc<Datapath>,
        stop: Arc<AtomicBool>,
        index: usize,
        total: usize,
        fanout: PmdFanout,
    ) -> PmdThread {
        let mut pmd = PmdThread::with_share(dp, stop, index, total);
        pmd.fanout = Some(fanout);
        pmd
    }

    /// Runs until the stop flag is raised. Yields when fully idle so the
    /// reproduction behaves on machines with fewer cores than the testbed.
    pub fn run(mut self) {
        // Per-PMD caches, shared with the datapath for operator dumps. The
        // lock is taken per lookup group (inside process_burst), never
        // across a whole burst, so an operator snapshot cannot stall the
        // hot path for more than one cache resolution.
        let caches = Arc::new(Mutex::new(PmdCaches::new()));
        caches.lock().perf.pmd = self.index;
        self.dp.register_pmd_caches(&caches);
        let mut rx_buf: Vec<Mbuf> = Vec::with_capacity(DEFAULT_BURST);
        let mut local: Vec<Mbuf> = Vec::with_capacity(DEFAULT_BURST);
        let mut remote: Vec<Vec<Mbuf>> = (0..self.total).map(|_| Vec::new()).collect();
        let mut staged: BTreeMap<PortNo, Vec<Mbuf>> = BTreeMap::new();
        let mut snapshot: Vec<Arc<OvsPort>> = Vec::new();
        let mut mine: Vec<Arc<OvsPort>> = Vec::new();
        let mut snapshot_gen = u64::MAX;

        while !self.stop.load(Ordering::Acquire) {
            // Per-iteration telemetry accumulators, folded into the perf
            // block with one lock at the end of the iteration so the poll
            // loop itself takes no extra locks.
            let telemetry = self.dp.telemetry_enabled();
            let mut it_rx_packets = 0u64;
            let mut it_rx_batches = 0u64;
            let mut it_rx_cycles = 0u64;
            let mut it_fanout_sent = 0u64;
            let mut it_fanout_recv = 0u64;
            let mut it_fanout_cycles = 0u64;
            let mut it_fanout_pkts_resharded = 0u64;
            let gen = self.dp.ports_generation.load(Ordering::Acquire);
            if gen != snapshot_gen {
                snapshot = self.dp.ports.read().values().cloned().collect();
                mine = snapshot
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % self.total == self.index)
                    .map(|(_, p)| Arc::clone(p))
                    .collect();
                snapshot_gen = gen;
            }
            let mut idle = true;
            let now = cycles::now();
            for port in &mine {
                rx_buf.clear();
                let t_rx = if telemetry { cycles::now() } else { 0 };
                let n = port.rx_burst(&mut rx_buf, DEFAULT_BURST);
                if n == 0 {
                    continue;
                }
                idle = false;
                if telemetry {
                    it_rx_cycles += cycles::now().saturating_sub(t_rx);
                }
                it_rx_packets += n as u64;
                it_rx_batches += 1;
                match &mut self.fanout {
                    Some(fanout) => {
                        // RSS dispatch: partition the burst by owner PMD.
                        // The owner re-extracts the key during its own
                        // grouped classification — the extra extraction
                        // buys lock-free per-flow cache affinity.
                        let t_fanout = if telemetry { cycles::now() } else { 0 };
                        local.clear();
                        for pkt in rx_buf.drain(..) {
                            let key = packet_wire::FlowKey::extract(pkt.data());
                            let owner = rss_owner(port.no, &key, self.total);
                            if owner == self.index {
                                local.push(pkt);
                            } else {
                                remote[owner].push(pkt);
                            }
                        }
                        for (owner, pkts) in remote.iter_mut().enumerate() {
                            if !pkts.is_empty() {
                                it_fanout_sent += pkts.len() as u64;
                                let batch = FanoutBatch {
                                    in_port: port.no,
                                    pkts: std::mem::take(pkts),
                                };
                                fanout.send(owner, batch, &self.dp);
                            }
                        }
                        if telemetry {
                            it_fanout_cycles += cycles::now().saturating_sub(t_fanout);
                            it_fanout_pkts_resharded += n as u64;
                        }
                        if !local.is_empty() {
                            self.dp.process_burst(
                                &mut local,
                                port.no,
                                Some(&*caches),
                                &mut staged,
                                &snapshot,
                                now,
                            );
                        }
                    }
                    None => {
                        self.dp.process_burst(
                            &mut rx_buf,
                            port.no,
                            Some(&*caches),
                            &mut staged,
                            &snapshot,
                            now,
                        );
                    }
                }
            }
            if let Some(fanout) = &mut self.fanout {
                for _ in 0..FANOUT_INBOX_BATCHES_PER_ITER {
                    let Some(mut batch) = fanout.recv() else {
                        break;
                    };
                    idle = false;
                    it_fanout_recv += batch.pkts.len() as u64;
                    self.dp.process_burst(
                        &mut batch.pkts,
                        batch.in_port,
                        Some(&*caches),
                        &mut staged,
                        &snapshot,
                        now,
                    );
                }
            }
            let tx_pkts: u64 = staged.values().map(|v| v.len() as u64).sum();
            let t_tx = if telemetry { cycles::now() } else { 0 };
            self.dp.flush_staged(&mut staged);
            self.iterations.fetch_add(1, Ordering::Relaxed);
            {
                // One fold per iteration: counters always, histograms and
                // cycle attribution only when telemetry is enabled.
                let mut guard = caches.lock();
                let perf = &mut guard.perf;
                perf.iterations += 1;
                if idle {
                    perf.idle_iterations += 1;
                }
                perf.rx_packets += it_rx_packets;
                perf.rx_batches += it_rx_batches;
                perf.fanout_sent += it_fanout_sent;
                perf.fanout_recv += it_fanout_recv;
                perf.tx_packets += tx_pkts;
                if telemetry {
                    let t_end = cycles::now();
                    if it_rx_packets > 0 {
                        perf.record_stage(Stage::RxBurst, it_rx_cycles, it_rx_packets);
                    }
                    if it_fanout_pkts_resharded > 0 {
                        perf.record_stage(
                            Stage::Fanout,
                            it_fanout_cycles,
                            it_fanout_pkts_resharded,
                        );
                    }
                    if tx_pkts > 0 {
                        perf.record_stage(Stage::TxFlush, t_end.saturating_sub(t_tx), tx_pkts);
                    }
                    let iter_cycles = t_end.saturating_sub(now);
                    if idle {
                        perf.idle_cycles += iter_cycles;
                    } else {
                        perf.busy_cycles += iter_cycles;
                    }
                }
            }
            if idle {
                std::thread::yield_now();
            }
        }
        self.dp.deregister_pmd_caches(&caches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, FlowMatch};
    use packet_wire::PacketBuilder;
    use shmem_sim::channel;

    fn probe() -> Mbuf {
        Mbuf::from_slice(&PacketBuilder::udp_probe(64).build())
    }

    /// Builds a 2-port datapath; returns (dp, vm1 end, vm2 end).
    fn two_port_dp(
        miss_to_controller: bool,
    ) -> (Arc<Datapath>, shmem_sim::ChannelEnd, shmem_sim::ChannelEnd) {
        let dp = Datapath::new(miss_to_controller);
        let (sw1, vm1) = channel("dpdkr1", 64);
        let (sw2, vm2) = channel("dpdkr2", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(1), "dpdkr1", sw1));
        dp.add_port(OvsPort::dpdkr(PortNo(2), "dpdkr2", sw2));
        (dp, vm1, vm2)
    }

    fn pump(dp: &Arc<Datapath>) {
        // One synchronous PMD iteration (no thread), for deterministic tests.
        pump_once(dp, None);
    }

    #[test]
    fn forwards_along_installed_rule() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(vm2.recv().unwrap().len(), 64);
        assert!(vm1.recv().is_none());
        // Rule counters ticked.
        let table = dp.table();
        let rule = &table.rules()[0];
        assert_eq!(rule.counters(), (1, 64));
    }

    #[test]
    fn miss_drop_policy_counts() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(dp.miss_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn miss_punt_policy_queues_packet_in() {
        let (dp, mut vm1, _vm2) = two_port_dp(true);
        vm1.send(probe()).unwrap();
        pump(&dp);
        let pis = dp.drain_packet_ins(8);
        assert_eq!(pis.len(), 1);
        assert_eq!(pis[0].in_port, PortNo(1));
        assert_eq!(pis[0].reason, PacketInReason::NoMatch);
        assert_eq!(pis[0].data.len(), 64);
    }

    #[test]
    fn flood_replicates_to_all_but_ingress() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        let (sw3, mut vm3) = channel("dpdkr3", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(3), "dpdkr3", sw3));
        dp.table_apply(&FlowMod::add(
            FlowMatch::any(),
            1,
            vec![Action::Output(PortNo::FLOOD)],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert!(vm1.recv().is_none());
        assert_eq!(vm2.recv().unwrap().len(), 64);
        assert_eq!(vm3.recv().unwrap().len(), 64);
    }

    #[test]
    fn controller_action_punts_and_still_forwards() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![
                Action::Output(PortNo::CONTROLLER),
                Action::Output(PortNo(2)),
            ],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert_eq!(dp.drain_packet_ins(8).len(), 1);
        assert!(vm2.recv().is_some());
    }

    #[test]
    fn pmd_thread_moves_traffic_end_to_end() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let pmd = PmdThread::new(Arc::clone(&dp), Arc::clone(&stop));
        let handle = std::thread::spawn(move || pmd.run());

        for i in 0..100u64 {
            let mut m = probe();
            m.udata = i;
            while vm1.send(m).is_err() {
                m = probe();
                m.udata = i;
                std::thread::yield_now();
            }
        }
        let mut got = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got < 100 && std::time::Instant::now() < deadline {
            if vm2.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
        assert_eq!(got, 100);
    }

    /// One synchronous burst-batched PMD iteration with the given caches.
    fn pump_with_caches(dp: &Arc<Datapath>, caches: &Mutex<PmdCaches>) {
        pump_once(dp, Some(caches));
    }

    /// Pins the tier-split stats semantics (`OFPST_TABLE` consistency):
    /// lookups == matched + misses, matched == sum of per-tier hits, and a
    /// repeated flow climbs the hierarchy (classifier → megaflow/EMC).
    #[test]
    fn stats_split_by_tier_is_consistent() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let caches = Mutex::new(PmdCaches::new());

        // Burst 1: two packets of one flow + one of another → grouped
        // classification resolves each group once, in the classifier.
        for seq in [1u64, 1, 2] {
            vm1.send(Mbuf::from_slice(
                &PacketBuilder::udp_probe(64)
                    .ports(40000, seq as u16)
                    .build(),
            ))
            .unwrap();
        }
        pump_with_caches(&dp, &caches);
        let s = dp.cache_stats();
        assert_eq!(s.lookups, 3, "every packet is one lookup");
        assert_eq!(s.matched, 3);
        // Group 1 (2 pkts) walks the cold classifier; its staged mask pins
        // only in_port, so group 2's new flow is already a megaflow hit.
        assert_eq!(s.classifier_hits, 2);
        assert_eq!(s.megaflow_hits, 1);
        assert_eq!(s.emc_hits, 0);
        // The caches resolved once per *group*, not per packet.
        assert_eq!(
            caches.lock().emc.stats().1,
            2,
            "one EMC miss per flow group"
        );

        // Burst 2: the same flows again → EMC hits.
        for seq in [1u64, 2] {
            vm1.send(Mbuf::from_slice(
                &PacketBuilder::udp_probe(64)
                    .ports(40000, seq as u16)
                    .build(),
            ))
            .unwrap();
        }
        pump_with_caches(&dp, &caches);
        let s = dp.cache_stats();
        assert_eq!(s.lookups, 5);
        assert_eq!(s.matched, 5);
        assert_eq!(s.emc_hits, 2);
        assert_eq!(s.matched, s.emc_hits + s.megaflow_hits + s.classifier_hits);

        // A miss (no rule for port 2 traffic is irrelevant here: remove the
        // rule) keeps the identity lookups == matched + misses.
        dp.table_apply(&FlowMod::delete(FlowMatch::any()));
        vm1.send(probe()).unwrap();
        pump_with_caches(&dp, &caches);
        let s = dp.cache_stats();
        assert_eq!(s.lookups, 6);
        assert_eq!(s.matched, 5);
        assert_eq!(s.misses, 1);
        assert_eq!(dp.miss_drops.load(Ordering::Relaxed), 1);
        assert_eq!(s.matched, s.emc_hits + s.megaflow_hits + s.classifier_hits);
    }

    /// The megaflow tier serves EMC misses: a wildcard rule resolved for
    /// one flow covers sibling flows under the staged mask, so a *new* flow
    /// of the same aggregate is a megaflow hit, not a classifier walk.
    #[test]
    fn megaflow_serves_new_flows_of_a_cached_aggregate() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let caches = Mutex::new(PmdCaches::new());

        vm1.send(Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).ports(1000, 1).build(),
        ))
        .unwrap();
        pump_with_caches(&dp, &caches);
        assert_eq!(dp.classifier_hits.load(Ordering::Relaxed), 1);

        // A different 5-tuple, same in_port: the staged mask pinned only
        // in_port, so this is a megaflow hit.
        vm1.send(Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).ports(2000, 2).build(),
        ))
        .unwrap();
        pump_with_caches(&dp, &caches);
        assert_eq!(dp.megaflow_hits.load(Ordering::Relaxed), 1);
        assert_eq!(dp.classifier_hits.load(Ordering::Relaxed), 1);
        assert_eq!(caches.lock().megaflow.mask_count(), 1);
        assert!(vm2.recv().is_some() && vm2.recv().is_some());

        // And the megaflow hit promoted the new flow into the EMC.
        vm1.send(Mbuf::from_slice(
            &PacketBuilder::udp_probe(64).ports(2000, 2).build(),
        ))
        .unwrap();
        pump_with_caches(&dp, &caches);
        assert_eq!(dp.emc_hits.load(Ordering::Relaxed), 1);
    }

    /// Generation-based invalidation: a table change must flush both cache
    /// tiers so no stale actions are ever served.
    #[test]
    fn table_change_invalidates_both_cache_tiers() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        let (sw3, mut vm3) = channel("dpdkr3", 64);
        dp.add_port(OvsPort::dpdkr(PortNo(3), "dpdkr3", sw3));
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let caches = Mutex::new(PmdCaches::new());
        vm1.send(probe()).unwrap();
        pump_with_caches(&dp, &caches);
        assert!(vm2.recv().is_some());
        assert!(!caches.lock().megaflow.is_empty());

        // Re-add with new actions (same match+priority ⇒ replace).
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(3))],
        ));
        vm1.send(probe()).unwrap();
        pump_with_caches(&dp, &caches);
        assert!(vm2.recv().is_none(), "stale cached action served");
        assert!(vm3.recv().is_some(), "new action not applied");
    }

    #[test]
    fn in_port_target_hairpins() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo::IN_PORT)],
        ));
        vm1.send(probe()).unwrap();
        pump(&dp);
        assert!(vm1.recv().is_some());
    }

    #[test]
    fn remove_port_stops_delivery() {
        let (dp, mut vm1, _vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        dp.remove_port(PortNo(2));
        vm1.send(probe()).unwrap();
        pump(&dp); // staged for a vanished port: dropped (and counted)
        assert_eq!(dp.port_numbers(), vec![PortNo(1)]);
        assert_eq!(dp.cache_stats().tx_no_port_drops, 1);
    }

    #[test]
    fn flush_staged_counts_drops_and_evicts_dead_keys() {
        let (dp, _vm1, _vm2) = two_port_dp(false);
        let mut staged: BTreeMap<PortNo, Vec<Mbuf>> = BTreeMap::new();
        staged.insert(PortNo(99), vec![probe(), probe()]);
        staged.insert(PortNo(1), Vec::new());
        dp.flush_staged(&mut staged);
        assert_eq!(dp.tx_no_port_drops.load(Ordering::Relaxed), 2);
        assert!(
            !staged.contains_key(&PortNo(99)),
            "dead PortNo key must not be retained across iterations"
        );
        assert!(
            staged.contains_key(&PortNo(1)),
            "live port keys are kept for buffer reuse"
        );
    }

    #[test]
    fn rss_owner_is_deterministic_and_in_range() {
        for total in [1usize, 2, 4, 7] {
            for port in [1u16, 2, 3] {
                for l4 in 0..64u16 {
                    let key = packet_wire::FlowKey::extract(
                        &PacketBuilder::udp_probe(64).ports(1000 + l4, 80).build(),
                    );
                    let a = rss_owner(PortNo(port), &key, total);
                    let b = rss_owner(PortNo(port), &key, total);
                    assert_eq!(a, b, "owner must be stable for a flow");
                    assert!(a < total);
                }
            }
        }
        // With several PMDs, distinct flows must actually spread out.
        let owners: std::collections::BTreeSet<usize> = (0..256u16)
            .map(|l4| {
                let key = packet_wire::FlowKey::extract(
                    &PacketBuilder::udp_probe(64).ports(1000 + l4, 80).build(),
                );
                rss_owner(PortNo(1), &key, 4)
            })
            .collect();
        assert_eq!(owners.len(), 4, "256 flows must cover all 4 PMDs");
    }

    #[test]
    fn fanout_mesh_routes_batches_between_pmds() {
        let dp = Datapath::new(false);
        let mut mesh = build_fanout_mesh(3);
        let mut c = mesh.pop().unwrap(); // PMD 2
        let mut b = mesh.pop().unwrap(); // PMD 1
        let mut a = mesh.pop().unwrap(); // PMD 0
        a.send(
            2,
            FanoutBatch {
                in_port: PortNo(7),
                pkts: vec![probe()],
            },
            &dp,
        );
        b.send(
            2,
            FanoutBatch {
                in_port: PortNo(8),
                pkts: vec![probe(), probe()],
            },
            &dp,
        );
        let mut got: Vec<(PortNo, usize)> = Vec::new();
        while let Some(batch) = c.recv() {
            got.push((batch.in_port, batch.pkts.len()));
        }
        got.sort();
        assert_eq!(got, vec![(PortNo(7), 1), (PortNo(8), 2)]);
        assert!(a.recv().is_none(), "nothing was sent toward PMD 0");
        assert_eq!(dp.fanout_drops.load(Ordering::Relaxed), 0);
    }

    /// Four PMDs with an RSS fan-out mesh move a many-flow workload
    /// losslessly, and flows cached on remote PMDs still observe table
    /// changes (the snapshot refresh) — end to end through real threads.
    #[test]
    fn fanout_pmds_move_traffic_end_to_end() {
        let (dp, mut vm1, mut vm2) = two_port_dp(false);
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            10,
            vec![Action::Output(PortNo(2))],
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let total = 4;
        let mut handles = Vec::new();
        for (i, fanout) in build_fanout_mesh(total).into_iter().enumerate() {
            let pmd = PmdThread::with_fanout(Arc::clone(&dp), Arc::clone(&stop), i, total, fanout);
            handles.push(std::thread::spawn(move || pmd.run()));
        }

        let n = 96u16;
        for i in 0..n {
            // Distinct 5-tuples so the RSS hash spreads flows across PMDs.
            let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).ports(1000 + i, 80).build());
            m.udata = u64::from(i);
            while vm1.send(m).is_err() {
                m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).ports(1000 + i, 80).build());
                m.udata = u64::from(i);
                std::thread::yield_now();
            }
        }
        let mut got = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while got < usize::from(n) && std::time::Instant::now() < deadline {
            if vm2.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, usize::from(n));
        assert_eq!(dp.fanout_drops.load(Ordering::Relaxed), 0);
        let s = dp.cache_stats();
        assert_eq!(s.lookups, u64::from(n));
        assert_eq!(s.matched, u64::from(n));
    }
}
