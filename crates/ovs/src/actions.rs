//! Action execution: applying OpenFlow actions to packet bytes.
//!
//! Field rewrites edit the frame in place through the `packet-wire` views
//! (and refresh checksums); output actions are resolved by the caller, which
//! owns the port table. VLAN push/strip restructure the frame using the
//! mbuf headroom.

use dpdk_sim::Mbuf;
use openflow::{Action, PortNo};
use packet_wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram, ETHERNET_HEADER_LEN,
};

/// Where a packet must go after action execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputTarget {
    /// Deliver to this physical port.
    Port(PortNo),
    /// Flood: all ports except the ingress one.
    Flood,
    /// Punt to the controller.
    Controller,
    /// Send back out the ingress port.
    InPort,
}

/// Applies every non-output action to the frame in place and collects the
/// output targets in order. An empty result means drop.
pub fn execute(pkt: &mut Mbuf, actions: &[Action]) -> Vec<OutputTarget> {
    let mut outputs = Vec::new();
    for action in actions {
        match action {
            Action::Output(p) => {
                let target = match *p {
                    PortNo::FLOOD | PortNo::ALL => OutputTarget::Flood,
                    PortNo::CONTROLLER => OutputTarget::Controller,
                    PortNo::IN_PORT => OutputTarget::InPort,
                    other if other.is_physical() => OutputTarget::Port(other),
                    _ => continue, // TABLE/NORMAL/LOCAL unsupported: ignore
                };
                outputs.push(target);
            }
            Action::SetEthSrc(mac) => {
                if pkt.len() >= ETHERNET_HEADER_LEN {
                    EthernetFrame::new_unchecked(pkt.data_mut()).set_src_addr(*mac);
                }
            }
            Action::SetEthDst(mac) => {
                if pkt.len() >= ETHERNET_HEADER_LEN {
                    EthernetFrame::new_unchecked(pkt.data_mut()).set_dst_addr(*mac);
                }
            }
            Action::SetIpv4Src(a) => rewrite_ipv4(pkt, |ip| ip.set_src_addr(*a)),
            Action::SetIpv4Dst(a) => rewrite_ipv4(pkt, |ip| ip.set_dst_addr(*a)),
            Action::SetIpTos(t) => rewrite_ipv4(pkt, |ip| ip.set_tos(*t)),
            Action::SetL4Src(p) => rewrite_l4(pkt, *p, true),
            Action::SetL4Dst(p) => rewrite_l4(pkt, *p, false),
            Action::SetVlanId(vid) => set_vlan(pkt, *vid),
            Action::StripVlan => strip_vlan(pkt),
        }
    }
    outputs
}

fn ipv4_offset(pkt: &Mbuf) -> Option<usize> {
    let eth = EthernetFrame::new_checked(pkt.data()).ok()?;
    match eth.ethertype() {
        EtherType::Ipv4 => Some(ETHERNET_HEADER_LEN),
        EtherType::Vlan => {
            let p = eth.payload();
            if p.len() >= 4 && u16::from_be_bytes([p[2], p[3]]) == 0x0800 {
                Some(ETHERNET_HEADER_LEN + 4)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn rewrite_ipv4(pkt: &mut Mbuf, f: impl FnOnce(&mut Ipv4Packet<&mut [u8]>)) {
    let Some(off) = ipv4_offset(pkt) else { return };
    let data = pkt.data_mut();
    let Ok(_) = Ipv4Packet::new_checked(&data[off..]) else {
        return;
    };
    let mut ip = Ipv4Packet::new_unchecked(&mut data[off..]);
    f(&mut ip);
    ip.fill_checksum();
    refresh_l4_checksum(pkt, off);
}

fn rewrite_l4(pkt: &mut Mbuf, port: u16, src: bool) {
    let Some(off) = ipv4_offset(pkt) else { return };
    let data = pkt.data_mut();
    let Ok(ip) = Ipv4Packet::new_checked(&data[off..]) else {
        return;
    };
    let proto = ip.protocol();
    let l4_off = off + ip.header_len();
    match proto {
        IpProtocol::Udp => {
            if UdpDatagram::new_checked(&data[l4_off..]).is_ok() {
                let mut udp = UdpDatagram::new_unchecked(&mut data[l4_off..]);
                if src {
                    udp.set_src_port(port);
                } else {
                    udp.set_dst_port(port);
                }
            }
        }
        IpProtocol::Tcp => {
            if TcpSegment::new_checked(&data[l4_off..]).is_ok() {
                let mut tcp = TcpSegment::new_unchecked(&mut data[l4_off..]);
                if src {
                    tcp.set_src_port(port);
                } else {
                    tcp.set_dst_port(port);
                }
            }
        }
        _ => return,
    }
    refresh_l4_checksum(pkt, off);
}

/// Recomputes the UDP/TCP checksum after any rewrite that affects it.
fn refresh_l4_checksum(pkt: &mut Mbuf, ip_off: usize) {
    let data = pkt.data_mut();
    let Ok(ip) = Ipv4Packet::new_checked(&data[ip_off..]) else {
        return;
    };
    let (src, dst, proto, hl) = (ip.src_addr(), ip.dst_addr(), ip.protocol(), ip.header_len());
    let l4 = &mut data[ip_off + hl..];
    match proto {
        IpProtocol::Udp => {
            if UdpDatagram::new_checked(&*l4).is_ok() {
                let mut udp = UdpDatagram::new_unchecked(l4);
                if udp.checksum_field() != 0 {
                    udp.fill_checksum(src, dst);
                }
            }
        }
        IpProtocol::Tcp => {
            if TcpSegment::new_checked(&*l4).is_ok() {
                TcpSegment::new_unchecked(l4).fill_checksum(src, dst);
            }
        }
        _ => {}
    }
}

/// Sets (or inserts) an 802.1Q tag with the given VID.
fn set_vlan(pkt: &mut Mbuf, vid: u16) {
    if pkt.len() < ETHERNET_HEADER_LEN {
        return;
    }
    let already_tagged = {
        let eth = EthernetFrame::new_unchecked(pkt.data());
        eth.ethertype() == EtherType::Vlan
    };
    if already_tagged {
        let data = pkt.data_mut();
        let tci = (u16::from_be_bytes([data[14], data[15]]) & !0x0fff) | (vid & 0x0fff);
        data[14..16].copy_from_slice(&tci.to_be_bytes());
        return;
    }
    if pkt.headroom() < 4 {
        return; // cannot grow; leave untagged (counted nowhere, like OVS)
    }
    pkt.prepend(4);
    let data = pkt.data_mut();
    // Shift the two MAC addresses forward by 4 bytes.
    data.copy_within(4..16, 0);
    data[12..14].copy_from_slice(&0x8100u16.to_be_bytes());
    data[14..16].copy_from_slice(&(vid & 0x0fff).to_be_bytes());
}

/// Removes an 802.1Q tag if present.
fn strip_vlan(pkt: &mut Mbuf) {
    if pkt.len() < ETHERNET_HEADER_LEN + 4 {
        return;
    }
    let tagged = EthernetFrame::new_unchecked(pkt.data()).ethertype() == EtherType::Vlan;
    if !tagged {
        return;
    }
    let data = pkt.data_mut();
    // Shift MACs back over the tag.
    data.copy_within(0..12, 4);
    pkt.adj(4);
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet_wire::{FlowKey, MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn probe() -> Mbuf {
        Mbuf::from_slice(&PacketBuilder::udp_probe(64).build())
    }

    #[test]
    fn output_actions_collect_targets() {
        let mut pkt = probe();
        let outs = execute(
            &mut pkt,
            &[
                Action::Output(PortNo(3)),
                Action::Output(PortNo::FLOOD),
                Action::Output(PortNo::CONTROLLER),
                Action::Output(PortNo::IN_PORT),
            ],
        );
        assert_eq!(
            outs,
            vec![
                OutputTarget::Port(PortNo(3)),
                OutputTarget::Flood,
                OutputTarget::Controller,
                OutputTarget::InPort,
            ]
        );
    }

    #[test]
    fn empty_actions_mean_drop() {
        let mut pkt = probe();
        assert!(execute(&mut pkt, &[]).is_empty());
    }

    #[test]
    fn eth_rewrite() {
        let mut pkt = probe();
        execute(&mut pkt, &[Action::SetEthSrc(MacAddr::local(9))]);
        let key = FlowKey::extract(pkt.data());
        assert_eq!(key.eth_src, MacAddr::local(9));
    }

    #[test]
    fn ipv4_rewrite_keeps_checksums_valid() {
        let mut pkt = probe();
        execute(&mut pkt, &[Action::SetIpv4Dst(Ipv4Addr::new(9, 9, 9, 9))]);
        let eth = EthernetFrame::new_checked(pkt.data()).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.dst_addr(), Ipv4Addr::new(9, 9, 9, 9));
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn l4_rewrite_updates_ports_and_checksum() {
        let mut pkt = probe();
        execute(&mut pkt, &[Action::SetL4Dst(8080), Action::SetL4Src(4242)]);
        let key = FlowKey::extract(pkt.data());
        assert_eq!(key.l4_dst, 8080);
        assert_eq!(key.l4_src, 4242);
        let eth = EthernetFrame::new_checked(pkt.data()).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn vlan_set_and_strip_roundtrip() {
        let mut pkt = probe();
        let before = pkt.to_vec();
        execute(&mut pkt, &[Action::SetVlanId(100)]);
        let key = FlowKey::extract(pkt.data());
        assert_eq!(key.vlan_id, 100);
        assert_eq!(pkt.len(), before.len() + 4);

        // Retag in place (no second header).
        execute(&mut pkt, &[Action::SetVlanId(200)]);
        assert_eq!(FlowKey::extract(pkt.data()).vlan_id, 200);
        assert_eq!(pkt.len(), before.len() + 4);

        execute(&mut pkt, &[Action::StripVlan]);
        assert_eq!(pkt.to_vec(), before);
    }

    #[test]
    fn tos_rewrite() {
        let mut pkt = probe();
        execute(&mut pkt, &[Action::SetIpTos(0x2e)]);
        assert_eq!(FlowKey::extract(pkt.data()).ip_tos, 0x2e);
        let eth = EthernetFrame::new_checked(pkt.data()).unwrap();
        assert!(Ipv4Packet::new_checked(eth.payload())
            .unwrap()
            .verify_checksum());
    }
}
