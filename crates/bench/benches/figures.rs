//! Figure regeneration as Criterion benchmarks.
//!
//! `cargo bench` therefore covers every table and figure: each bench
//! evaluates one experiment's full series (and asserts its published shape
//! as a side effect — a regression here means the reproduction no longer
//! matches the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{fig3a, fig3b, latency_vs_chain, setup_time_model, CostModel};
use std::hint::black_box;

fn bench_fig3a(c: &mut Criterion) {
    let cost = CostModel::paper_testbed();
    c.bench_function("fig3a_series", |b| {
        b.iter(|| {
            let rows = fig3a(black_box(&cost));
            assert!(rows.last().unwrap().speedup() > 4.0);
            black_box(rows)
        });
    });
}

fn bench_fig3b(c: &mut Criterion) {
    let cost = CostModel::paper_testbed();
    c.bench_function("fig3b_series", |b| {
        b.iter(|| {
            let rows = fig3b(black_box(&cost));
            assert!((rows[0].traditional - rows[0].highway).abs() < 1e-6);
            black_box(rows)
        });
    });
}

fn bench_latency(c: &mut Criterion) {
    let cost = CostModel::paper_testbed();
    c.bench_function("latency_series", |b| {
        b.iter(|| {
            let rows = latency_vs_chain(black_box(&cost));
            let last = rows.last().unwrap();
            let improvement = 1.0 - last.highway / last.traditional;
            assert!(improvement > 0.6);
            black_box(rows)
        });
    });
}

fn bench_setup_model(c: &mut Criterion) {
    c.bench_function("setup_time_model", |b| {
        b.iter(|| {
            let ms = setup_time_model();
            assert!((80.0..=120.0).contains(&ms));
            black_box(ms)
        });
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(300)).warm_up_time(std::time::Duration::from_millis(100));
    targets = bench_fig3a, bench_fig3b, bench_latency, bench_setup_model
);
criterion_main!(figures);
