//! Ablation microbenchmarks (A5–A8 in DESIGN.md): how the measured costs
//! of the real code move with the design parameters the cost model treats
//! as constants. These bound the sensitivity of the figure reproductions
//! to our calibration choices.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpdk_sim::{spsc_ring, Mbuf};
use openflow::{Action, FlowMatch, PortNo};
use ovs_dp::emc::Emc;
use ovs_dp::pmd::{Datapath, PmdCaches};
use ovs_dp::port::OvsPort;
use ovs_dp::table::FlowTable;
use packet_wire::{FlowKey, PacketBuilder};
use shmem_sim::channel;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

/// A5: does ring depth change per-op cost? (The cost model assumes not;
/// the paper's dpdkr rings and our bypass rings are 1024 deep.)
fn bench_ring_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("A5-ring-depth");
    g.throughput(Throughput::Elements(1));
    for depth in [64usize, 1024, 4096] {
        g.bench_function(format!("enq_deq_depth_{depth}"), |b| {
            let (mut p, mut cns) = spsc_ring::<u64>(depth);
            b.iter(|| {
                p.enqueue(black_box(7)).unwrap();
                black_box(cns.dequeue().unwrap());
            });
        });
    }
    g.finish();
}

/// A6: burst-size amortisation across a full channel (the reason DPDK
/// dataplanes batch; the knee should appear well before 32).
fn bench_burst_amortisation(c: &mut Criterion) {
    let mut g = c.benchmark_group("A6-burst");
    for burst in [1usize, 8, 32, 128] {
        g.throughput(Throughput::Elements(burst as u64));
        g.bench_function(format!("channel_burst_{burst}"), |b| {
            let (mut tx, mut rx) = channel("bench", 4096);
            let frame = PacketBuilder::udp_probe(64).build();
            let mut out = Vec::with_capacity(burst);
            b.iter(|| {
                let mut batch: Vec<Mbuf> = (0..burst).map(|_| Mbuf::from_slice(&frame)).collect();
                tx.send_burst(&mut batch);
                out.clear();
                rx.recv_burst(&mut out, burst);
                black_box(out.len());
            });
        });
    }
    g.finish();
}

/// A7: the full per-packet switch crossing (rx→classify→act→tx), with and
/// without the EMC — the two numbers behind `CostModel::ovs_crossing`.
fn bench_switch_crossing(c: &mut Criterion) {
    let mut g = c.benchmark_group("A7-switch-crossing");
    g.throughput(Throughput::Elements(1));

    let build_dp = || {
        let dp = Datapath::new(false);
        let (sw1, vm1) = channel("xing1", 4096);
        let (sw2, vm2) = channel("xing2", 4096);
        dp.add_port(OvsPort::dpdkr(PortNo(1), "p1", sw1));
        dp.add_port(OvsPort::dpdkr(PortNo(2), "p2", sw2));
        dp.table_apply(&openflow::FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        ));
        (dp, vm1, vm2)
    };

    g.bench_function("with_emc", |b| {
        let (dp, mut vm1, mut vm2) = build_dp();
        let snapshot: Vec<Arc<OvsPort>> = dp.ports.read().values().cloned().collect();
        let caches = parking_lot::Mutex::new(PmdCaches::new());
        let frame = PacketBuilder::udp_probe(64).build();
        let mut staged = BTreeMap::new();
        b.iter(|| {
            vm1.send(Mbuf::from_slice(&frame)).unwrap();
            let mut rx = Vec::with_capacity(1);
            snapshot[0].rx_burst(&mut rx, 1);
            for pkt in rx {
                dp.process_packet(pkt, PortNo(1), Some(&caches), &mut staged, &snapshot, 0);
            }
            dp.flush_staged(&mut staged);
            black_box(vm2.recv());
        });
    });

    g.bench_function("classifier_only", |b| {
        let (dp, mut vm1, mut vm2) = build_dp();
        let snapshot: Vec<Arc<OvsPort>> = dp.ports.read().values().cloned().collect();
        let frame = PacketBuilder::udp_probe(64).build();
        let mut staged = BTreeMap::new();
        b.iter(|| {
            vm1.send(Mbuf::from_slice(&frame)).unwrap();
            let mut rx = Vec::with_capacity(1);
            snapshot[0].rx_burst(&mut rx, 1);
            for pkt in rx {
                dp.process_packet(pkt, PortNo(1), None, &mut staged, &snapshot, 0);
            }
            dp.flush_staged(&mut staged);
            black_box(vm2.recv());
        });
    });
    g.finish();
}

/// A8: detector worst cases — the veto scan is O(rules²) in the worst
/// case; confirm a controller-scale table stays comfortably sub-flow_mod.
fn bench_detector_worst_case(c: &mut Criterion) {
    use highway_core::detect_p2p_links;
    use ovs_dp::RuleSnapshot;

    let mut g = c.benchmark_group("A8-detector");
    // All-veto table: every rule shares in_port 1 (nothing detectable).
    for n in [64usize, 256] {
        let rules: Vec<RuleSnapshot> = (0..n as u16)
            .map(|i| {
                let mut m = FlowMatch::in_port(PortNo(1));
                m.l4_dst = Some(i);
                RuleSnapshot {
                    id: u64::from(i),
                    fmatch: m,
                    priority: 100,
                    actions: vec![Action::Output(PortNo(2))],
                    cookie: u64::from(i),
                }
            })
            .collect();
        g.bench_function(format!("all_veto_{n}_rules"), |b| {
            b.iter(|| black_box(detect_p2p_links(black_box(&rules))));
        });
    }

    // EMC thrash: alternate keys past capacity so every lookup misses.
    g.bench_function("emc_miss_then_insert", |b| {
        use ovs_dp::table::RuleEntry;
        use std::sync::atomic::AtomicU64;
        let rule = Arc::new(RuleEntry {
            id: 1,
            fmatch: FlowMatch::in_port(PortNo(1)).canonicalise(),
            priority: 100,
            actions: vec![Action::Output(PortNo(2))],
            cookie: 1,
            idle_timeout: 0,
            hard_timeout: 0,
            added_at: 0,
            last_used: AtomicU64::new(0),
            n_packets: AtomicU64::new(0),
            n_bytes: AtomicU64::new(0),
        });
        let keys: Vec<FlowKey> = (0..512u16)
            .map(|i| FlowKey::extract(&PacketBuilder::udp_probe(64).ports(i, 80).build()))
            .collect();
        let mut emc = Emc::new(64); // much smaller than the key set
        let mut i = 0usize;
        b.iter(|| {
            let key = &keys[i % keys.len()];
            i += 1;
            if emc.lookup(PortNo(1), key, 0).is_none() {
                emc.insert(PortNo(1), *key, Arc::clone(&rule), 0);
            }
        });
    });

    // Flow-table churn at scale: install into a 256-rule table.
    g.bench_function("flow_mod_into_256_rule_table", |b| {
        let mut table = FlowTable::new();
        for i in 0..256u16 {
            let mut m = FlowMatch::in_port(PortNo(i + 10));
            m.l4_dst = Some(i);
            table.apply(&openflow::FlowMod::add(
                m,
                100,
                vec![Action::Output(PortNo(2))],
            ));
        }
        b.iter(|| {
            table.apply(&openflow::FlowMod::add(
                FlowMatch::in_port(PortNo(1)),
                100,
                vec![Action::Output(PortNo(2))],
            ));
            table.apply(&openflow::FlowMod::delete_strict(
                FlowMatch::in_port(PortNo(1)),
                100,
            ));
        });
    });
    g.finish();
}

/// A9: the cache-tier ablation — classification cost of the real datapath
/// under classifier-only / EMC-only / EMC+megaflow over a Zipf-skewed flow
/// mix (see `highway_bench::cache_tiers`). The `cache_tiers` binary runs
/// the same harness in quick mode with a hard assertion; this group gives
/// the calibrated numbers.
fn bench_cache_tiers(c: &mut Criterion) {
    use highway_bench::cache_tiers::{build, run_pass, TierConfig};

    let mut g = c.benchmark_group("A9-cache-tiers");
    let world = build(4096);
    g.throughput(Throughput::Elements(world.keys.len() as u64));
    for cfg in TierConfig::ALL {
        g.bench_function(cfg.label(), |b| {
            let mut caches = cfg.caches();
            // Warm: the steady state is what the tier comparison is about.
            run_pass(&world.dp, &world.keys, &mut caches);
            b.iter(|| black_box(run_pass(&world.dp, &world.keys, &mut caches)));
        });
    }
    g.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(400)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_ring_depth, bench_burst_amortisation, bench_switch_crossing, bench_detector_worst_case, bench_cache_tiers
);
criterion_main!(ablation);
