//! Microbenchmarks of the real dataplane code (M1–M6 in DESIGN.md).
//!
//! These measure the per-operation costs the `simnet` cost model quotes in
//! cycles: compare `time/op × 3 GHz` against `simnet::CostModel` (exact
//! agreement is not expected — this host is not the testbed Xeon — but the
//! ordering and rough magnitudes must hold).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpdk_sim::{spsc_ring, Mbuf};
use openflow::messages::FlowMod;
use openflow::{codec, Action, FlowMatch, OfpMessage, PortNo};
use ovs_dp::classifier::Classifier;
use ovs_dp::emc::Emc;
use ovs_dp::table::{FlowTable, RuleEntry};
use packet_wire::{FlowKey, PacketBuilder};
use shmem_sim::{channel, StatsRegion};
use std::hint::black_box;
use std::sync::Arc;
use vnf_apps::DpdkrPmd;

/// M1: SPSC ring enqueue+dequeue, single packet and 32-burst.
fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("M1-ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("enqueue_dequeue_1", |b| {
        let (mut p, mut cns) = spsc_ring::<u64>(1024);
        b.iter(|| {
            p.enqueue(black_box(7)).unwrap();
            black_box(cns.dequeue().unwrap());
        });
    });
    g.throughput(Throughput::Elements(32));
    g.bench_function("burst_32", |b| {
        let (mut p, mut cns) = spsc_ring::<u64>(1024);
        let mut out = Vec::with_capacity(32);
        b.iter(|| {
            let mut batch: Vec<u64> = (0..32).collect();
            p.enqueue_burst(&mut batch);
            out.clear();
            cns.dequeue_burst(&mut out, 32);
            black_box(out.len());
        });
    });
    g.finish();
}

/// M2: flow-key extraction from a 64 B frame.
fn bench_flow_key(c: &mut Criterion) {
    let pkt = PacketBuilder::udp_probe(64).build();
    c.bench_function("M2-flow_key_extract", |b| {
        b.iter(|| black_box(FlowKey::extract(black_box(&pkt))));
    });
}

fn rule(id: u64, fmatch: FlowMatch, out: u16) -> Arc<RuleEntry> {
    use std::sync::atomic::AtomicU64;
    Arc::new(RuleEntry {
        id,
        fmatch: fmatch.canonicalise(),
        priority: 100,
        actions: vec![Action::Output(PortNo(out))],
        cookie: id,
        idle_timeout: 0,
        hard_timeout: 0,
        added_at: 0,
        last_used: AtomicU64::new(0),
        n_packets: AtomicU64::new(0),
        n_bytes: AtomicU64::new(0),
    })
}

/// M3: EMC hit vs classifier lookup (the two-tier datapath).
fn bench_lookup(c: &mut Criterion) {
    let pkt = PacketBuilder::udp_probe(64).build();
    let key = FlowKey::extract(&pkt);
    let mut g = c.benchmark_group("M3-lookup");

    g.bench_function("emc_hit", |b| {
        let mut emc = Emc::new(8192);
        emc.insert(PortNo(1), key, rule(1, FlowMatch::in_port(PortNo(1)), 2), 0);
        b.iter(|| black_box(emc.lookup(PortNo(1), &key, 0)));
    });

    for n_masks in [1usize, 8, 32] {
        g.bench_function(format!("classifier_{n_masks}_subtables"), |b| {
            let mut cls = Classifier::new();
            // One matching rule plus (n_masks-1) decoy subtables.
            cls.insert(&rule(1, FlowMatch::in_port(PortNo(1)), 2));
            for i in 0..n_masks.saturating_sub(1) {
                let mut m = FlowMatch::in_port(PortNo(200 + i as u16));
                m.l4_dst = Some(i as u16); // distinct mask per decoy
                if i % 2 == 0 {
                    m.eth_type = Some(0x0800);
                }
                let mut m2 = m;
                m2.l4_src = Some(i as u16);
                cls.insert(&rule(100 + i as u64, m2, 3));
            }
            b.iter(|| black_box(cls.lookup(PortNo(1), &key)));
        });
    }
    g.finish();
}

/// M4: full flow-table apply path for a flow_mod (includes classifier
/// maintenance) — what a controller burst costs the switch.
fn bench_flow_mod(c: &mut Criterion) {
    c.bench_function("M4-flow_mod_add_delete", |b| {
        let mut table = FlowTable::new();
        b.iter_batched(
            || (),
            |_| {
                table.apply(&FlowMod::add(
                    FlowMatch::in_port(PortNo(1)),
                    100,
                    vec![Action::Output(PortNo(2))],
                ));
                table.apply(&FlowMod::delete_strict(FlowMatch::in_port(PortNo(1)), 100));
            },
            BatchSize::SmallInput,
        );
    });
}

/// M5: the modified PMD's tx path — normal channel vs bypass channel with
/// shared-memory stats accounting (the paper's §2 fast path).
fn bench_pmd_mux(c: &mut Criterion) {
    let mut g = c.benchmark_group("M5-pmd-mux");
    g.throughput(Throughput::Elements(1));

    g.bench_function("tx_normal", |b| {
        let stats = StatsRegion::new();
        let (vm_end, mut sw_end) = channel("bench-n", 4096);
        let mut pmd = DpdkrPmd::new(1, vm_end, stats);
        let frame = PacketBuilder::udp_probe(64).build();
        b.iter(|| {
            let mut v = vec![Mbuf::from_slice(&frame)];
            pmd.tx_burst(&mut v);
            black_box(sw_end.recv());
        });
    });

    g.bench_function("tx_bypass_with_stats", |b| {
        let stats = StatsRegion::new();
        let (vm_end, _sw_end) = channel("bench-b", 4096);
        let mut pmd = DpdkrPmd::new(1, vm_end, stats);
        let (here, mut peer) = channel("bench-bypass", 4096);
        pmd.map_bypass(here);
        pmd.enable_tx(0xc0de, 2);
        let frame = PacketBuilder::udp_probe(64).build();
        b.iter(|| {
            let mut v = vec![Mbuf::from_slice(&frame)];
            pmd.tx_burst(&mut v);
            black_box(peer.recv());
        });
    });
    g.finish();
}

/// M6: the p-2-p detector over realistic table sizes, and the OF 1.0 codec.
fn bench_detector_and_codec(c: &mut Criterion) {
    use highway_core::detect_p2p_links;
    use ovs_dp::RuleSnapshot;

    let mut g = c.benchmark_group("M6-control");
    for n_rules in [8usize, 64, 256] {
        let rules: Vec<RuleSnapshot> = (0..n_rules as u16)
            .map(|i| RuleSnapshot {
                id: u64::from(i),
                fmatch: FlowMatch::in_port(PortNo(i + 1)),
                priority: 100,
                actions: vec![Action::Output(PortNo(i + 2))],
                cookie: u64::from(i),
            })
            .collect();
        g.bench_function(format!("detector_{n_rules}_rules"), |b| {
            b.iter(|| black_box(detect_p2p_links(black_box(&rules))));
        });
    }

    let fm = OfpMessage::FlowMod(
        FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        )
        .with_cookie(7),
    );
    g.bench_function("codec_flow_mod_roundtrip", |b| {
        b.iter(|| {
            let bytes = codec::encode(black_box(&fm), 1);
            black_box(codec::decode(&bytes).unwrap());
        });
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(400)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_ring, bench_flow_key, bench_lookup, bench_flow_mod, bench_pmd_mux, bench_detector_and_codec
);
criterion_main!(micro);
