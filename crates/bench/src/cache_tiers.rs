//! The cache-tier ablation harness (A9): measures the real datapath's
//! classification cost under the three cache configurations —
//! classifier-only, EMC-only, and EMC+megaflow — over a Zipf-skewed flow
//! mix, the traffic shape real service edges see (a few elephant flows, a
//! long mouse tail that thrashes any exact-match cache).
//!
//! Shared between the Criterion bench (`benches/ablation_bench.rs`, group
//! `A9-cache-tiers`) and the asserting `cache_tiers` binary CI runs in
//! quick mode: the binary fails loudly if EMC+megaflow is not strictly
//! cheaper than classifier-only, pinning the acceptance criterion of the
//! megaflow tier as a perf regression guard.

use openflow::{Action, FlowMatch, FlowMod, PortNo};
use ovs_dp::pmd::{Datapath, PmdCaches};
use packet_wire::{FlowKey, PacketBuilder};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Distinct flows in the mix (far beyond the ablation's EMC capacity).
pub const FLOWS: usize = 4096;
/// Decoy subtables the classifier must walk past on every cold lookup.
pub const DECOY_MASKS: usize = 16;
/// EMC capacity for the cached configurations: small enough that the Zipf
/// tail thrashes it, so the tier *behind* the EMC decides the cost.
pub const ABLATION_EMC_ENTRIES: usize = 512;

/// The three datapath cache configurations under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierConfig {
    /// No caches: every packet walks the tuple-space classifier.
    ClassifierOnly,
    /// EMC in front, megaflow disabled: EMC misses pay the classifier.
    EmcOnly,
    /// The full hierarchy: EMC misses fall to one wildcard probe.
    EmcMegaflow,
}

impl TierConfig {
    /// All configurations. No cost ordering is implied by the array
    /// order — which configuration is cheapest under a skewed flow mix
    /// is exactly what the bench measures.
    pub const ALL: [TierConfig; 3] = [
        TierConfig::ClassifierOnly,
        TierConfig::EmcOnly,
        TierConfig::EmcMegaflow,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TierConfig::ClassifierOnly => "classifier_only",
            TierConfig::EmcOnly => "emc_only",
            TierConfig::EmcMegaflow => "emc_megaflow",
        }
    }

    /// The caches this configuration runs with.
    pub fn caches(&self) -> Option<PmdCaches> {
        match self {
            TierConfig::ClassifierOnly => None,
            TierConfig::EmcOnly => Some(PmdCaches::with_capacity(ABLATION_EMC_ENTRIES, 0)),
            TierConfig::EmcMegaflow => Some(PmdCaches::with_capacity(
                ABLATION_EMC_ENTRIES,
                ovs_dp::megaflow::DEFAULT_MEGAFLOW_ENTRIES,
            )),
        }
    }
}

/// A datapath + traffic sample ready for tier measurements.
pub struct CacheTierAblation {
    pub dp: Arc<Datapath>,
    /// Zipf-skewed sample of flow keys, all arriving on port 1.
    pub keys: Vec<FlowKey>,
}

/// Builds the ablation world: one matching rule on port 1 plus
/// `DECOY_MASKS` higher-priority rules on ports traffic never uses, each
/// with a distinct wildcard mask. The decoys force a cold classifier walk
/// to probe every subtable before finding the real rule — the miss cost
/// the paper's delay models attribute to the slow path.
pub fn build(samples: usize) -> CacheTierAblation {
    let dp = Datapath::new(false);
    {
        dp.table_apply(&FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        ));
        for i in 1..=DECOY_MASKS {
            // Vary the *shape* of the match (which fields are pinned), not
            // just the values: each nonzero i yields a distinct mask ⇒
            // subtable (i = 0 would repeat the real rule's in_port-only
            // mask, which is why the range starts at 1).
            let mut m = FlowMatch::in_port(PortNo(200 + i as u16));
            if i & 1 != 0 {
                m.l4_dst = Some(i as u16);
            }
            if i & 2 != 0 {
                m.l4_src = Some(i as u16);
            }
            if i & 4 != 0 {
                m.eth_type = Some(0x0800);
            }
            if i & 8 != 0 {
                m.ipv4_dst = Some((Ipv4Addr::new(10, 0, 0, 0), 8 + i as u8));
            }
            if i & 16 != 0 {
                m.ip_proto = Some(17);
            }
            dp.table_apply(&FlowMod::add(m, 300, vec![Action::Output(PortNo(3))]));
        }
    }
    CacheTierAblation {
        dp,
        keys: zipf_keys(samples),
    }
}

/// Deterministic Zipf(s≈1.1) sample of `samples` keys over [`FLOWS`]
/// distinct UDP flows (xorshift64*, fixed seed — identical traffic for
/// every configuration and every run).
pub fn zipf_keys(samples: usize) -> Vec<FlowKey> {
    zipf_keys_over(FLOWS, samples)
}

/// [`zipf_keys`] generalised over the flow-population size, for benches
/// that sweep the flow dimension (e.g. the highway showdown). Flow `f`'s
/// identity is its UDP port pair `(f >> 16, f & 0xffff)`, which stays
/// unique up to 2^32 flows.
pub fn zipf_keys_over(flows: usize, samples: usize) -> Vec<FlowKey> {
    // Per-flow keys, extracted once.
    let flow_keys: Vec<FlowKey> = (0..flows)
        .map(|f| {
            FlowKey::extract(
                &PacketBuilder::udp_probe(64)
                    .ports((f >> 16) as u16, (f & 0xffff) as u16)
                    .build(),
            )
        })
        .collect();
    // Zipf CDF over ranks 1..=flows.
    let mut cdf = Vec::with_capacity(flows);
    let mut total = 0.0f64;
    for rank in 1..=flows {
        total += 1.0 / (rank as f64).powf(1.1);
        cdf.push(total);
    }
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..samples)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
                * total;
            let rank = cdf.partition_point(|&c| c < u).min(flows - 1);
            flow_keys[rank]
        })
        .collect()
}

/// Per-tier resolution counts of one pass (see [`run_pass`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounts {
    pub emc: usize,
    pub megaflow: usize,
    pub classifier: usize,
    pub miss: usize,
}

impl TierCounts {
    /// Lookups that resolved to a rule, in any tier.
    pub fn matched(&self) -> usize {
        self.emc + self.megaflow + self.classifier
    }
}

/// One pass of the sample through the classification hierarchy, counting
/// which tier resolved each lookup (callers assert `matched()` equals the
/// sample size: every flow must resolve, whichever tier serves it).
pub fn run_pass(dp: &Datapath, keys: &[FlowKey], caches: &mut Option<PmdCaches>) -> TierCounts {
    use ovs_dp::pmd::CacheTier;
    let mut counts = TierCounts::default();
    for key in keys {
        let (rule, tier) = dp.classify(PortNo(1), key, caches.as_mut(), 1, 64);
        match (rule.is_some(), tier) {
            (false, _) => counts.miss += 1,
            (true, CacheTier::Emc) => counts.emc += 1,
            (true, CacheTier::Megaflow) => counts.megaflow += 1,
            (true, CacheTier::Classifier) => counts.classifier += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_dp::pmd::CacheTier;

    #[test]
    fn every_configuration_resolves_every_sample() {
        let world = build(2048);
        for cfg in TierConfig::ALL {
            let mut caches = cfg.caches();
            let counts = run_pass(&world.dp, &world.keys, &mut caches);
            assert_eq!(counts.miss, 0, "{} dropped lookups", cfg.label());
            assert_eq!(counts.matched(), world.keys.len());
        }
    }

    #[test]
    fn zipf_sample_is_skewed_and_deterministic() {
        let a = zipf_keys(4096);
        let b = zipf_keys(4096);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y), "non-deterministic");
        // The mode must dominate: it should appear far more often than the
        // uniform share (4096 samples / 4096 flows = 1).
        let mut counts = std::collections::HashMap::new();
        for k in &a {
            *counts.entry((k.l4_src, k.l4_dst)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 100, "heaviest flow only {max} of 4096 samples");
        assert!(counts.len() > 32, "sample covers a tail of flows");
    }

    #[test]
    fn megaflow_configuration_absorbs_emc_thrash() {
        let world = build(4096);
        let mut caches = TierConfig::EmcMegaflow.caches();
        // Warm pass, then the measured shape: after warming, the Zipf tail
        // exceeds the EMC but the megaflow must catch the overflow instead
        // of the classifier.
        run_pass(&world.dp, &world.keys, &mut caches);
        let counts = run_pass(&world.dp, &world.keys, &mut caches);
        assert_eq!(counts.miss, 0);
        assert_eq!(counts.classifier, 0, "warm megaflow: no classifier walks");
        assert!(counts.megaflow > 0, "EMC absorbed everything: no thrash?");
        // The very first cold lookup is a classifier walk.
        let mut one = TierConfig::EmcMegaflow.caches();
        let (rule, tier) = world
            .dp
            .classify(PortNo(1), &world.keys[0], one.as_mut(), 1, 64);
        assert!(rule.is_some());
        assert_eq!(tier, CacheTier::Classifier);
    }
}
