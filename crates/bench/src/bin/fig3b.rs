//! Figure 3(b): throughput of chains fed/drained through two 10 G NICs
//! (lengths 1–8), bidirectional 64 B traffic.
//!
//! Paper shape: both curves coincide at N=1 (nothing to bypass); the
//! highway stays flat (only the NIC seams cross the switch) while vanilla
//! falls as 1/(N+1), landing in the 4–6 Mpps band at N=8.

use highway_bench::format_rows;
use simnet::{fig3b, CostModel};

fn main() {
    let rows = fig3b(&CostModel::paper_testbed());
    println!(
        "{}",
        format_rows(
            "Figure 3(b) — NIC-edged chains, bidirectional 64 B [model]",
            "# VMs",
            &rows
        )
    );
    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    println!(
        "shape check: equal at N=1 ({:.2} vs {:.2}); highway flat ({:.2}→{:.2}); traditional ends at {:.2} Mpps\n",
        first.traditional, first.highway, first.highway, last.highway, last.traditional
    );
}
