//! Control-channel microbench: flow-mod setup rate over the framed
//! OpenFlow byte stream, unbatched vs batched, plus echo round-trip time.
//!
//! The switch end is a minimal poll loop over a real [`SwitchLink`] —
//! every message crosses the framer and codec both ways, so the numbers
//! price the actual wire path (header marshal, 40-byte match, action
//! TLVs), not a crossbeam channel.
//!
//! A fan-out sweep drives the same wire path through [`FabricRuntime`]:
//! one controller, N switches, aggregate batched setup rate — the cost
//! of multiplexing the fabric instead of a single session.
//!
//! Emits `BENCH_control_channel.json` for CI trend tracking; `--quick`
//! bounds the message count. Exits non-zero if batching is not at least
//! as fast as one-write-per-mod — the batching path exists to be cheaper,
//! and a regression should fail loudly.

use openflow::messages::{FlowMod, OfpMessage};
use openflow::{
    framed_link, Action, Connection, FabricApp, FabricRuntime, FlowMatch, PortNo, SwitchFeatures,
    SwitchLink,
};
use std::time::{Duration, Instant};

const BATCH: usize = 64;

/// The switch side: answer the handshake, echo requests and barriers;
/// count flow mods. Returns when the controller hangs up.
fn switch_loop(sw: SwitchLink, dpid: u64) -> u64 {
    let mut flow_mods = 0u64;
    loop {
        match sw.try_recv() {
            Some(Ok((msg, xid))) => {
                let reply = match msg {
                    OfpMessage::Hello => Some(OfpMessage::Hello),
                    OfpMessage::FeaturesRequest => Some(OfpMessage::FeaturesReply {
                        datapath_id: dpid,
                        ports: vec![1, 2],
                    }),
                    OfpMessage::EchoRequest(d) => Some(OfpMessage::EchoReply(d)),
                    OfpMessage::BarrierRequest => Some(OfpMessage::BarrierReply),
                    OfpMessage::FlowMod(_) => {
                        flow_mods += 1;
                        None
                    }
                    _ => None,
                };
                if let Some(r) = reply {
                    if sw.send(&r, xid).is_err() {
                        return flow_mods;
                    }
                }
            }
            Some(Err(_)) => return flow_mods,
            None => std::thread::yield_now(),
        }
    }
}

fn mods(n: usize) -> Vec<FlowMod> {
    (0..n)
        .map(|i| {
            FlowMod::add(
                FlowMatch::in_port(PortNo((i % 1000) as u16 + 1)),
                100,
                vec![Action::Output(PortNo((i % 48) as u16 + 1))],
            )
            .with_cookie(i as u64)
        })
        .collect()
}

/// Installs `n` flow mods and fences with a barrier; returns mods/s.
fn setup_rate(ctrl: &Connection, n: usize, batched: bool) -> f64 {
    let work = mods(n);
    let start = Instant::now();
    if batched {
        for chunk in work.chunks(BATCH) {
            ctrl.send_flow_mods(chunk).expect("batched send");
        }
    } else {
        for m in &work {
            ctrl.send(&OfpMessage::FlowMod(m.clone())).expect("send");
        }
    }
    ctrl.barrier(Duration::from_secs(30)).expect("barrier");
    n as f64 / start.elapsed().as_secs_f64()
}

/// One fabric runtime driving `n_switches` sessions: installs
/// `total_mods` spread evenly, batched, with one barrier fence per
/// switch; returns the aggregate mods/s across the fabric.
fn fanout_rate(n_switches: usize, total_mods: usize) -> f64 {
    struct NullApp;
    impl FabricApp for NullApp {
        fn on_switch_ready(&mut self, _d: u64, _c: &Connection, _f: &SwitchFeatures) {}
        fn on_switch_message(&mut self, _d: u64, _c: &Connection, _m: OfpMessage, _x: u32) {}
    }

    let mut rt = FabricRuntime::new(NullApp);
    let mut switches = Vec::with_capacity(n_switches);
    for s in 0..n_switches {
        let (ctrl, sw) = framed_link();
        let dpid = 0x100 + s as u64;
        switches.push(std::thread::spawn(move || switch_loop(sw, dpid)));
        rt.add_switch(ctrl);
    }
    rt.run_until_ready(Duration::from_secs(5))
        .expect("fabric ready");

    let per_switch = total_mods / n_switches;
    let work = mods(per_switch);
    let start = Instant::now();
    for dpid in rt.dpids() {
        let conn = rt.connection(dpid).expect("announced switch");
        for chunk in work.chunks(BATCH) {
            conn.send_flow_mods(chunk).expect("batched send");
        }
    }
    for dpid in rt.dpids() {
        rt.connection(dpid)
            .expect("announced switch")
            .barrier(Duration::from_secs(30))
            .expect("fan-out barrier");
    }
    let rate = (per_switch * n_switches) as f64 / start.elapsed().as_secs_f64();

    drop(rt); // hang up; the switch threads return their tallies
    for (s, t) in switches.into_iter().enumerate() {
        let seen = t.join().expect("switch thread");
        assert!(
            seen >= per_switch as u64,
            "switch {s} saw {seen} flow mods, expected {per_switch}"
        );
    }
    rate
}

fn echo_rtt_us(ctrl: &Connection, probes: usize) -> f64 {
    let mut us: Vec<f64> = (0..probes)
        .map(|i| {
            let payload = vec![i as u8; 8];
            let start = Instant::now();
            let reply = ctrl
                .request_reply(
                    &OfpMessage::EchoRequest(payload.clone()),
                    Duration::from_secs(5),
                )
                .expect("echo");
            assert_eq!(reply, OfpMessage::EchoReply(payload));
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    us.sort_by(|a, b| a.total_cmp(b));
    us[us.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, probes) = if quick { (5_000, 200) } else { (50_000, 2_000) };

    let (ctrl, sw) = framed_link();
    let switch = std::thread::spawn(move || switch_loop(sw, 0xbe));
    ctrl.handshake(Duration::from_secs(5)).expect("handshake");

    // Interleave a warmup of each shape before timing either.
    setup_rate(&ctrl, n / 10, false);
    setup_rate(&ctrl, n / 10, true);

    let unbatched = setup_rate(&ctrl, n, false);
    let batched = setup_rate(&ctrl, n, true);
    let rtt_us = echo_rtt_us(&ctrl, probes);

    // Fan-out sweep: the same batched wire path, multiplexed over N
    // switch sessions by one FabricRuntime.
    let fanout: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&s| (s, fanout_rate(s, n)))
        .collect();

    drop(ctrl);
    let seen = switch.join().expect("switch thread");
    assert!(
        seen >= (2 * n + 2 * n / 10) as u64,
        "switch saw {seen} flow mods, expected at least {}",
        2 * n + 2 * n / 10
    );

    println!(
        "## Control channel — flow-mod setup rate over the framed wire [measured{}]\n",
        if quick { ", quick" } else { "" }
    );
    println!("| path | mods/s |");
    println!("|---|---|");
    println!("| one write per flow_mod | {unbatched:.0} |");
    println!("| batched ({BATCH}/write) | {batched:.0} |");
    println!("\nbatching speedup: {:.2}x", batched / unbatched);
    println!("echo RTT p50: {rtt_us:.1} us");

    println!("\n## Fan-out — aggregate batched setup rate, one controller, N switches\n");
    println!("| switches | aggregate mods/s |");
    println!("|---|---|");
    for (s, rate) in &fanout {
        println!("| {s} | {rate:.0} |");
    }

    let fanout_json = fanout
        .iter()
        .map(|(s, rate)| format!("    {{ \"switches\": {s}, \"mods_per_sec\": {rate:.0} }}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"control_channel\",\n  \"quick\": {quick},\n  \
         \"messages\": {n},\n  \"batch_size\": {BATCH},\n  \
         \"unbatched_mods_per_sec\": {unbatched:.0},\n  \
         \"batched_mods_per_sec\": {batched:.0},\n  \
         \"echo_rtt_us_p50\": {rtt_us:.2},\n  \
         \"fanout\": [\n{fanout_json}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_control_channel.json", json).expect("write BENCH_control_channel.json");
    println!("\nwrote BENCH_control_channel.json");

    // Acceptance: batching a write must not be slower than not batching.
    // (Generous margin: the two paths share the codec cost; the gap is
    // per-write locking and wakeups.)
    assert!(
        batched >= 0.9 * unbatched,
        "flow-mod batching regression: batched {batched:.0}/s vs unbatched {unbatched:.0}/s"
    );
    println!("control-channel bench OK");
}
