//! Runs every experiment of the paper's evaluation in one go and prints
//! EXPERIMENTS.md-ready output: Figure 3(a), Figure 3(b), the latency
//! table, the measured setup-time distribution, and the discrete-event
//! cross-check of the analytic model.

use highway_bench::{format_rows, setup_world, summarize_ms};
use openflow::{Action, FlowMatch, PortNo};
use simnet::{fig3a, fig3b, latency_vs_chain, ChainSim, ChainSpec, CostModel, Mode};
use std::time::Duration;

fn main() {
    let cost = CostModel::paper_testbed();

    println!(
        "{}",
        format_rows(
            "E1 / Figure 3(a) — memory-only chains, bidirectional 64 B [model]",
            "# VMs",
            &fig3a(&cost)
        )
    );
    println!(
        "{}",
        format_rows(
            "E2 / Figure 3(b) — NIC-edged chains, bidirectional 64 B [model]",
            "# VMs",
            &fig3b(&cost)
        )
    );
    println!(
        "{}",
        format_rows(
            "E3 / Latency — one-way latency at 90% vanilla load [model]",
            "# VMs",
            &latency_vs_chain(&cost)
        )
    );

    // E4: measured on the real control plane (fewer trials here; run the
    // dedicated `setup_time` binary for a larger sample).
    let trials = 8;
    let (node, (src, dst)) = setup_world();
    let ctrl = node.connect_controller();
    let mut samples_ms = Vec::new();
    for trial in 0..trials {
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(src as u16)),
            100,
            vec![Action::Output(PortNo(dst as u16))],
            0xfeed + trial as u64,
        )
        .expect("flow_mod");
        // Barrier: the detection happened before we wait on reconciliation.
        ctrl.barrier(Duration::from_secs(5)).expect("barrier");
        assert!(node.wait_highway_converged(Duration::from_secs(10)));
        samples_ms.push(
            node.setup_log()
                .last()
                .expect("setup recorded")
                .setup_time()
                .as_secs_f64()
                * 1e3,
        );
        ctrl.del_flow_strict(FlowMatch::in_port(PortNo(src as u16)), 100)
            .expect("delete");
        ctrl.barrier(Duration::from_secs(5)).expect("barrier");
        assert!(node.wait_highway_converged(Duration::from_secs(10)));
    }
    node.stop();

    println!("## E4 / Setup time — detection → bypass active [measured]\n");
    println!("{}", summarize_ms(&samples_ms));
    println!("(paper: \"on the order of 100 ms\")\n");

    // DES cross-check: the packet-level simulator re-derives the figures'
    // saturation throughputs independently of the closed-form solver.
    println!("## Cross-check — discrete-event simulation vs analytic solver\n");
    println!("| config | analytic [Mpps] | DES [Mpps] | error |");
    println!("|---|---|---|---|");
    let mem_cost = cost.with_pmd_cores(1.0);
    let nic_cost = cost.with_pmd_cores(3.0);
    let configs: Vec<(&str, ChainSpec, &CostModel)> = vec![
        (
            "3a N=2 vanilla",
            ChainSpec::memory(2, Mode::Vanilla),
            &mem_cost,
        ),
        (
            "3a N=8 vanilla",
            ChainSpec::memory(8, Mode::Vanilla),
            &mem_cost,
        ),
        (
            "3a N=8 highway",
            ChainSpec::memory(8, Mode::Highway),
            &mem_cost,
        ),
        ("3b N=1 either", ChainSpec::nic(1, Mode::Vanilla), &nic_cost),
        (
            "3b N=8 vanilla",
            ChainSpec::nic(8, Mode::Vanilla),
            &nic_cost,
        ),
        (
            "3b N=8 highway",
            ChainSpec::nic(8, Mode::Highway),
            &nic_cost,
        ),
    ];
    for (name, spec, c) in configs {
        let analytic = simnet::solve(&spec, c).aggregate_mpps;
        let des = ChainSim::new(&spec, c).saturate(20_000).aggregate_mpps;
        println!(
            "| {name} | {analytic:.2} | {des:.2} | {:+.1}% |",
            (des - analytic) / analytic * 100.0
        );
    }
    println!();
}
