//! Figure 3(a): throughput of memory-only VM chains (lengths 2–8),
//! bidirectional 64 B traffic; first and last VM act as source/sink.
//!
//! Paper shape: log-scale axis; the highway sits close to flat while
//! vanilla OvS-DPDK falls as 1/(N-1) with the chain length.

use highway_bench::format_rows;
use simnet::{fig3a, CostModel};

fn main() {
    let rows = fig3a(&CostModel::paper_testbed());
    println!(
        "{}",
        format_rows(
            "Figure 3(a) — memory-only chains, bidirectional 64 B [model]",
            "# VMs",
            &rows
        )
    );
    let last = rows.last().expect("rows");
    println!(
        "shape check: traditional falls {:.1}x from N=2 to N=8; highway leads {:.1}x at N=8\n",
        rows[0].traditional / last.traditional,
        last.speedup()
    );
}
