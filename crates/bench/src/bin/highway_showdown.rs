//! Highway-vs-OVS showdown: the calibrated cost comparison the zero-copy
//! arena exists to win.
//!
//! Sweeps service-chain length × flow-population size over three per-hop
//! transports carrying the same Zipf(s≈1.1) traffic mix as the cache-tier
//! ablation:
//!
//! * **highway** — arena-allocated packets relayed hop to hop as offset
//!   descriptors over SPSC rings (the bypass path: no switch, no copy);
//! * **emc_megaflow** — every hop crosses the vSwitch's warm EMC+megaflow
//!   hierarchy plus a boxed-mbuf ring crossing;
//! * **classifier_only** — every hop pays the full tuple-space walk.
//!
//! Every path pays the same envelope — one source allocation, `chain`
//! ring hops, one sink free — so the per-hop *slope* isolates what a hop
//! costs. Emits `BENCH_highway_showdown.json` with a calibration block in
//! cycles at the testbed's nominal 3 GHz (the quoting base of
//! `simnet::CostModel`). CI fails the build if the highway hop is not
//! cheaper than the vSwitch hop at chain ≥ 2; set
//! `HIGHWAY_SHOWDOWN_NO_GATE=1` to (loudly) skip the gate. A sanity floor
//! — finite, positive costs and a zero-copy census on the arena — is
//! enforced unconditionally.

use highway_bench::cache_tiers::{self, TierConfig};
use openflow::PortNo;
use packet_wire::{FlowKey, PacketBuilder};
use shmem_sim::{channel, ChannelEnd};
use std::time::Instant;

/// Cycles per nanosecond at the testbed's nominal 3 GHz — the base every
/// `simnet::CostModel` figure is quoted against.
const CYCLES_PER_NS: f64 = 3.0;
/// Burst size of the measured loops (DPDK's customary rx burst).
const BURST: usize = 32;

/// One measured configuration.
#[derive(Clone, Copy)]
struct Scenario {
    chain: usize,
    flows: usize,
}

/// Per-scenario nanoseconds/packet for the three transports.
struct Row {
    scenario: Scenario,
    highway_ns: f64,
    emc_megaflow_ns: f64,
    classifier_ns: f64,
}

fn chain_links(chain: usize, tag: &str) -> Vec<(ChannelEnd, ChannelEnd)> {
    (0..chain)
        .map(|i| channel(format!("showdown-{tag}-hop{i}"), 1024))
        .collect()
}

/// Highway pass: alloc from the arena, relay the burst across `chain`
/// descriptor rings, free at the sink (credit return). Returns ns/packet.
fn highway_pass(arena: &dpdk_sim::Arena, frame: &[u8], samples: usize, chain: usize) -> f64 {
    let mut links = chain_links(chain, "hw");
    let start = Instant::now();
    let mut done = 0usize;
    while done < samples {
        let burst = BURST.min(samples - done);
        let mut pkts: Vec<dpdk_sim::Mbuf> = (0..burst)
            .map(|_| {
                dpdk_sim::Mbuf::from_arena(
                    arena.alloc_from(frame).expect("arena sized for the burst"),
                )
            })
            .collect();
        for (tx, rx) in links.iter_mut() {
            let sent = tx.send_burst(&mut pkts);
            assert_eq!(sent, burst, "ring sized for the burst");
            let mut next = Vec::with_capacity(burst);
            let got = rx.recv_burst(&mut next, burst);
            assert_eq!(got, burst, "SPSC ring delivers the whole burst");
            pkts = next;
        }
        drop(pkts); // sink: consumer frees travel the credit ring
        done += burst;
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

/// vSwitch pass: every hop classifies against the (pre-warmed) cache
/// configuration, then crosses a boxed-mbuf ring. Returns ns/packet.
fn vswitch_pass(
    dp: &ovs_dp::pmd::Datapath,
    keys: &[FlowKey],
    frame: &[u8],
    chain: usize,
    cfg: TierConfig,
) -> f64 {
    let mut caches = cfg.caches();
    // Warm pass: populate EMC/megaflow so the measurement prices the
    // steady state, exactly like the cache-tier ablation.
    cache_tiers::run_pass(dp, keys, &mut caches);
    let mut links = chain_links(chain, cfg.label());
    let samples = keys.len();
    let start = Instant::now();
    let mut done = 0usize;
    while done < samples {
        let burst = BURST.min(samples - done);
        let burst_keys = &keys[done..done + burst];
        let mut pkts: Vec<dpdk_sim::Mbuf> = (0..burst)
            .map(|_| dpdk_sim::Mbuf::from_slice(frame))
            .collect();
        for (tx, rx) in links.iter_mut() {
            for key in burst_keys {
                let (rule, _tier) = dp.classify(PortNo(1), key, caches.as_mut(), 1, 64);
                assert!(rule.is_some(), "every showdown flow must resolve");
            }
            let sent = tx.send_burst(&mut pkts);
            assert_eq!(sent, burst);
            let mut next = Vec::with_capacity(burst);
            rx.recv_burst(&mut next, burst);
            pkts = next;
        }
        drop(pkts);
        done += burst;
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

/// Least-squares per-hop slope of cost(chain) over the measured chain
/// lengths (with two points this is the plain difference quotient).
fn per_hop_slope(points: &[(usize, f64)]) -> f64 {
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(c, _)| *c as f64).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, v)| *v).sum::<f64>() / n;
    let num: f64 = points
        .iter()
        .map(|(c, v)| (*c as f64 - mean_x) * (v - mean_y))
        .sum();
    let den: f64 = points
        .iter()
        .map(|(c, _)| (*c as f64 - mean_x).powi(2))
        .sum();
    num / den
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let no_gate = std::env::var("HIGHWAY_SHOWDOWN_NO_GATE").is_ok();
    let chains: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let flow_counts: &[usize] = if quick {
        &[4_096, 65_536]
    } else {
        &[4_096, 65_536, 1_048_576]
    };
    let samples = if quick { 16_384 } else { 65_536 };
    let frame = PacketBuilder::udp_probe(64).ports(7, 7).build();

    // One arena for the whole run, so the census at the end covers every
    // highway packet the bench ever allocated.
    let arena = dpdk_sim::Arena::new("showdown-arena", 4_096, 2_048);
    // One ablation world per flow count (rule + decoy subtables), reused
    // across chain lengths so cache warmth is comparable.
    let worlds: Vec<(usize, std::sync::Arc<ovs_dp::pmd::Datapath>, Vec<FlowKey>)> = flow_counts
        .iter()
        .map(|&flows| {
            let world = cache_tiers::build(0);
            let keys = cache_tiers::zipf_keys_over(flows, samples);
            (flows, world.dp, keys)
        })
        .collect();

    // Warmup (allocators, lazy statics).
    highway_pass(&arena, &frame, samples / 8, 1);

    let mut rows: Vec<Row> = Vec::new();
    for &chain in chains {
        for (flows, dp, keys) in &worlds {
            let scenario = Scenario {
                chain,
                flows: *flows,
            };
            let highway_ns = highway_pass(&arena, &frame, samples, chain);
            let emc_megaflow_ns = vswitch_pass(dp, keys, &frame, chain, TierConfig::EmcMegaflow);
            let classifier_ns = vswitch_pass(dp, keys, &frame, chain, TierConfig::ClassifierOnly);
            println!(
                "chain={chain} flows={flows:>7}: highway {highway_ns:7.1} ns/pkt | \
                 emc+megaflow {emc_megaflow_ns:7.1} | classifier {classifier_ns:7.1}"
            );
            rows.push(Row {
                scenario,
                highway_ns,
                emc_megaflow_ns,
                classifier_ns,
            });
        }
    }

    // Zero-copy census: the only slab writes across every highway pass are
    // the one payload copy each allocation makes at ingress.
    let stats = arena.stats();
    assert_eq!(
        stats.slab_writes, stats.allocs,
        "highway hops wrote packet bytes: the zero-copy property is broken"
    );
    assert!(arena.census_clean(), "arena leaked slots: {stats:?}");

    // Per-hop slopes, averaged over the flow dimension.
    let slope_over = |extract: &dyn Fn(&Row) -> f64| -> f64 {
        let per_flow: Vec<f64> = flow_counts
            .iter()
            .map(|&flows| {
                let pts: Vec<(usize, f64)> = rows
                    .iter()
                    .filter(|r| r.scenario.flows == flows)
                    .map(|r| (r.scenario.chain, extract(r)))
                    .collect();
                per_hop_slope(&pts)
            })
            .collect();
        per_flow.iter().sum::<f64>() / per_flow.len() as f64
    };
    let hw_hop = slope_over(&|r: &Row| r.highway_ns);
    let sw_hop = slope_over(&|r: &Row| r.emc_megaflow_ns);
    let cls_hop = slope_over(&|r: &Row| r.classifier_ns);
    println!(
        "\nper-hop slope: highway {hw_hop:.1} ns | emc+megaflow {sw_hop:.1} ns | \
         classifier {cls_hop:.1} ns"
    );

    // Calibration block: measured ns → cycles at the CostModel's quoting
    // base. The ring hop splits evenly into enqueue+dequeue; the switch
    // tiers are quoted as extra cycles over the bare ring crossing.
    let ring_hop_cycles = hw_hop * CYCLES_PER_NS;
    let switch_extra_cycles = (sw_hop - hw_hop).max(0.0) * CYCLES_PER_NS;
    let classifier_extra_cycles = (cls_hop - sw_hop).max(0.0) * CYCLES_PER_NS;
    println!(
        "calibration @3GHz: ring hop {ring_hop_cycles:.0} cy | warm-switch extra \
         {switch_extra_cycles:.0} cy | classifier extra {classifier_extra_cycles:.0} cy"
    );

    let rows_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"chain\": {}, \"flows\": {}, \"highway_ns\": {:.1}, \
                 \"emc_megaflow_ns\": {:.1}, \"classifier_only_ns\": {:.1} }}",
                r.scenario.chain,
                r.scenario.flows,
                r.highway_ns,
                r.emc_megaflow_ns,
                r.classifier_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let gate = !no_gate;
    let json = format!(
        "{{\n  \"bench\": \"highway_showdown\",\n  \"quick\": {quick},\n  \
         \"samples\": {samples},\n  \"scenarios\": [\n{rows_json}\n  ],\n  \
         \"per_hop_ns\": {{ \"highway\": {hw_hop:.1}, \"emc_megaflow\": {sw_hop:.1}, \
         \"classifier_only\": {cls_hop:.1} }},\n  \"calibration\": {{ \
         \"cycles_per_ns\": {CYCLES_PER_NS}, \"ring_hop_cycles\": {ring_hop_cycles:.0}, \
         \"switch_extra_cycles\": {switch_extra_cycles:.0}, \
         \"classifier_extra_cycles\": {classifier_extra_cycles:.0} }},\n  \
         \"arena\": {{ \"allocs\": {}, \"slab_writes\": {}, \"high_water\": {} }},\n  \
         \"asserted\": {gate}\n}}\n",
        stats.allocs, stats.slab_writes, stats.high_water,
    );
    std::fs::write("BENCH_highway_showdown.json", json).expect("write BENCH_highway_showdown.json");
    println!("wrote BENCH_highway_showdown.json");

    // Sanity floor, gate or not: costs must be finite and positive.
    for r in &rows {
        assert!(
            r.highway_ns > 0.0 && r.emc_megaflow_ns > 0.0 && r.classifier_ns > 0.0,
            "degenerate measurement at chain={} flows={}",
            r.scenario.chain,
            r.scenario.flows
        );
    }

    if gate {
        assert!(
            hw_hop < sw_hop,
            "highway regression: a highway hop ({hw_hop:.1} ns) is not cheaper than a \
             warm vSwitch hop ({sw_hop:.1} ns)"
        );
    } else {
        println!(
            "SKIPPED highway-vs-vswitch gate (HIGHWAY_SHOWDOWN_NO_GATE): \
             highway {hw_hop:.1} ns vs vswitch {sw_hop:.1} ns per hop"
        );
    }
    println!("highway-showdown bench OK");
}
