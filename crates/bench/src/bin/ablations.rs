//! Ablation sweeps around the published figures: what happens to the
//! highway's advantage when the workload, the cache, the application or
//! the switch's core budget moves away from the paper's sweet spot.
//!
//! These answer the obvious reviewer questions the 2-page paper had no
//! room for; DESIGN.md §5 lists them as A1–A4.

use highway_bench::format_sweep;
use simnet::{
    cores_for_parity, crossover_point, emc_sweep, frame_size_sweep, megaflow_sweep,
    pmd_core_scaling, vnf_cost_crossover, CostModel,
};

fn main() {
    let cost = CostModel::paper_testbed();
    const N: usize = 4;

    let rows = frame_size_sweep(N, &cost);
    println!(
        "{}",
        format_sweep(
            &format!("A1 — frame-size sweep, NIC-edged chain of {N} [model]"),
            "frame B",
            &rows
        )
    );
    println!(
        "shape check: 64 B speedup {:.2}x; 1518 B speedup {:.2}x (wire-bound)\n",
        rows[0].speedup(),
        rows.last().unwrap().speedup()
    );

    let rows = emc_sweep(N, &cost);
    println!(
        "{}",
        format_sweep(
            &format!("A2 — EMC hit-rate sweep, memory-only chain of {N} [model]"),
            "EMC hit rate",
            &rows
        )
    );
    println!(
        "shape check: gap grows from {:.1}x (EMC perfect) to {:.1}x (EMC useless)\n",
        rows[0].speedup(),
        rows.last().unwrap().speedup()
    );

    let rows = megaflow_sweep(N, &cost);
    println!(
        "{}",
        format_sweep(
            &format!("A2b — megaflow hit-rate sweep at EMC 0, memory-only chain of {N} [model]"),
            "megaflow hit rate",
            &rows
        )
    );
    println!(
        "shape check: the megaflow tier recovers vanilla from {:.2} to {:.2} Mpps\n",
        rows[0].traditional,
        rows.last().unwrap().traditional
    );

    let rows = vnf_cost_crossover(N, &cost);
    println!(
        "{}",
        format_sweep(
            &format!("A3 — VNF cost sweep, memory-only chain of {N} [model]"),
            "cycles/pkt",
            &rows
        )
    );
    match crossover_point(&rows, 1.3) {
        Some(x) => println!(
            "crossover: the highway's edge shrinks under 1.3x once the app costs {x:.0} cycles/pkt\n"
        ),
        None => println!("no crossover within the swept range\n"),
    }

    let rows = pmd_core_scaling(8, &cost);
    println!(
        "{}",
        format_sweep(
            "A4 — vanilla PMD-core scaling vs highway, memory chain of 8 [model]",
            "PMD cores",
            &rows
        )
    );
    match cores_for_parity(&rows) {
        Some(c) => println!("parity: vanilla needs {c} switch cores to match the highway\n"),
        None => println!("parity: not reached even with 8 switch cores\n"),
    }
}
