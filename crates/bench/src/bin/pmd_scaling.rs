//! PMD scaling bench: end-to-end datapath throughput at 1, 2 and 4 PMD
//! threads over the RSS fan-out mesh.
//!
//! Eight dpdkr in-ports each carry many distinct UDP flows toward a
//! dedicated out-port; every packet crosses the real sharded datapath —
//! rx burst, RSS ownership hash, SPSC fan-out ring where the owner is a
//! different PMD, per-PMD cache lookup against the RCU-style table
//! snapshot, staged tx. Packets are preloaded into the port channels so
//! the measurement prices the switch, not the generator.
//!
//! Emits `BENCH_pmd_scaling.json` for CI trend tracking; `--quick` bounds
//! the packet count. On a host with ≥ 4 cores the run exits non-zero if
//! 4-PMD throughput is below 2x single-PMD — the scaling the sharded
//! datapath exists to deliver. On smaller hosts (PMD threads time-slice
//! one core; no parallel speedup is physically possible) the gate is
//! loudly skipped and only a sanity floor is enforced.
//!
//! The measured passes run with telemetry enabled and embed the per-stage
//! cycle latency p50/p99 from the 4-PMD pass into the JSON. A final
//! telemetry-disabled 4-PMD pass prices the instrumentation itself: on a
//! ≥ 4-core host, telemetry-on throughput must stay within 5% of
//! telemetry-off (best of two attempts, to shave scheduler noise).

use openflow::messages::FlowMod;
use openflow::{Action, FlowMatch, PortNo};
use ovs_dp::{VSwitchd, VSwitchdConfig};
use packet_wire::PacketBuilder;
use shmem_sim::channel;
use std::time::{Duration, Instant};
use telemetry::{HistSummary, Stage, TelemetrySnapshot};

/// In-ports 1..=PORTS forward to out-ports 101..=100+PORTS.
const PORTS: u16 = 8;
/// Distinct UDP flows per in-port (spreads across PMDs under RSS).
const FLOWS_PER_PORT: u16 = 512;

/// One measured pass: preload `per_port` packets into every in-port,
/// start the switch with `pmds` PMD threads, drain all out-ports, return
/// packets/second over the drain window plus the telemetry snapshot taken
/// right before the switch stops.
fn run_pass(pmds: usize, per_port: usize, telemetry_on: bool) -> (f64, TelemetrySnapshot) {
    let sw = VSwitchd::new(VSwitchdConfig {
        pmd_threads: pmds,
        telemetry: telemetry_on,
        ..VSwitchdConfig::default()
    });
    let cap = per_port.next_power_of_two();
    let mut outs = Vec::new();
    for p in 1..=PORTS {
        let (sw_end, mut vm_in) = channel(format!("in{p}"), cap);
        sw.add_dpdkr_port(PortNo(p), format!("in{p}"), sw_end);
        let (sw_out, vm_out) = channel(format!("out{p}"), cap);
        sw.add_dpdkr_port(PortNo(100 + p), format!("out{p}"), sw_out);
        outs.push(vm_out);
        sw.inject_flow_mod(&FlowMod::add(
            FlowMatch::in_port(PortNo(p)),
            100,
            vec![Action::Output(PortNo(100 + p))],
        ));
        // Preload the traffic: many distinct flows so the RSS hash fans
        // the port's packets out across all PMDs.
        for i in 0..per_port {
            let frame = PacketBuilder::udp_probe(64)
                .ports(1000 + (i as u16 % FLOWS_PER_PORT), 80)
                .build();
            vm_in
                .send(dpdk_sim::Mbuf::from_slice(&frame))
                .expect("preload within channel capacity");
        }
    }

    let total = per_port as u64 * PORTS as u64;
    let start = Instant::now();
    sw.start();
    let deadline = start + Duration::from_secs(60);
    let mut got = 0u64;
    while got < total {
        let mut idle = true;
        for out in &mut outs {
            while out.recv().is_some() {
                got += 1;
                idle = false;
            }
        }
        if idle {
            if Instant::now() > deadline {
                panic!("pmd_scaling: {pmds} PMDs delivered {got}/{total} before deadline");
            }
            std::thread::yield_now();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let snap = sw.telemetry_snapshot();
    sw.stop();
    let dropped = sw
        .datapath()
        .fanout_drops
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(dropped, 0, "fan-out mesh dropped {dropped} packets");
    (total as f64 / elapsed, snap)
}

/// `{"count":N,"p50_cycles":N,"p99_cycles":N}` for one pipeline stage.
fn stage_json(snap: &TelemetrySnapshot, stage: Stage) -> String {
    let s: HistSummary = snap.stage_summary(stage);
    format!(
        "{{ \"count\": {}, \"p50_cycles\": {}, \"p99_cycles\": {} }}",
        s.count, s.p50, s.p99
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_port = if quick { 8_192 } else { 32_768 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warmup pass (allocators, lazy statics), then measured passes with
    // telemetry on — the instrumented datapath is the product configuration.
    run_pass(1, per_port / 4, true);
    let passes: Vec<(usize, f64, TelemetrySnapshot)> = [1usize, 2, 4]
        .iter()
        .map(|&p| {
            let (pps, snap) = run_pass(p, per_port, true);
            (p, pps, snap)
        })
        .collect();
    let pps_1 = passes[0].1;
    let pps_2 = passes[1].1;
    let pps_4 = passes[2].1;
    let snap_4 = &passes[2].2;
    let scaling = pps_4 / pps_1;

    println!(
        "## PMD scaling — sharded datapath throughput [measured{}]\n",
        if quick { ", quick" } else { "" }
    );
    println!("| PMD threads | pkts/s | vs 1 PMD |");
    println!("|---|---|---|");
    for (p, v, _) in &passes {
        println!("| {p} | {v:.0} | {:.2}x |", v / pps_1);
    }
    println!("\nhost cores: {cores}");

    // Per-stage latency of the 4-PMD pass, from the telemetry layer.
    println!("\n| stage (4 PMDs) | bursts | p50 cycles | p99 cycles |");
    println!("|---|---|---|---|");
    for stage in Stage::ALL {
        let s = snap_4.stage_summary(stage);
        println!("| {} | {} | {} | {} |", stage.name(), s.count, s.p50, s.p99);
    }

    // Price the instrumentation: best of two telemetry-off 4-PMD passes
    // against the best of the measured pass and one retry. Best-of-2 on
    // each side shaves scheduler noise from the ratio.
    let (off_a, _) = run_pass(4, per_port, false);
    let (off_b, _) = run_pass(4, per_port, false);
    let (on_retry, _) = run_pass(4, per_port, true);
    let pps_4_off = off_a.max(off_b);
    let pps_4_on = pps_4.max(on_retry);
    let overhead_ratio = pps_4_on / pps_4_off;
    println!(
        "\ntelemetry overhead at 4 PMDs: on={pps_4_on:.0} pps, off={pps_4_off:.0} pps, \
         ratio {overhead_ratio:.3}"
    );

    // The ≥2x gate only means something when 4 PMD threads can actually
    // run in parallel; on fewer cores they time-slice one CPU.
    let gate = cores >= 4;
    if !gate {
        println!("SKIPPED scaling assert: only {cores} core(s); 4 PMDs cannot run in parallel");
    }

    let stages_json = Stage::ALL
        .iter()
        .map(|&st| format!("    \"{}\": {}", st.name(), stage_json(snap_4, st)))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"pmd_scaling\",\n  \"quick\": {quick},\n  \
         \"packets_per_pmd_count\": {},\n  \"flows_per_port\": {FLOWS_PER_PORT},\n  \
         \"pps_1_pmd\": {pps_1:.0},\n  \"pps_2_pmd\": {pps_2:.0},\n  \
         \"pps_4_pmd\": {pps_4:.0},\n  \"scaling_4_vs_1\": {scaling:.3},\n  \
         \"pps_4_pmd_telemetry_off\": {pps_4_off:.0},\n  \
         \"telemetry_overhead_ratio\": {overhead_ratio:.3},\n  \
         \"stage_latency_4_pmd\": {{\n{stages_json}\n  }},\n  \
         \"cores\": {cores},\n  \"asserted\": {gate}\n}}\n",
        per_port as u64 * PORTS as u64,
    );
    std::fs::write("BENCH_pmd_scaling.json", json).expect("write BENCH_pmd_scaling.json");
    println!("wrote BENCH_pmd_scaling.json");

    if gate {
        assert!(
            scaling >= 2.0,
            "PMD scaling regression: 4 PMDs = {scaling:.2}x of 1 PMD (need >= 2x)"
        );
        assert!(
            overhead_ratio >= 0.95,
            "telemetry overhead: 4-PMD throughput with telemetry is {overhead_ratio:.3}x \
             of telemetry-off (need >= 0.95)"
        );
    } else {
        // Sanity floor even when time-slicing: sharding overhead must not
        // crater throughput.
        assert!(
            scaling >= 0.5,
            "PMD sharding overhead: 4 PMDs = {scaling:.2}x of 1 PMD on a {cores}-core host"
        );
        println!("SKIPPED telemetry overhead assert (ratio {overhead_ratio:.3}); needs >= 4 cores");
    }
    println!("pmd-scaling bench OK");
}
