//! §3's setup-time claim, *measured* on the real control plane.
//!
//! For each trial: install the p-2-p steering rule through the OpenFlow
//! wire, let the detector fire, the manager reconcile, the compute agent
//! hot-plug (with the paper-calibrated QEMU/virtio-serial latency model)
//! and the PMDs switch over; then read the detection→activation time from
//! the manager's log. The paper reports "on the order of 100 ms".

use highway_bench::{setup_world, summarize_ms};
use openflow::{Action, FlowMatch, PortNo};
use std::time::Duration;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    let (node, (src, dst)) = setup_world();
    let ctrl = node.connect_controller();
    let mut samples_ms = Vec::with_capacity(trials);

    for trial in 0..trials {
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(src as u16)),
            100,
            vec![Action::Output(PortNo(dst as u16))],
            0xbeef + trial as u64,
        )
        .expect("flow_mod");
        // Barrier: the flow_mod (and so the detection) has been processed
        // before we wait for the manager to reconcile.
        ctrl.barrier(Duration::from_secs(5)).expect("barrier");
        assert!(
            node.wait_highway_converged(Duration::from_secs(10)),
            "bypass setup did not converge"
        );
        let log = node.setup_log();
        assert_eq!(log.len(), trial + 1, "one new setup per trial");
        samples_ms.push(
            log.last()
                .expect("setup recorded")
                .setup_time()
                .as_secs_f64()
                * 1e3,
        );

        // Remove the rule; the teardown runs before the next trial.
        ctrl.del_flow_strict(FlowMatch::in_port(PortNo(src as u16)), 100)
            .expect("delete");
        ctrl.barrier(Duration::from_secs(5)).expect("barrier");
        assert!(node.wait_highway_converged(Duration::from_secs(10)));
    }

    println!("## Setup time — flow_mod recognition → bypass active [measured]\n");
    println!("{}", summarize_ms(&samples_ms));
    println!("(paper: \"on the order of 100 ms\")\n");
    node.stop();
}
