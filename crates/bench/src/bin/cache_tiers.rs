//! Cache-tier ablation with a hard acceptance assertion.
//!
//! Measures the real datapath's classification cost under the three cache
//! configurations (classifier-only, EMC-only, EMC+megaflow) over a
//! Zipf-skewed flow mix, prints the comparison, and **exits non-zero** if
//! EMC+megaflow is not strictly cheaper than classifier-only — so a
//! regression on the megaflow fast path fails CI loudly instead of
//! silently shifting a Criterion number nobody reads.
//!
//! `--quick` bounds the iteration count for CI; the default run uses more
//! passes for stabler numbers.

use highway_bench::cache_tiers::{build, run_pass, TierConfig};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, passes) = if quick { (2048, 20) } else { (4096, 200) };
    let world = build(samples);

    println!(
        "## A9 — cache-tier ablation [measured, {} Zipf samples x {passes} passes{}]\n",
        world.keys.len(),
        if quick { ", quick" } else { "" },
    );
    println!("| configuration | ns/lookup | emc | megaflow | classifier |");
    println!("|---|---|---|---|---|");

    let mut ns_per_lookup = Vec::new();
    for cfg in TierConfig::ALL {
        let mut caches = cfg.caches();
        // Warm pass: the comparison is about the steady state.
        let counts = run_pass(&world.dp, &world.keys, &mut caches);
        assert_eq!(
            counts.miss,
            0,
            "{}: lookups missed — the ablation table is broken",
            cfg.label()
        );
        let start = Instant::now();
        let mut steady = counts;
        for _ in 0..passes {
            steady = run_pass(&world.dp, &world.keys, &mut caches);
        }
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as f64 / (passes * world.keys.len()) as f64;
        ns_per_lookup.push(ns);
        println!(
            "| {} | {ns:.1} | {} | {} | {} |",
            cfg.label(),
            steady.emc,
            steady.megaflow,
            steady.classifier,
        );
    }

    let classifier_only = ns_per_lookup[0];
    let emc_megaflow = ns_per_lookup[2];
    println!(
        "\nEMC+megaflow vs classifier-only: {:.2}x cheaper",
        classifier_only / emc_megaflow
    );
    // The acceptance criterion, with margin against timer noise: the full
    // hierarchy must be strictly — not marginally — cheaper than walking
    // the classifier for every packet.
    assert!(
        emc_megaflow < 0.8 * classifier_only,
        "megaflow tier regression: EMC+megaflow {emc_megaflow:.1} ns/lookup is not strictly \
         cheaper than classifier-only {classifier_only:.1} ns/lookup"
    );
    println!("cache-tier ablation OK");
}
