//! §3's latency claim: one-way latency vs chain length at 90 % of vanilla
//! capacity. The paper reports ~80 % improvement for an 8-VM chain.

use highway_bench::format_rows;
use simnet::{latency_vs_chain, CostModel};

fn main() {
    let rows = latency_vs_chain(&CostModel::paper_testbed());
    println!(
        "{}",
        format_rows(
            "Latency — NIC-edged chains at 90% vanilla load [model]",
            "# VMs",
            &rows
        )
    );
    let last = rows.last().expect("rows");
    let improvement = 100.0 * (1.0 - last.highway / last.traditional);
    println!("shape check: improvement at 8 VMs = {improvement:.0}% (paper: ~80%)\n");
}
