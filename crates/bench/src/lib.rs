//! # highway-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§3). Binaries:
//!
//! | binary            | reproduces                      |
//! |-------------------|---------------------------------|
//! | `fig3a`           | Figure 3(a), memory-only chains |
//! | `fig3b`           | Figure 3(b), NIC-edged chains   |
//! | `latency`         | §3's ~80 % latency claim        |
//! | `setup_time`      | §3's ~100 ms setup claim (measured on the real control plane) |
//! | `all-experiments` | everything above, in one run    |
//!
//! Criterion microbenchmarks (`cargo bench -p highway-bench`) measure the
//! real code's per-operation costs; they calibrate/validate the `simnet`
//! cost model.

use simnet::FigureRow;

pub mod cache_tiers;

/// Formats a figure's rows as an aligned console table.
pub fn format_rows(title: &str, xlabel: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let unit = rows.first().map(|r| r.unit).unwrap_or("");
    out.push_str(&format!(
        "| {xlabel} | traditional [{unit}] | highway [{unit}] | speedup |\n"
    ));
    out.push_str("|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2}x |\n",
            r.n_vms,
            r.traditional,
            r.highway,
            r.speedup()
        ));
    }
    out
}

/// Formats an ablation sweep's rows as an aligned console table.
pub fn format_sweep(title: &str, xlabel: &str, rows: &[simnet::SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let unit = rows.first().map(|r| r.unit).unwrap_or("");
    out.push_str(&format!(
        "| {xlabel} | traditional [{unit}] | highway [{unit}] | speedup |\n"
    ));
    out.push_str("|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2}x |\n",
            r.x,
            r.traditional,
            r.highway,
            r.speedup()
        ));
    }
    out
}

/// Summary statistics of a set of duration samples, in milliseconds.
pub fn summarize_ms(samples: &[f64]) -> String {
    if samples.is_empty() {
        return "no samples".into();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let p =
        |q: f64| sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    format!(
        "n={} min={:.1}ms p50={:.1}ms mean={:.1}ms p90={:.1}ms max={:.1}ms",
        sorted.len(),
        sorted[0],
        p(0.5),
        mean,
        p(0.9),
        sorted[sorted.len() - 1]
    )
}

/// Builds a [`setup-time experiment`] world: a highway node with `paper`
/// control-plane latencies and two 2-port VMs, started and registered.
/// Returns (node, port numbers of the middle seam).
pub fn setup_world() -> (highway_core::HighwayNode, (u32, u32)) {
    use highway_core::{HighwayNode, HighwayNodeConfig};
    use vm_host::VnfSpec;

    let node = HighwayNode::new(HighwayNodeConfig::paper_latencies());
    let vm_a = node.orchestrator().create_vm(VnfSpec::forwarder("vm-a"), 2);
    let vm_b = node.orchestrator().create_vm(VnfSpec::forwarder("vm-b"), 2);
    node.register_vm(vm_a.clone());
    node.register_vm(vm_b.clone());
    let seam = (vm_a.of_ports()[1], vm_b.of_ports()[0]);
    node.start();
    (node, seam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_is_markdown() {
        let rows = vec![FigureRow {
            n_vms: 2,
            traditional: 1.0,
            highway: 4.0,
            unit: "Mpps",
        }];
        let s = format_rows("Fig", "# VMs", &rows);
        assert!(s.contains("| 2 | 1.00 | 4.00 | 4.00x |"));
        assert!(s.contains("traditional [Mpps]"));
    }

    #[test]
    fn summary_orders_percentiles() {
        let s = summarize_ms(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert!(s.contains("min=1.0ms"));
        assert!(s.contains("max=5.0ms"));
        assert!(s.contains("p50=3.0ms"));
    }
}
