//! Low-rate event export hook.
//!
//! `dpdk-sim` sits below the telemetry crate in the dependency graph, so it
//! cannot bump `telemetry::coverage!` counters directly. Instead it emits
//! named events through a process-wide hook that the telemetry layer
//! installs once at startup (`telemetry::pools::install_event_bridge`).
//! Until a hook is installed, events are dropped — exactly the pre-bridge
//! behaviour, so the dpdk crate stays usable standalone.
//!
//! Only *exceptional* paths emit (allocation failures, foreign frees,
//! copy-on-write detaches): the hook is never consulted on the per-packet
//! fast path.

use std::sync::OnceLock;

/// Event consumer: `(event_name, count)`.
pub type EventHook = fn(&'static str, u64);

static HOOK: OnceLock<EventHook> = OnceLock::new();

/// Installs the process-wide event hook. First caller wins; later calls
/// are ignored (the telemetry bridge is idempotent by construction).
pub fn set_event_hook(hook: EventHook) {
    let _ = HOOK.set(hook);
}

/// Emits `n` occurrences of `name` to the installed hook, if any.
pub fn emit(name: &'static str, n: u64) {
    if let Some(hook) = HOOK.get() {
        hook(name, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn test_hook(_name: &'static str, n: u64) {
        SEEN.fetch_add(n, Ordering::Relaxed);
    }

    #[test]
    fn emit_reaches_installed_hook() {
        // No other code in this test binary installs a hook, so ours wins.
        set_event_hook(test_hook);
        let before = SEEN.load(Ordering::Relaxed);
        emit("ev", 3);
        assert_eq!(SEEN.load(Ordering::Relaxed), before + 3);
    }
}
