//! Shared-arena mbuf allocator with offset-based handles.
//!
//! A real ivshmem highway cannot move `Box<[u8]>` pointers between
//! processes: a guest maps the hugepage segment at its own virtual address,
//! so the only representation of a packet that survives the BAR crossing is
//! `(segment_id, offset, length)`. This module models exactly that:
//!
//! * `ArenaSegment` (internal) — one contiguous slab carved into
//!   fixed-size slots, with a lock-free freelist of slot indices, one
//!   refcount per slot for multi-reader handoff, and a **credit-return
//!   ring**: consumers that finish with a buffer push its slot index onto
//!   the credit ring instead of the freelist, so recycling never touches
//!   the slab and never contends with the producer's allocation path — the
//!   producer reclaims credits in batches when its freelist runs dry.
//! * [`Arena`] — a process-local *mapping* of a segment. The owner mapping
//!   (created by [`Arena::new`]) frees straight to the freelist; consumer
//!   mappings ([`Arena::consumer`]) free through the credit ring, like a
//!   guest that must not write the host's freelist head.
//! * [`ArenaMbuf`] — an RAII packet handle over one slot: offset-based,
//!   refcounted ([`ArenaMbuf::clone_ref`]), and convertible to/from the POD
//!   [`MbufDesc`] that rides rings between mappings (descriptor-only
//!   enqueue — the zero-copy hop).
//!
//! The slab counts every mutable-byte access in `slab_writes`, which is the
//! instrument behind the zero-copy acceptance test: across an N-hop chain,
//! slab writes happen only at generator ingress (and at VNFs that
//! legitimately mutate payload), never per hop.

use crate::events;
use crossbeam::queue::ArrayQueue;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Headroom reserved at the front of every arena slot, mirroring
/// [`crate::mbuf::MBUF_HEADROOM`] (capped for tiny test slots).
pub const ARENA_HEADROOM: usize = crate::mbuf::MBUF_HEADROOM;

/// A POD packet descriptor: the only representation that crosses a ring
/// between two mappings of the same segment. Carries the buffer's identity
/// as offsets plus the mbuf metadata words, never a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbufDesc {
    /// Which segment the slot lives in (global, process-unique id).
    pub segment_id: u64,
    /// Slot index within the segment's slab.
    pub slot: u32,
    /// Offset of the first packet byte within the slot.
    pub data_off: u32,
    /// Packet length in bytes.
    pub len: u32,
    /// Ingress port metadata (rides along, not part of the buffer).
    pub port: u32,
    /// Scratch metadata word.
    pub udata: u64,
    /// Cycle timestamp metadata word.
    pub timestamp: u64,
}

impl MbufDesc {
    /// Byte offset of the packet data from the start of the whole slab.
    pub fn slab_offset(&self, slot_size: usize) -> usize {
        self.slot as usize * slot_size + self.data_off as usize
    }
}

/// The slab: interior-mutable so multiple handles can address disjoint
/// slots concurrently. Slot disjointness plus the per-slot refcount
/// protocol (mutable access only at refcount 1, through `&mut` handles)
/// guarantee no byte is ever aliased mutably.
struct Slab(Box<[UnsafeCell<u8>]>);

// SAFETY: all access goes through ArenaMbuf, which only hands out `&mut`
// bytes for a slot whose refcount is 1 and only through a `&mut` handle;
// shared reads of a slot are fine concurrently.
unsafe impl Sync for Slab {}
unsafe impl Send for Slab {}

impl Slab {
    fn new(len: usize) -> Slab {
        // `UnsafeCell<u8>` is `repr(transparent)` over `u8`, so a zeroed
        // byte slab can be reinterpreted wholesale — element-by-element
        // construction is quadratically slower in debug builds for the
        // multi-megabyte slabs the host arena uses.
        let bytes: Box<[u8]> = vec![0u8; len].into_boxed_slice();
        let raw = Box::into_raw(bytes);
        Slab(unsafe { Box::from_raw(raw as *mut [UnsafeCell<u8>]) })
    }

    /// SAFETY: caller must guarantee no concurrent `&mut` to this range.
    unsafe fn slice(&self, start: usize, len: usize) -> &[u8] {
        std::slice::from_raw_parts(self.0[start].get() as *const u8, len)
    }

    /// SAFETY: caller must guarantee exclusive access to this range.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [u8] {
        std::slice::from_raw_parts_mut(self.0[start].get(), len)
    }
}

/// One shared-memory arena segment (the thing a hugepage backs).
pub(crate) struct ArenaSegment {
    name: String,
    id: u64,
    slab: Slab,
    slot_size: usize,
    capacity: usize,
    /// Per-slot reference counts; 0 = slot is in a queue, not in flight.
    refcounts: Box<[AtomicU32]>,
    /// Owner-side freelist of slot indices.
    free: ArrayQueue<u32>,
    /// Credit-return ring: consumer mappings push finished slots here.
    credit: ArrayQueue<u32>,
    // ---- counters ----
    allocs: AtomicU64,
    alloc_failures: AtomicU64,
    /// Direct freelist returns (owner mapping frees).
    frees: AtomicU64,
    /// Returns via the credit ring (consumer mapping frees).
    credit_returns: AtomicU64,
    /// Credits the owner has moved from the credit ring to the freelist.
    credits_reclaimed: AtomicU64,
    /// Returns that fit neither queue — a buffer this segment never issued.
    foreign_frees: AtomicU64,
    /// Copy-on-write slot copies (a shared handle was mutated).
    cow_copies: AtomicU64,
    /// Mutable-byte accesses to the slab (the zero-copy census probe).
    slab_writes: AtomicU64,
    in_use: AtomicUsize,
    high_water: AtomicUsize,
}

impl ArenaSegment {
    fn return_slot(&self, slot: u32, via_credit: bool) {
        if (slot as usize) >= self.capacity {
            self.foreign_frees.fetch_add(1, Ordering::Relaxed);
            events::emit("arena_foreign_free", 1);
            return;
        }
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        if via_credit {
            if self.credit.push(slot).is_ok() {
                self.credit_returns.fetch_add(1, Ordering::Relaxed);
                return;
            }
        } else if self.free.push(slot).is_ok() {
            self.frees.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Both queues are sized to capacity and every legitimate slot is in
        // exactly one place, so a failed push means a double free or a slot
        // from some other segment: observable, never silent.
        self.in_use.fetch_add(1, Ordering::Relaxed);
        self.foreign_frees.fetch_add(1, Ordering::Relaxed);
        events::emit("arena_foreign_free", 1);
    }

    /// Drains the credit ring into the freelist; returns slots reclaimed.
    fn reclaim_credits(&self) -> usize {
        let mut n = 0;
        while let Some(slot) = self.credit.pop() {
            self.free
                .push(slot)
                .unwrap_or_else(|_| unreachable!("freelist sized to capacity"));
            n += 1;
        }
        if n > 0 {
            self.credits_reclaimed
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    fn take_slot(&self) -> Option<u32> {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                // Freelist dry: reclaim consumer credits in one batch, then
                // retry. This is the producer-side half of the credit
                // protocol — amortised, never per packet.
                self.reclaim_credits();
                match self.free.pop() {
                    Some(s) => s,
                    None => {
                        self.alloc_failures.fetch_add(1, Ordering::Relaxed);
                        events::emit("arena_alloc_failure", 1);
                        return None;
                    }
                }
            }
        };
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.refcounts[slot as usize].store(1, Ordering::Release);
        let now = self.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        Some(slot)
    }
}

impl Drop for ArenaSegment {
    fn drop(&mut self) {
        segment_table().lock().unwrap().remove(&self.id);
    }
}

/// Counter snapshot of one arena segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    pub capacity: usize,
    pub slot_size: usize,
    /// Slots on the owner freelist right now.
    pub available: usize,
    /// Slots parked on the credit ring, not yet reclaimed by the owner.
    pub credit_pending: usize,
    /// Slots in flight (allocated, not yet returned by either path).
    pub in_use: usize,
    /// Highest `in_use` ever observed.
    pub high_water: usize,
    pub allocs: u64,
    pub alloc_failures: u64,
    /// Direct freelist returns (owner-mapping frees).
    pub frees: u64,
    /// Returns through the credit ring (consumer-mapping frees).
    pub credit_returns: u64,
    /// Credits the owner has folded back into the freelist.
    pub credits_reclaimed: u64,
    /// Returned buffers this segment never issued (double free / cross-
    /// segment confusion) — must stay 0 in a healthy system.
    pub foreign_frees: u64,
    /// Copy-on-write slot copies.
    pub cow_copies: u64,
    /// Mutable-byte accesses to the slab since creation.
    pub slab_writes: u64,
}

/// A process-local mapping of an arena segment.
///
/// Clone is cheap; clones share the segment. The mapping created by
/// [`Arena::new`] is the *owner* (frees go straight to the freelist);
/// [`Arena::consumer`] derives a consumer mapping whose frees take the
/// credit-return ring, the way a guest recycles a host-owned buffer.
#[derive(Clone)]
pub struct Arena {
    seg: Arc<ArenaSegment>,
    via_credit: bool,
}

/// Non-owning arena reference for registries (telemetry) that must not
/// keep a dead segment alive.
#[derive(Clone)]
pub struct WeakArena {
    seg: Weak<ArenaSegment>,
}

impl WeakArena {
    /// Upgrades to a live mapping, if the segment still exists.
    pub fn upgrade(&self) -> Option<Arena> {
        self.seg.upgrade().map(|seg| Arena {
            seg,
            via_credit: true,
        })
    }
}

fn segment_table() -> &'static Mutex<HashMap<u64, Weak<ArenaSegment>>> {
    static TABLE: OnceLock<Mutex<HashMap<u64, Weak<ArenaSegment>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn next_segment_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Resolves a descriptor received from a ring into a live handle.
///
/// This is what a consumer does after dequeuing: look the segment up in its
/// mapping table and rebind the offsets. The adopted handle recycles
/// through the credit ring (the adopter is by definition not the owner's
/// allocation path). Returns `None` — and counts `arena_adopt_failure` —
/// when the segment has been torn down, the packet-loss mode a real
/// unmap-under-traffic has.
pub fn adopt(desc: MbufDesc) -> Option<ArenaMbuf> {
    let seg = segment_table()
        .lock()
        .unwrap()
        .get(&desc.segment_id)
        .and_then(Weak::upgrade);
    match seg {
        Some(seg) => Some(ArenaMbuf::rebind(seg, desc, true)),
        None => {
            events::emit("arena_adopt_failure", 1);
            None
        }
    }
}

impl Arena {
    /// Creates a new segment of `capacity` slots of `slot_size` bytes and
    /// returns its owner mapping.
    pub fn new(name: impl Into<String>, capacity: usize, slot_size: usize) -> Arena {
        assert!(capacity > 0, "arena capacity must be positive");
        assert!(slot_size > 0, "arena slot size must be positive");
        let free = ArrayQueue::new(capacity);
        for slot in 0..capacity {
            free.push(slot as u32)
                .unwrap_or_else(|_| unreachable!("queue sized to capacity"));
        }
        let refcounts = (0..capacity).map(|_| AtomicU32::new(0)).collect();
        let seg = Arc::new(ArenaSegment {
            name: name.into(),
            id: next_segment_id(),
            slab: Slab::new(capacity * slot_size),
            slot_size,
            capacity,
            refcounts,
            free,
            credit: ArrayQueue::new(capacity),
            allocs: AtomicU64::new(0),
            alloc_failures: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            credit_returns: AtomicU64::new(0),
            credits_reclaimed: AtomicU64::new(0),
            foreign_frees: AtomicU64::new(0),
            cow_copies: AtomicU64::new(0),
            slab_writes: AtomicU64::new(0),
            in_use: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        });
        segment_table()
            .lock()
            .unwrap()
            .insert(seg.id, Arc::downgrade(&seg));
        Arena {
            seg,
            via_credit: false,
        }
    }

    /// Derives a consumer mapping: same segment, but frees (and frees of
    /// buffers allocated through it) take the credit-return ring.
    pub fn consumer(&self) -> Arena {
        Arena {
            seg: Arc::clone(&self.seg),
            via_credit: true,
        }
    }

    /// Non-owning reference for registries.
    pub fn weak(&self) -> WeakArena {
        WeakArena {
            seg: Arc::downgrade(&self.seg),
        }
    }

    /// Allocates one empty mbuf with standard headroom, or `None` when the
    /// segment is exhausted (after reclaiming any pending credits).
    pub fn alloc(&self) -> Option<ArenaMbuf> {
        let slot = self.seg.take_slot()?;
        let data_off = ARENA_HEADROOM.min(self.seg.slot_size / 2);
        Some(ArenaMbuf {
            seg: Arc::clone(&self.seg),
            slot,
            via_credit: self.via_credit,
            data_off,
            data_len: 0,
            port: 0,
            udata: 0,
            timestamp: 0,
        })
    }

    /// Allocates and copies `data` into the slot — the single legitimate
    /// slab write of a packet's life on a zero-copy chain (generator
    /// ingress / NIC rx).
    pub fn alloc_from(&self, data: &[u8]) -> Option<ArenaMbuf> {
        let mut m = self.alloc()?;
        if data.len() > m.tailroom() {
            return None; // handle drops, slot returns
        }
        m.set_len(data.len());
        m.data_mut().copy_from_slice(data);
        Some(m)
    }

    /// Drains the credit-return ring into the freelist (owner-side batch
    /// reclaim); returns how many slots moved. Also runs implicitly when
    /// an allocation finds the freelist dry.
    pub fn reclaim_credits(&self) -> usize {
        self.seg.reclaim_credits()
    }

    /// Segment name.
    pub fn name(&self) -> &str {
        &self.seg.name
    }

    /// Globally unique segment id (what descriptors carry).
    pub fn segment_id(&self) -> u64 {
        self.seg.id
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.seg.capacity
    }

    /// Bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.seg.slot_size
    }

    /// Slots on the freelist right now (excludes unreclaimed credits).
    pub fn available(&self) -> usize {
        self.seg.free.len()
    }

    /// Slots parked on the credit ring awaiting owner reclaim.
    pub fn credit_pending(&self) -> usize {
        self.seg.credit.len()
    }

    /// Slots currently in flight.
    pub fn in_use(&self) -> usize {
        self.seg.in_use.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArenaStats {
        let s = &self.seg;
        ArenaStats {
            capacity: s.capacity,
            slot_size: s.slot_size,
            available: s.free.len(),
            credit_pending: s.credit.len(),
            in_use: s.in_use.load(Ordering::Relaxed),
            high_water: s.high_water.load(Ordering::Relaxed),
            allocs: s.allocs.load(Ordering::Relaxed),
            alloc_failures: s.alloc_failures.load(Ordering::Relaxed),
            frees: s.frees.load(Ordering::Relaxed),
            credit_returns: s.credit_returns.load(Ordering::Relaxed),
            credits_reclaimed: s.credits_reclaimed.load(Ordering::Relaxed),
            foreign_frees: s.foreign_frees.load(Ordering::Relaxed),
            cow_copies: s.cow_copies.load(Ordering::Relaxed),
            slab_writes: s.slab_writes.load(Ordering::Relaxed),
        }
    }

    /// Zero-leak census: true when every slot is accounted for in the
    /// freelist or the credit ring and nothing foreign ever came back.
    pub fn census_clean(&self) -> bool {
        self.in_use() == 0
            && self.available() + self.credit_pending() == self.capacity()
            && self.stats().foreign_frees == 0
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("name", &self.seg.name)
            .field("id", &self.seg.id)
            .field("capacity", &self.seg.capacity)
            .field("available", &self.available())
            .field("credit_pending", &self.credit_pending())
            .field("consumer", &self.via_credit)
            .finish()
    }
}

/// An offset-based, refcounted packet handle over one arena slot.
pub struct ArenaMbuf {
    seg: Arc<ArenaSegment>,
    slot: u32,
    via_credit: bool,
    data_off: usize,
    data_len: usize,
    /// Ingress port metadata.
    pub port: u32,
    /// Scratch metadata word.
    pub udata: u64,
    /// Cycle timestamp metadata word.
    pub timestamp: u64,
}

impl ArenaMbuf {
    fn rebind(seg: Arc<ArenaSegment>, desc: MbufDesc, via_credit: bool) -> ArenaMbuf {
        ArenaMbuf {
            seg,
            slot: desc.slot,
            via_credit,
            data_off: desc.data_off as usize,
            data_len: desc.len as usize,
            port: desc.port,
            udata: desc.udata,
            timestamp: desc.timestamp,
        }
    }

    fn slot_base(&self) -> usize {
        self.slot as usize * self.seg.slot_size
    }

    fn refcount(&self) -> &AtomicU32 {
        &self.seg.refcounts[self.slot as usize]
    }

    /// True when this handle is the slot's only reference.
    pub fn is_unique(&self) -> bool {
        self.refcount().load(Ordering::Acquire) == 1
    }

    /// Adds a reader: both handles see the same bytes, the slot returns to
    /// its queue exactly once, when the last handle drops.
    pub fn clone_ref(&self) -> ArenaMbuf {
        self.refcount().fetch_add(1, Ordering::AcqRel);
        ArenaMbuf {
            seg: Arc::clone(&self.seg),
            slot: self.slot,
            via_credit: self.via_credit,
            data_off: self.data_off,
            data_len: self.data_len,
            port: self.port,
            udata: self.udata,
            timestamp: self.timestamp,
        }
    }

    /// Converts the handle into its ring descriptor *without* releasing the
    /// slot: the reference moves into the descriptor, to be resurrected by
    /// [`adopt`] on the other side. This is the descriptor-only enqueue.
    pub fn into_desc(self) -> MbufDesc {
        let mut this = ManuallyDrop::new(self);
        let desc = MbufDesc {
            segment_id: this.seg.id,
            slot: this.slot,
            data_off: this.data_off as u32,
            len: this.data_len as u32,
            port: this.port,
            udata: this.udata,
            timestamp: this.timestamp,
        };
        // Release the mapping Arc without running ArenaMbuf::drop — the
        // slot's refcount travels inside the descriptor, not the Arc.
        // SAFETY: `this` is ManuallyDrop, so `seg` is dropped exactly once.
        unsafe { std::ptr::drop_in_place(&mut this.seg) };
        desc
    }

    /// Packet bytes (shared read; any number of clones may read).
    pub fn data(&self) -> &[u8] {
        // SAFETY: mutable access requires refcount == 1 plus &mut, so no
        // &mut alias can exist while shared handles read.
        unsafe {
            self.seg
                .slab
                .slice(self.slot_base() + self.data_off, self.data_len)
        }
    }

    /// Mutable packet bytes. Panics on a shared slot — callers either hold
    /// a unique handle or go through [`ArenaMbuf::make_unique`] /
    /// the `Mbuf` wrapper's copy-on-write first.
    pub fn data_mut(&mut self) -> &mut [u8] {
        assert!(
            self.is_unique(),
            "data_mut on a shared arena mbuf; make_unique() first"
        );
        self.seg.slab_writes.fetch_add(1, Ordering::Relaxed);
        // SAFETY: refcount == 1 and we hold &mut — exclusive.
        unsafe {
            self.seg
                .slab
                .slice_mut(self.slot_base() + self.data_off, self.data_len)
        }
    }

    /// The whole slot as shared bytes (the `Mbuf` wrapper addresses the
    /// slot with its own offsets).
    pub fn slot_bytes(&self) -> &[u8] {
        // SAFETY: as in `data`.
        unsafe { self.seg.slab.slice(self.slot_base(), self.seg.slot_size) }
    }

    /// The whole slot as mutable bytes; unique handles only (see
    /// [`ArenaMbuf::data_mut`]). Counted as a slab write.
    pub fn slot_bytes_mut(&mut self) -> &mut [u8] {
        assert!(
            self.is_unique(),
            "slot_bytes_mut on a shared arena mbuf; make_unique() first"
        );
        self.seg.slab_writes.fetch_add(1, Ordering::Relaxed);
        // SAFETY: refcount == 1 and we hold &mut — exclusive.
        unsafe {
            self.seg
                .slab
                .slice_mut(self.slot_base(), self.seg.slot_size)
        }
    }

    /// Copy-on-write: if the slot is shared, moves this handle onto a
    /// fresh slot with a private copy of the bytes. Returns `false` (handle
    /// untouched, still shared) when the arena is exhausted — callers with
    /// a fallback (the `Mbuf` wrapper detaches to a heap copy) handle that.
    pub fn make_unique(&mut self) -> bool {
        if self.is_unique() {
            return true;
        }
        let Some(new_slot) = self.seg.take_slot() else {
            return false;
        };
        let (base_old, base_new) = (self.slot_base(), new_slot as usize * self.seg.slot_size);
        self.seg.cow_copies.fetch_add(1, Ordering::Relaxed);
        self.seg.slab_writes.fetch_add(1, Ordering::Relaxed);
        // SAFETY: new_slot was just allocated (exclusive); the old slot is
        // only read, which shared handles permit. Slots are disjoint.
        unsafe {
            let src = self.seg.slab.slice(base_old, self.seg.slot_size);
            let dst = self.seg.slab.slice_mut(base_new, self.seg.slot_size);
            dst.copy_from_slice(src);
        }
        // Release our reference to the shared slot, keep the new one.
        let old = self.slot;
        self.slot = new_slot;
        release_ref(&self.seg, old, self.via_credit);
        true
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.data_len
    }

    /// True when the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.data_len == 0
    }

    /// Bytes available in front of the packet.
    pub fn headroom(&self) -> usize {
        self.data_off
    }

    /// Bytes available after the packet.
    pub fn tailroom(&self) -> usize {
        self.seg.slot_size - self.data_off - self.data_len
    }

    /// Resizes the packet in place (must fit the slot).
    pub fn set_len(&mut self, len: usize) {
        assert!(
            self.data_off + len <= self.seg.slot_size,
            "arena mbuf set_len {len} exceeds slot"
        );
        self.data_len = len;
    }

    /// Segment id (diagnostics; what the descriptor would carry).
    pub fn segment_id(&self) -> u64 {
        self.seg.id
    }

    /// Slot index (diagnostics).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    pub(crate) fn data_off(&self) -> usize {
        self.data_off
    }

    pub(crate) fn set_layout(&mut self, data_off: usize, data_len: usize) {
        assert!(data_off + data_len <= self.seg.slot_size);
        self.data_off = data_off;
        self.data_len = data_len;
    }
}

fn release_ref(seg: &Arc<ArenaSegment>, slot: u32, via_credit: bool) {
    let prev = seg.refcounts[slot as usize].fetch_sub(1, Ordering::AcqRel);
    debug_assert!(prev >= 1, "arena refcount underflow on slot {slot}");
    if prev == 1 {
        seg.return_slot(slot, via_credit);
    }
}

impl Drop for ArenaMbuf {
    fn drop(&mut self) {
        release_ref(&self.seg, self.slot, self.via_credit);
    }
}

impl std::fmt::Debug for ArenaMbuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaMbuf")
            .field("segment", &self.seg.id)
            .field("slot", &self.slot)
            .field("len", &self.data_len)
            .field("unique", &self.is_unique())
            .field("via_credit", &self.via_credit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(cap: usize) -> Arena {
        Arena::new("t", cap, 512)
    }

    #[test]
    fn alloc_until_exhausted_then_free_recovers() {
        let a = arena(4);
        let bufs: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.available(), 0);
        assert_eq!(a.in_use(), 4);
        assert!(a.alloc().is_none());
        assert_eq!(a.stats().alloc_failures, 1);
        drop(bufs);
        assert_eq!(a.available(), 4);
        assert!(a.census_clean());
        assert_eq!(a.stats().high_water, 4);
    }

    #[test]
    fn consumer_frees_take_the_credit_ring() {
        let a = arena(4);
        let c = a.consumer();
        let m = a.alloc_from(&[1, 2, 3]).unwrap();
        let desc = m.into_desc();
        // The consumer adopts and drops: slot parks on the credit ring.
        let got = adopt(desc).unwrap();
        assert_eq!(got.data(), &[1, 2, 3]);
        drop(got);
        assert_eq!(a.credit_pending(), 1);
        assert_eq!(a.available(), 3);
        assert!(a.census_clean(), "credit ring counts as accounted-for");
        // Owner reclaim folds it back.
        assert_eq!(a.reclaim_credits(), 1);
        assert_eq!(a.available(), 4);
        let s = a.stats();
        assert_eq!(s.credit_returns, 1);
        assert_eq!(s.credits_reclaimed, 1);
        drop(c);
    }

    #[test]
    fn exhaustion_reclaims_credits_automatically() {
        let a = arena(2);
        let m1 = a.alloc().unwrap();
        let m2 = a.alloc().unwrap();
        // Consumer-return both slots (credit ring), freelist stays empty.
        drop(adopt(m1.into_desc()).unwrap());
        drop(adopt(m2.into_desc()).unwrap());
        assert_eq!(a.available(), 0);
        assert_eq!(a.credit_pending(), 2);
        // Alloc succeeds anyway: take_slot reclaims the credits first.
        assert!(a.alloc().is_some());
        assert_eq!(a.stats().credits_reclaimed, 2);
    }

    #[test]
    fn clone_ref_returns_slot_exactly_once() {
        let a = arena(2);
        let m = a.alloc_from(&[9; 16]).unwrap();
        let c1 = m.clone_ref();
        let c2 = c1.clone_ref();
        assert!(!m.is_unique());
        drop(m);
        drop(c1);
        assert_eq!(a.in_use(), 1, "slot still held by last clone");
        assert_eq!(c2.data(), &[9; 16]);
        drop(c2);
        assert!(a.census_clean());
        assert_eq!(a.stats().frees + a.stats().credit_returns, 1);
    }

    #[test]
    fn descriptor_roundtrip_preserves_bytes_and_metadata() {
        let a = arena(2);
        let mut m = a.alloc_from(&[7, 8, 9]).unwrap();
        m.port = 5;
        m.udata = 0xfeed;
        m.timestamp = 77;
        let desc = m.into_desc();
        assert_eq!(desc.len, 3);
        let got = adopt(desc).unwrap();
        assert_eq!(got.data(), &[7, 8, 9]);
        assert_eq!((got.port, got.udata, got.timestamp), (5, 0xfeed, 77));
        assert_eq!(a.in_use(), 1, "descriptor held the reference");
    }

    #[test]
    fn adopt_after_segment_teardown_fails_cleanly() {
        let a = arena(2);
        let desc = a.alloc().unwrap().into_desc();
        drop(a); // segment gone: Weak in the table dies
        assert!(adopt(desc).is_none());
    }

    #[test]
    fn cow_gives_a_private_copy() {
        let a = arena(4);
        let mut m = a.alloc_from(&[1, 1, 1]).unwrap();
        let reader = m.clone_ref();
        assert!(m.make_unique());
        m.data_mut()[0] = 42;
        assert_eq!(reader.data(), &[1, 1, 1], "reader unaffected");
        assert_eq!(m.data(), &[42, 1, 1]);
        assert_eq!(a.stats().cow_copies, 1);
        drop((m, reader));
        assert!(a.census_clean());
    }

    #[test]
    fn cow_fails_when_exhausted_without_corrupting() {
        let a = arena(1);
        let mut m = a.alloc_from(&[5]).unwrap();
        let reader = m.clone_ref();
        assert!(!m.make_unique(), "no free slot for the copy");
        assert_eq!(reader.data(), &[5]);
        drop((m, reader));
        assert!(a.census_clean());
    }

    #[test]
    #[should_panic(expected = "shared arena mbuf")]
    fn data_mut_on_shared_slot_panics() {
        let a = arena(2);
        let mut m = a.alloc_from(&[1]).unwrap();
        let _reader = m.clone_ref();
        let _ = m.data_mut();
    }

    #[test]
    fn slab_writes_count_only_mutable_access() {
        let a = arena(2);
        let m = a.alloc_from(&[1, 2, 3]).unwrap(); // 1 write (ingress copy)
        assert_eq!(a.stats().slab_writes, 1);
        let _ = m.data(); // reads are free
        let _ = m.slot_bytes();
        assert_eq!(a.stats().slab_writes, 1);
    }

    #[test]
    fn cross_thread_descriptor_handoff() {
        let a = arena(64);
        let (tx, rx) = std::sync::mpsc::channel::<MbufDesc>();
        let t = std::thread::spawn(move || {
            let mut sum = 0u64;
            for desc in rx {
                let m = adopt(desc).unwrap();
                sum += m.data()[0] as u64;
            }
            sum
        });
        for i in 0..1000u64 {
            let m = loop {
                match a.alloc_from(&[(i % 251) as u8]) {
                    Some(m) => break m,
                    None => std::thread::yield_now(),
                }
            };
            tx.send(m.into_desc()).unwrap();
        }
        drop(tx);
        let sum = t.join().unwrap();
        assert_eq!(sum, (0..1000u64).map(|i| i % 251).sum::<u64>());
        a.reclaim_credits();
        assert!(a.census_clean());
    }
}
