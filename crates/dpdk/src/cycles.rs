//! TSC-style cycle clock.
//!
//! The paper's testbed runs a Xeon E5-2690 v2 at 3 GHz; all cycle budgets in
//! the performance model are quoted against that clock. This module exposes a
//! monotonic cycle counter derived from `std::time::Instant`, scaled to the
//! same nominal frequency, so timestamps embedded in probe packets and
//! latency measurements are directly comparable to the model's numbers.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Nominal CPU frequency of the modelled machine (cycles per second).
pub const CPU_HZ: u64 = 3_000_000_000;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Current cycle count since process start (monotonic, ~ns resolution).
pub fn now() -> u64 {
    let ns = epoch().elapsed().as_nanos() as u64;
    // cycles = ns * 3 (at exactly 3 GHz), computed without overflow for
    // process lifetimes of centuries.
    ns.saturating_mul(CPU_HZ / 1_000_000_000)
}

/// Converts a cycle delta to wall time at the nominal frequency.
pub fn to_duration(cycles: u64) -> Duration {
    Duration::from_nanos(cycles / (CPU_HZ / 1_000_000_000))
}

/// Converts a wall-time duration to cycles at the nominal frequency.
pub fn from_duration(d: Duration) -> u64 {
    (d.as_nanos() as u64).saturating_mul(CPU_HZ / 1_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }

    #[test]
    fn advances_with_wall_time() {
        let a = now();
        std::thread::sleep(Duration::from_millis(2));
        let b = now();
        // 2 ms at 3 GHz is 6M cycles; allow generous slack for scheduling.
        assert!(b - a >= 3_000_000, "only {} cycles elapsed", b - a);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::from_micros(500);
        let c = from_duration(d);
        assert_eq!(c, 1_500_000);
        assert_eq!(to_duration(c), d);
    }
}
