//! TSC-style cycle clock.
//!
//! The paper's testbed runs a Xeon E5-2690 v2 at 3 GHz; all cycle budgets in
//! the performance model are quoted against that clock. This module exposes a
//! monotonic cycle counter derived from `std::time::Instant`, scaled to the
//! same nominal frequency, so timestamps embedded in probe packets and
//! latency measurements are directly comparable to the model's numbers.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Nominal CPU frequency of the modelled machine (cycles per second).
pub const CPU_HZ: u64 = 3_000_000_000;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Current cycle count since process start (monotonic, ~ns resolution).
pub fn now() -> u64 {
    let ns = epoch().elapsed().as_nanos() as u64;
    // cycles = ns * 3 (at exactly 3 GHz), computed without overflow for
    // process lifetimes of centuries.
    ns.saturating_mul(CPU_HZ / 1_000_000_000)
}

/// Converts a cycle delta to wall time at the nominal frequency.
///
/// Computed in u128 nanoseconds with rounding, so the result is exact to
/// the nanosecond for any frequency — not just ones that divide 1 GHz.
pub fn to_duration(cycles: u64) -> Duration {
    let ns = (u128::from(cycles) * 1_000_000_000 + u128::from(CPU_HZ) / 2) / u128::from(CPU_HZ);
    Duration::from_nanos(ns.min(u128::from(u64::MAX)) as u64)
}

/// Converts a wall-time duration to cycles at the nominal frequency.
///
/// Same u128 rounding arithmetic as [`to_duration`]; the pair round-trips
/// to within one cycle.
pub fn from_duration(d: Duration) -> u64 {
    let c = (d.as_nanos() * u128::from(CPU_HZ) + 500_000_000) / 1_000_000_000;
    c.min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }

    #[test]
    fn advances_with_wall_time() {
        let a = now();
        std::thread::sleep(Duration::from_millis(2));
        let b = now();
        // 2 ms at 3 GHz is 6M cycles; allow generous slack for scheduling.
        assert!(b - a >= 3_000_000, "only {} cycles elapsed", b - a);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::from_micros(500);
        let c = from_duration(d);
        assert_eq!(c, 1_500_000);
        assert_eq!(to_duration(c), d);
    }

    #[test]
    fn to_duration_does_not_truncate_sub_tick_cycles() {
        // 1 cycle at 3 GHz is a third of a nanosecond; the old integer
        // division floored it to 0 ns. Rounded u128 math keeps it visible.
        assert_eq!(to_duration(1), Duration::from_nanos(0)); // rounds down
        assert_eq!(to_duration(2), Duration::from_nanos(1)); // rounds up
        assert_eq!(to_duration(4), Duration::from_nanos(1));
        assert_eq!(to_duration(5), Duration::from_nanos(2));
    }

    #[test]
    fn roundtrip_is_tight_both_ways() {
        // ns-resolution durations survive a full from/to round trip exactly.
        for ns in [1u64, 3, 333, 1_000, 123_456_789, 86_400_000_000_000] {
            let d = Duration::from_nanos(ns);
            assert_eq!(to_duration(from_duration(d)), d, "ns = {ns}");
        }
        // Cycle counts survive to within one cycle (sub-ns information is
        // genuinely lost at 3 cycles/ns).
        for c in [1u64, 2, 7, 999, 1_500_000, 3_000_000_000, u64::MAX / 8] {
            let back = from_duration(to_duration(c));
            assert!(back.abs_diff(c) <= 1, "c = {c}, back = {back}");
        }
    }
}
