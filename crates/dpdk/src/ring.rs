//! Lock-free rings with DPDK burst semantics.
//!
//! [`spsc_ring`] is a bespoke single-producer/single-consumer bounded queue —
//! the exact topology of a `dpdkr` port ring and of the paper's bypass
//! channels (one VM produces, one consumer drains). The producer and consumer
//! sides are *owned handles*, so the single-producer/single-consumer
//! discipline is enforced by the type system instead of by convention.
//!
//! [`MpmcRing`] covers the remaining multi-producer cases (e.g. several PMD
//! threads injecting `packet-out`s into one port) by wrapping crossbeam's
//! proven `ArrayQueue`.

use crossbeam::queue::ArrayQueue;
use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Errors reported by ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The ring is full; the rejected value is returned to the caller.
    Full,
    /// The other endpoint has been dropped.
    Disconnected,
}

struct SpscInner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write (monotonically increasing).
    head: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// Safety: only one producer thread touches `head`-side slots and only one
// consumer thread touches `tail`-side slots; the handles below guarantee
// that statically (they are Send but not Clone/Sync).
unsafe impl<T: Send> Send for SpscInner<T> {}
unsafe impl<T: Send> Sync for SpscInner<T> {}

impl<T> SpscInner<T> {
    fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }
}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Drain any items still queued so their destructors run.
        let head = *self.head.get_mut();
        let mut tail = *self.tail.get_mut();
        while tail != head {
            let slot = &self.buf[tail & self.mask];
            unsafe { (*slot.get()).assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// Producing endpoint of an SPSC ring. Send to exactly one thread.
pub struct SpscProducer<T> {
    inner: Arc<SpscInner<T>>,
    /// Cached consumer tail to avoid reading the shared atomic on every
    /// enqueue (the classic SPSC optimisation DPDK also performs).
    cached_tail: usize,
}

/// Consuming endpoint of an SPSC ring. Send to exactly one thread.
pub struct SpscConsumer<T> {
    inner: Arc<SpscInner<T>>,
    cached_head: usize,
}

/// Creates an SPSC ring with capacity rounded up to a power of two
/// (minimum 2), like `rte_ring_create`.
pub fn spsc_ring<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(SpscInner {
        buf,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        SpscProducer {
            inner: Arc::clone(&inner),
            cached_tail: 0,
        },
        SpscConsumer {
            inner,
            cached_head: 0,
        },
    )
}

impl<T> SpscProducer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// True when the consumer handle has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.consumer_alive.load(Ordering::Acquire)
    }

    /// Items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots currently available to this producer.
    pub fn free_space(&mut self) -> usize {
        let head = self.inner.head.load(Ordering::Relaxed);
        self.cached_tail = self.inner.tail.load(Ordering::Acquire);
        self.capacity() - head.wrapping_sub(self.cached_tail)
    }

    /// Enqueues one item; on a full ring the item is handed back.
    pub fn enqueue(&mut self, value: T) -> Result<(), T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head.wrapping_sub(self.cached_tail) == self.capacity() {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head.wrapping_sub(self.cached_tail) == self.capacity() {
                return Err(value);
            }
        }
        let slot = &self.inner.buf[head & self.inner.mask];
        unsafe { (*slot.get()).write(value) };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues one item, yielding to the scheduler and retrying up to
    /// `retries` times on a full ring before handing the item back — the
    /// bounded-backpressure push a PMD fan-out uses so one slow peer can
    /// stall a sender only briefly, never indefinitely.
    pub fn enqueue_yielding(&mut self, value: T, retries: usize) -> Result<(), T> {
        let mut value = value;
        for _ in 0..retries {
            match self.enqueue(value) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    value = back;
                    std::thread::yield_now();
                }
            }
        }
        self.enqueue(value)
    }

    /// Enqueues as many items as fit, draining them from the front of
    /// `items`; returns how many were enqueued (DPDK burst semantics).
    pub fn enqueue_burst(&mut self, items: &mut Vec<T>) -> usize {
        let mut sent = 0;
        // drain() would be O(n) per item removed from the front; instead
        // enqueue in order and split off the remainder once.
        for item in items.iter() {
            // Check space without moving the item yet.
            let head = self.inner.head.load(Ordering::Relaxed);
            if head.wrapping_sub(self.cached_tail) == self.capacity() {
                self.cached_tail = self.inner.tail.load(Ordering::Acquire);
                if head.wrapping_sub(self.cached_tail) == self.capacity() {
                    break;
                }
            }
            let slot = &self.inner.buf[head & self.inner.mask];
            unsafe { (*slot.get()).write(std::ptr::read(item)) };
            self.inner
                .head
                .store(head.wrapping_add(1), Ordering::Release);
            sent += 1;
        }
        // The first `sent` items were moved out by ptr::read; forget them.
        unsafe {
            let remaining = items.len() - sent;
            let src = items.as_ptr().add(sent);
            let dst = items.as_mut_ptr();
            std::ptr::copy(src, dst, remaining);
            items.set_len(remaining);
        }
        sent
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.inner.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> SpscConsumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// True when the producer handle has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.producer_alive.load(Ordering::Acquire)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequeues one item, or `None` on an empty ring.
    pub fn dequeue(&mut self) -> Option<T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail == self.cached_head {
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if tail == self.cached_head {
                return None;
            }
        }
        let slot = &self.inner.buf[tail & self.inner.mask];
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Dequeues up to `max` items into `out`; returns how many arrived.
    pub fn dequeue_burst(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }
}

impl<T> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_alive.store(false, Ordering::Release);
    }
}

/// Multi-producer/multi-consumer bounded ring (crossbeam-backed).
pub struct MpmcRing<T> {
    queue: ArrayQueue<T>,
}

impl<T> MpmcRing<T> {
    /// Creates a ring with the given capacity (rounded up to ≥ 1).
    pub fn new(capacity: usize) -> MpmcRing<T> {
        MpmcRing {
            queue: ArrayQueue::new(capacity.max(1)),
        }
    }

    /// Enqueues one item; hands it back when full.
    pub fn enqueue(&self, value: T) -> Result<(), T> {
        self.queue.push(value)
    }

    /// Dequeues one item.
    pub fn dequeue(&self) -> Option<T> {
        self.queue.pop()
    }

    /// Dequeues up to `max` items into `out`.
    pub fn dequeue_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.queue.pop() {
                Some(v) => {
                    out.push(v);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut p, mut c) = spsc_ring::<u32>(8);
        for i in 0..8 {
            p.enqueue(i).unwrap();
        }
        assert_eq!(p.enqueue(99), Err(99));
        for i in 0..8 {
            assert_eq!(c.dequeue(), Some(i));
        }
        assert_eq!(c.dequeue(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = spsc_ring::<u8>(100);
        assert_eq!(p.capacity(), 128);
        let (p, _c) = spsc_ring::<u8>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn burst_enqueue_partial_on_full() {
        let (mut p, mut c) = spsc_ring::<u32>(4);
        let mut items: Vec<u32> = (0..6).collect();
        assert_eq!(p.enqueue_burst(&mut items), 4);
        assert_eq!(items, vec![4, 5]);
        let mut out = Vec::new();
        assert_eq!(c.dequeue_burst(&mut out, 16), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn enqueue_yielding_retries_then_returns_item() {
        let (mut p, mut c) = spsc_ring::<u32>(2);
        p.enqueue(1).unwrap();
        p.enqueue(2).unwrap();
        // Full ring, nobody draining: the item comes back after the
        // bounded retries instead of blocking forever.
        assert_eq!(p.enqueue_yielding(3, 4), Err(3));
        c.dequeue();
        assert_eq!(p.enqueue_yielding(3, 4), Ok(()));
    }

    #[test]
    fn disconnect_is_visible_both_ways() {
        let (p, c) = spsc_ring::<u8>(2);
        assert!(!p.is_disconnected());
        drop(c);
        assert!(p.is_disconnected());

        let (p2, c2) = spsc_ring::<u8>(2);
        drop(p2);
        assert!(c2.is_disconnected());
    }

    #[test]
    fn queued_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = spsc_ring::<D>(4);
        p.enqueue(D).map_err(|_| ()).unwrap();
        p.enqueue(D).map_err(|_| ()).unwrap();
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn two_thread_stress_preserves_sequence() {
        let (mut p, mut c) = spsc_ring::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                if p.enqueue(i).is_ok() {
                    i += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match c.dequeue() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn two_thread_burst_stress() {
        let (mut p, mut c) = spsc_ring::<u64>(32);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                let hi = (next + 8).min(N);
                let mut batch: Vec<u64> = (next..hi).collect();
                let sent = p.enqueue_burst(&mut batch) as u64;
                next += sent;
                if sent == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut out = Vec::new();
        let mut expected = 0u64;
        while expected < N {
            out.clear();
            if c.dequeue_burst(&mut out, 16) == 0 {
                std::thread::yield_now();
            }
            for v in &out {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn free_space_tracks_occupancy() {
        let (mut p, mut c) = spsc_ring::<u8>(4);
        assert_eq!(p.free_space(), 4);
        p.enqueue(1).unwrap();
        p.enqueue(2).unwrap();
        assert_eq!(p.free_space(), 2);
        c.dequeue();
        assert_eq!(p.free_space(), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mpmc_ring_basics() {
        let r = MpmcRing::new(4);
        r.enqueue(1).unwrap();
        r.enqueue(2).unwrap();
        let mut out = Vec::new();
        assert_eq!(r.dequeue_burst(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn mpmc_ring_multi_thread() {
        let r = std::sync::Arc::new(MpmcRing::new(128));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    while r.enqueue(i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..2 {
            let r = r.clone();
            let total = total.clone();
            handles.push(std::thread::spawn(move || loop {
                if total.load(Ordering::SeqCst) >= 2000 {
                    break;
                }
                if r.dequeue().is_some() {
                    total.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 2000);
    }
}
