//! Fixed-size packet buffer pools with `rte_mempool` semantics: allocation
//! never grows the pool, freeing returns the buffer for reuse, and exhaustion
//! is an observable condition (the classic cause of rx drops under load).

use crate::events;
use crate::mbuf::Mbuf;
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Counters describing pool behaviour since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Allocation attempts that failed because the pool was empty.
    pub alloc_failures: u64,
    /// Buffers returned to the pool.
    pub frees: u64,
    /// Returned buffers the pool never issued (double free or cross-pool
    /// confusion). These are dropped, but counted — must stay 0 in a
    /// healthy system.
    pub foreign_frees: u64,
}

pub(crate) struct MempoolInner {
    name: String,
    free: ArrayQueue<Box<[u8]>>,
    buf_size: usize,
    capacity: usize,
    allocs: AtomicU64,
    alloc_failures: AtomicU64,
    frees: AtomicU64,
    foreign_frees: AtomicU64,
}

impl MempoolInner {
    pub(crate) fn put_back(&self, buf: Box<[u8]>) {
        // Pool capacity equals the number of buffers ever created, so a push
        // can only fail if a foreign buffer is injected. The buffer is still
        // dropped, but the event is counted and exported — a silent discard
        // here previously made this whole leak class invisible.
        if self.free.push(buf).is_ok() {
            self.frees.fetch_add(1, Ordering::Relaxed);
        } else {
            self.foreign_frees.fetch_add(1, Ordering::Relaxed);
            events::emit("mempool_foreign_free", 1);
        }
    }
}

/// A pool of equally-sized packet buffers shared by producers and consumers.
///
/// Clone is cheap (`Arc`); all clones draw from the same storage.
#[derive(Clone)]
pub struct Mempool {
    inner: Arc<MempoolInner>,
}

impl Mempool {
    /// Creates a pool of `capacity` buffers of `buf_size` bytes each.
    pub fn new(name: impl Into<String>, capacity: usize, buf_size: usize) -> Mempool {
        assert!(capacity > 0, "mempool capacity must be positive");
        assert!(buf_size > 0, "mempool buffer size must be positive");
        let free = ArrayQueue::new(capacity);
        for _ in 0..capacity {
            free.push(vec![0u8; buf_size].into_boxed_slice())
                .unwrap_or_else(|_| unreachable!("queue sized to capacity"));
        }
        Mempool {
            inner: Arc::new(MempoolInner {
                name: name.into(),
                free,
                buf_size,
                capacity,
                allocs: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
                frees: AtomicU64::new(0),
                foreign_frees: AtomicU64::new(0),
            }),
        }
    }

    /// Pool with the defaults used across the reproduction
    /// (2048 B buffers, like `RTE_MBUF_DEFAULT_BUF_SIZE`).
    pub fn default_for(name: impl Into<String>, capacity: usize) -> Mempool {
        Mempool::new(name, capacity, crate::DEFAULT_BUF_SIZE)
    }

    /// Allocates one mbuf, or `None` when the pool is exhausted.
    pub fn alloc(&self) -> Option<Mbuf> {
        match self.inner.free.pop() {
            Some(buf) => {
                self.inner.allocs.fetch_add(1, Ordering::Relaxed);
                Some(Mbuf::from_pool(buf, Arc::clone(&self.inner)))
            }
            None => {
                self.inner.alloc_failures.fetch_add(1, Ordering::Relaxed);
                events::emit("mempool_alloc_failure", 1);
                None
            }
        }
    }

    /// Allocates an mbuf and copies `data` into it. Fails if the pool is
    /// empty or the data does not fit the data room (buffer minus headroom).
    pub fn alloc_from(&self, data: &[u8]) -> Option<Mbuf> {
        let mut m = self.alloc()?;
        if data.len() > m.tailroom() {
            return None; // m drops here and returns to the pool
        }
        m.set_len(data.len());
        m.data_mut().copy_from_slice(data);
        Some(m)
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.inner.free.len()
    }

    /// Buffers currently in flight (allocated, not yet freed).
    pub fn in_use(&self) -> usize {
        self.inner.capacity - self.inner.free.len()
    }

    /// Total buffers owned by the pool.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Size of each buffer in bytes.
    pub fn buf_size(&self) -> usize {
        self.inner.buf_size
    }

    /// Pool name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            allocs: self.inner.allocs.load(Ordering::Relaxed),
            alloc_failures: self.inner.alloc_failures.load(Ordering::Relaxed),
            frees: self.inner.frees.load(Ordering::Relaxed),
            foreign_frees: self.inner.foreign_frees.load(Ordering::Relaxed),
        }
    }

    /// Non-owning reference for registries (telemetry) that must not keep
    /// a dead pool alive.
    pub fn weak(&self) -> WeakMempool {
        WeakMempool {
            inner: Arc::downgrade(&self.inner),
        }
    }
}

/// Non-owning mempool reference; see [`Mempool::weak`].
#[derive(Clone)]
pub struct WeakMempool {
    inner: Weak<MempoolInner>,
}

impl WeakMempool {
    /// Upgrades to a live pool handle, if the pool still exists.
    pub fn upgrade(&self) -> Option<Mempool> {
        self.inner.upgrade().map(|inner| Mempool { inner })
    }
}

impl std::fmt::Debug for Mempool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mempool")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("available", &self.available())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted_then_recycle() {
        let pool = Mempool::new("t", 4, 256);
        let bufs: Vec<_> = (0..4).map(|_| pool.alloc().unwrap()).collect();
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.in_use(), 4);
        assert!(pool.alloc().is_none());
        drop(bufs);
        assert_eq!(pool.available(), 4);
        assert!(pool.alloc().is_some());
        let s = pool.stats();
        assert_eq!(s.allocs, 5);
        assert_eq!(s.alloc_failures, 1);
        // 4 explicit drops plus the temporary from the final alloc.
        assert_eq!(s.frees, 5);
    }

    #[test]
    fn alloc_from_copies_data() {
        let pool = Mempool::new("t", 2, 128);
        let m = pool.alloc_from(&[1, 2, 3]).unwrap();
        assert_eq!(m.data(), &[1, 2, 3]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn alloc_from_rejects_oversized() {
        let pool = Mempool::new("t", 2, 8);
        assert!(pool.alloc_from(&[0u8; 9]).is_none());
        // The failed copy must not leak a buffer.
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn foreign_frees_are_counted_not_silently_dropped() {
        let pool = Mempool::new("t", 2, 64);
        // Full pool + an injected buffer it never issued: the push fails.
        pool.inner.put_back(vec![0u8; 64].into_boxed_slice());
        let s = pool.stats();
        assert_eq!(s.foreign_frees, 1);
        assert_eq!(s.frees, 0, "a foreign free is not a free");
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn weak_handle_upgrades_while_pool_lives() {
        let pool = Mempool::new("t", 1, 64);
        let weak = pool.weak();
        assert!(weak.upgrade().is_some());
        drop(pool);
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn clones_share_storage() {
        let pool = Mempool::new("t", 1, 64);
        let pool2 = pool.clone();
        let m = pool.alloc().unwrap();
        assert!(pool2.alloc().is_none());
        drop(m);
        assert!(pool2.alloc().is_some());
    }

    #[test]
    fn cross_thread_recycling() {
        let pool = Mempool::new("t", 64, 64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        if let Some(m) = p.alloc() {
                            drop(m);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.available(), 64);
    }
}
