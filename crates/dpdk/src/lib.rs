//! # dpdk-sim
//!
//! A faithful, process-local substitute for the slice of DPDK that the paper's
//! system depends on: packet buffers ([`Mbuf`]) recycled through fixed-size
//! pools ([`Mempool`]), lock-free rings with DPDK burst semantics
//! ([`ring`]), a poll-mode device trait ([`EthDev`]) and a TSC-style cycle
//! clock ([`cycles`]).
//!
//! ## Fidelity notes
//!
//! * `dpdkr` ports and the paper's bypass channels are *single-producer /
//!   single-consumer* ring pairs in shared memory. The bespoke
//!   [`ring::spsc_ring`] reproduces exactly that topology with an ownership-
//!   typed API (`SpscProducer` / `SpscConsumer` handles), so misuse is a
//!   compile error rather than a data race.
//! * Where DPDK offers multi-producer rings (e.g. several PMD threads feeding
//!   one port) the [`ring::MpmcRing`] wrapper delegates to
//!   `crossbeam::queue::ArrayQueue`, a proven lock-free MPMC queue, rather
//!   than re-deriving the rte_ring CAS protocol — same contract, lower risk.
//! * Mbufs carry the few metadata fields the reproduction needs (input port,
//!   a 64-bit user scratch word and a timestamp), and return their buffer to
//!   the owning pool on drop, exactly like `rte_pktmbuf_free`.
//! * The shared-memory highway allocates from [`Arena`] segments whose
//!   handles are **offset-based** ([`MbufDesc`]): valid in any process that
//!   maps the segment, with refcounted multi-reader handoff and a
//!   credit-return ring for cross-mapping recycling — the representation an
//!   ivshmem BAR actually permits.

pub mod arena;
pub mod cycles;
pub mod ethdev;
pub mod events;
pub mod mbuf;
pub mod mempool;
pub mod ring;

pub use arena::{Arena, ArenaMbuf, ArenaStats, MbufDesc, WeakArena};
pub use ethdev::{DevStats, EthDev, LoopbackDev};
pub use mbuf::Mbuf;
pub use mempool::{Mempool, MempoolStats, WeakMempool};
pub use ring::{spsc_ring, MpmcRing, RingError, SpscConsumer, SpscProducer};

/// Default mbuf data room, matching DPDK's `RTE_MBUF_DEFAULT_BUF_SIZE` minus
/// headroom — big enough for a 1500 B MTU frame plus slack.
pub const DEFAULT_BUF_SIZE: usize = 2048;

/// Default burst size used by PMD loops throughout the reproduction,
/// matching DPDK's customary `MAX_PKT_BURST`.
pub const DEFAULT_BURST: usize = 32;
