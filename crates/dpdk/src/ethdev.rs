//! The poll-mode device abstraction every traffic endpoint implements:
//! simulated NICs, traffic generators and the vSwitch's view of its ports.

use crate::Mbuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of device counters, mirroring `rte_eth_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevStats {
    /// Packets successfully received.
    pub ipackets: u64,
    /// Packets successfully transmitted.
    pub opackets: u64,
    /// Bytes received.
    pub ibytes: u64,
    /// Bytes transmitted.
    pub obytes: u64,
    /// Packets dropped on the receive side (e.g. full queue, no mbufs).
    pub imissed: u64,
    /// Packets dropped on the transmit side (e.g. link saturated).
    pub odropped: u64,
}

/// Shared atomic counters implementations use to build [`DevStats`].
#[derive(Debug, Default)]
pub struct DevCounters {
    pub ipackets: AtomicU64,
    pub opackets: AtomicU64,
    pub ibytes: AtomicU64,
    pub obytes: AtomicU64,
    pub imissed: AtomicU64,
    pub odropped: AtomicU64,
}

impl DevCounters {
    /// Records `n` received packets totalling `bytes`.
    pub fn rx(&self, n: u64, bytes: u64) {
        self.ipackets.fetch_add(n, Ordering::Relaxed);
        self.ibytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` transmitted packets totalling `bytes`.
    pub fn tx(&self, n: u64, bytes: u64) {
        self.opackets.fetch_add(n, Ordering::Relaxed);
        self.obytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Takes a coherent-enough snapshot for reporting.
    pub fn snapshot(&self) -> DevStats {
        DevStats {
            ipackets: self.ipackets.load(Ordering::Relaxed),
            opackets: self.opackets.load(Ordering::Relaxed),
            ibytes: self.ibytes.load(Ordering::Relaxed),
            obytes: self.obytes.load(Ordering::Relaxed),
            imissed: self.imissed.load(Ordering::Relaxed),
            odropped: self.odropped.load(Ordering::Relaxed),
        }
    }
}

/// A poll-mode Ethernet device.
///
/// Methods take `&self`; implementations use interior mutability so a device
/// can be polled by its PMD thread while the control plane reads statistics.
pub trait EthDev: Send + Sync {
    /// Device name for diagnostics.
    fn name(&self) -> &str;

    /// Receives up to `max` packets into `out`; returns how many arrived.
    fn rx_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize;

    /// Transmits packets from the front of `pkts`, draining the ones
    /// accepted; returns how many were sent. Packets left in the vector were
    /// not transmitted (caller decides whether to retry or drop).
    fn tx_burst(&self, pkts: &mut Vec<Mbuf>) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> DevStats;

    /// Link state; simulated devices are always up unless they model faults.
    fn link_up(&self) -> bool {
        true
    }
}

/// A loopback device: everything transmitted becomes receivable, bounded by
/// an internal queue. Useful in tests and as the simplest EthDev reference.
pub struct LoopbackDev {
    name: String,
    queue: crate::ring::MpmcRing<Mbuf>,
    counters: DevCounters,
}

impl LoopbackDev {
    /// Creates a loopback device holding at most `capacity` packets.
    pub fn new(name: impl Into<String>, capacity: usize) -> LoopbackDev {
        LoopbackDev {
            name: name.into(),
            queue: crate::ring::MpmcRing::new(capacity),
            counters: DevCounters::default(),
        }
    }
}

impl EthDev for LoopbackDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let before = out.len();
        let n = self.queue.dequeue_burst(out, max);
        let bytes: u64 = out[before..].iter().map(|m| m.len() as u64).sum();
        self.counters.rx(n as u64, bytes);
        n
    }

    fn tx_burst(&self, pkts: &mut Vec<Mbuf>) -> usize {
        let mut sent = 0;
        while !pkts.is_empty() {
            let m = pkts.remove(0);
            let bytes = m.len() as u64;
            match self.queue.enqueue(m) {
                Ok(()) => {
                    self.counters.tx(1, bytes);
                    sent += 1;
                }
                Err(m) => {
                    pkts.insert(0, m);
                    break;
                }
            }
        }
        sent
    }

    fn stats(&self) -> DevStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrips_packets() {
        let dev = LoopbackDev::new("lo", 8);
        let mut tx = vec![Mbuf::from_slice(&[1, 2, 3]), Mbuf::from_slice(&[4, 5])];
        assert_eq!(dev.tx_burst(&mut tx), 2);
        assert!(tx.is_empty());

        let mut rx = Vec::new();
        assert_eq!(dev.rx_burst(&mut rx, 10), 2);
        assert_eq!(rx[0].data(), &[1, 2, 3]);
        assert_eq!(rx[1].data(), &[4, 5]);

        let s = dev.stats();
        assert_eq!(s.opackets, 2);
        assert_eq!(s.ipackets, 2);
        assert_eq!(s.obytes, 5);
        assert_eq!(s.ibytes, 5);
    }

    #[test]
    fn loopback_backpressure_leaves_unsent_packets() {
        let dev = LoopbackDev::new("lo", 1);
        let mut tx = vec![Mbuf::from_slice(&[1]), Mbuf::from_slice(&[2])];
        assert_eq!(dev.tx_burst(&mut tx), 1);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].data(), &[2]);
    }

    #[test]
    fn rx_burst_respects_max() {
        let dev = LoopbackDev::new("lo", 8);
        let mut tx: Vec<Mbuf> = (0..5).map(|i| Mbuf::from_slice(&[i])).collect();
        dev.tx_burst(&mut tx);
        let mut rx = Vec::new();
        assert_eq!(dev.rx_burst(&mut rx, 3), 3);
        assert_eq!(dev.rx_burst(&mut rx, 3), 2);
    }
}
