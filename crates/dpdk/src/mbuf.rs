//! Packet buffer handles with `rte_mbuf` semantics: headroom for header
//! prepends, pool recycling on drop, and the metadata words the dataplane
//! carries alongside packet bytes.

use crate::mempool::MempoolInner;
use std::sync::Arc;

/// Headroom reserved at the front of every pooled buffer, like
/// `RTE_PKTMBUF_HEADROOM`.
pub const MBUF_HEADROOM: usize = 128;

/// Tailroom reserved after the packet in detached mbufs, so consumers can
/// append trailers the way `rte_pktmbuf_append` users expect. (Pooled mbufs
/// get whatever their pool's buffer size leaves; real DPDK buffers are a
/// fixed 2 KiB regardless of packet length, so spare tailroom is the norm.)
pub const MBUF_TAILROOM: usize = 128;

/// A packet buffer handle.
///
/// Owns (exclusively) a byte buffer; when dropped, a pooled mbuf returns its
/// buffer to the originating [`crate::Mempool`]. Detached mbufs (created via
/// [`Mbuf::from_vec`]) simply free their memory — convenient for tests.
pub struct Mbuf {
    buf: Option<Box<[u8]>>,
    pool: Option<Arc<MempoolInner>>,
    data_off: usize,
    data_len: usize,
    /// Ingress port as understood by whoever received the packet.
    pub port: u32,
    /// Free-use scratch word (DPDK's `udata64`). The traffic generator keeps
    /// the probe sequence number here for O(1) access.
    pub udata: u64,
    /// Cycle timestamp, stamped by generators/NICs for latency probes.
    pub timestamp: u64,
}

impl Mbuf {
    pub(crate) fn from_pool(buf: Box<[u8]>, pool: Arc<MempoolInner>) -> Mbuf {
        // Small pools (tests) cap the headroom at half the buffer so there
        // is always usable data room.
        let data_off = MBUF_HEADROOM.min(buf.len() / 2);
        Mbuf {
            buf: Some(buf),
            pool: Some(pool),
            data_off,
            data_len: 0,
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    /// Creates a detached (pool-less) mbuf owning `data`, with no headroom.
    pub fn from_vec(data: Vec<u8>) -> Mbuf {
        let data_len = data.len();
        Mbuf {
            buf: Some(data.into_boxed_slice()),
            pool: None,
            data_off: 0,
            data_len,
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    /// Creates a detached mbuf copying `data`, with standard headroom so
    /// headers can still be prepended and tailroom so trailers can be
    /// appended.
    pub fn from_slice(data: &[u8]) -> Mbuf {
        let mut buf = vec![0u8; MBUF_HEADROOM + data.len() + MBUF_TAILROOM];
        buf[MBUF_HEADROOM..MBUF_HEADROOM + data.len()].copy_from_slice(data);
        Mbuf {
            buf: Some(buf.into_boxed_slice()),
            pool: None,
            data_off: MBUF_HEADROOM,
            data_len: data.len(),
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    fn raw(&self) -> &[u8] {
        self.buf.as_deref().expect("mbuf buffer present until drop")
    }

    fn raw_mut(&mut self) -> &mut [u8] {
        self.buf
            .as_deref_mut()
            .expect("mbuf buffer present until drop")
    }

    /// Packet bytes.
    pub fn data(&self) -> &[u8] {
        &self.raw()[self.data_off..self.data_off + self.data_len]
    }

    /// Mutable packet bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        let (off, len) = (self.data_off, self.data_len);
        &mut self.raw_mut()[off..off + len]
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.data_len
    }

    /// True when the mbuf carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data_len == 0
    }

    /// Bytes available in front of the packet (for header prepends).
    pub fn headroom(&self) -> usize {
        self.data_off
    }

    /// Bytes available after the packet (for appends).
    pub fn tailroom(&self) -> usize {
        self.raw().len() - self.data_off - self.data_len
    }

    /// Resizes the packet in place (must fit in the tailroom). New bytes are
    /// whatever the buffer previously held — callers overwrite them.
    pub fn set_len(&mut self, len: usize) {
        assert!(
            self.data_off + len <= self.raw().len(),
            "mbuf set_len {len} exceeds buffer"
        );
        self.data_len = len;
    }

    /// Extends the packet by `n` bytes at the tail (like `rte_pktmbuf_append`)
    /// and returns the newly exposed region.
    pub fn append(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.tailroom(), "mbuf append {n} exceeds tailroom");
        let start = self.data_off + self.data_len;
        self.data_len += n;
        &mut self.raw_mut()[start..start + n]
    }

    /// Prepends `n` bytes at the head (like `rte_pktmbuf_prepend`) and
    /// returns the newly exposed region.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.data_off, "mbuf prepend {n} exceeds headroom");
        self.data_off -= n;
        self.data_len += n;
        let off = self.data_off;
        &mut self.raw_mut()[off..off + n]
    }

    /// Removes `n` bytes from the head (like `rte_pktmbuf_adj`).
    pub fn adj(&mut self, n: usize) {
        assert!(n <= self.data_len, "mbuf adj {n} exceeds length");
        self.data_off += n;
        self.data_len -= n;
    }

    /// Removes `n` bytes from the tail (like `rte_pktmbuf_trim`).
    pub fn trim(&mut self, n: usize) {
        assert!(n <= self.data_len, "mbuf trim {n} exceeds length");
        self.data_len -= n;
    }

    /// Copies the packet bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data().to_vec()
    }

    /// Deep-copies the packet into a detached mbuf (fresh headroom),
    /// preserving metadata. Used for multi-output actions (flood), where
    /// DPDK would clone the mbuf.
    pub fn duplicate(&self) -> Mbuf {
        let mut copy = Mbuf::from_slice(self.data());
        copy.port = self.port;
        copy.udata = self.udata;
        copy.timestamp = self.timestamp;
        copy
    }
}

impl Drop for Mbuf {
    fn drop(&mut self) {
        if let (Some(buf), Some(pool)) = (self.buf.take(), self.pool.take()) {
            pool.put_back(buf);
        }
    }
}

impl std::fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mbuf")
            .field("len", &self.data_len)
            .field("port", &self.port)
            .field("udata", &self.udata)
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mempool;

    #[test]
    fn pooled_mbuf_has_headroom_and_recycles() {
        let pool = Mempool::new("t", 1, 2048);
        let mut m = pool.alloc().unwrap();
        assert_eq!(m.headroom(), MBUF_HEADROOM);
        assert_eq!(m.len(), 0);
        m.append(64).fill(0xAA);
        assert_eq!(m.len(), 64);
        assert_eq!(m.data()[0], 0xAA);
        drop(m);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn prepend_and_adj_are_inverses() {
        let mut m = Mbuf::from_slice(&[1, 2, 3, 4]);
        m.prepend(2).copy_from_slice(&[9, 9]);
        assert_eq!(m.data(), &[9, 9, 1, 2, 3, 4]);
        m.adj(2);
        assert_eq!(m.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn trim_shortens_tail() {
        let mut m = Mbuf::from_vec(vec![1, 2, 3, 4]);
        m.trim(3);
        assert_eq!(m.data(), &[1]);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds headroom")]
    fn prepend_beyond_headroom_panics() {
        let mut m = Mbuf::from_vec(vec![0u8; 4]); // from_vec has no headroom
        m.prepend(1);
    }

    #[test]
    #[should_panic(expected = "exceeds tailroom")]
    fn append_beyond_tailroom_panics() {
        let pool = Mempool::new("t", 1, 130);
        let mut m = pool.alloc().unwrap();
        m.append(1024);
    }

    #[test]
    fn metadata_fields_travel_with_the_buffer() {
        let mut m = Mbuf::from_slice(&[0; 8]);
        m.port = 7;
        m.udata = 0xdead_beef;
        m.timestamp = 42;
        assert_eq!((m.port, m.udata, m.timestamp), (7, 0xdead_beef, 42));
    }

    #[test]
    fn detached_mbuf_does_not_touch_any_pool() {
        let pool = Mempool::new("t", 1, 64);
        let before = pool.stats();
        let m = Mbuf::from_slice(&[1, 2, 3]);
        drop(m);
        assert_eq!(pool.stats(), before);
    }
}
