//! Packet buffer handles with `rte_mbuf` semantics: headroom for header
//! prepends, pool recycling on drop, and the metadata words the dataplane
//! carries alongside packet bytes.

use crate::arena::{ArenaMbuf, MbufDesc};
use crate::events;
use crate::mempool::MempoolInner;
use std::sync::Arc;

/// Headroom reserved at the front of every pooled buffer, like
/// `RTE_PKTMBUF_HEADROOM`.
pub const MBUF_HEADROOM: usize = 128;

/// Tailroom reserved after the packet in detached mbufs, so consumers can
/// append trailers the way `rte_pktmbuf_append` users expect. (Pooled mbufs
/// get whatever their pool's buffer size leaves; real DPDK buffers are a
/// fixed 2 KiB regardless of packet length, so spare tailroom is the norm.)
pub const MBUF_TAILROOM: usize = 128;

/// Backing storage of an [`Mbuf`]: a process-private heap buffer
/// (pooled or detached), or a slot in a shared [`crate::Arena`] segment.
enum Storage {
    Boxed {
        buf: Option<Box<[u8]>>,
        pool: Option<Arc<MempoolInner>>,
    },
    Arena(ArenaMbuf),
}

/// A packet buffer handle.
///
/// Owns a byte buffer; when dropped, a pooled mbuf returns its buffer to
/// the originating [`crate::Mempool`], an arena-backed mbuf releases its
/// slot reference back to the [`crate::Arena`] (freelist or credit ring).
/// Detached mbufs (created via [`Mbuf::from_vec`]) simply free their
/// memory — convenient for tests.
pub struct Mbuf {
    storage: Storage,
    data_off: usize,
    data_len: usize,
    /// Ingress port as understood by whoever received the packet.
    pub port: u32,
    /// Free-use scratch word (DPDK's `udata64`). The traffic generator keeps
    /// the probe sequence number here for O(1) access.
    pub udata: u64,
    /// Cycle timestamp, stamped by generators/NICs for latency probes.
    pub timestamp: u64,
}

impl Mbuf {
    pub(crate) fn from_pool(buf: Box<[u8]>, pool: Arc<MempoolInner>) -> Mbuf {
        // Small pools (tests) cap the headroom at half the buffer so there
        // is always usable data room.
        let data_off = MBUF_HEADROOM.min(buf.len() / 2);
        Mbuf {
            storage: Storage::Boxed {
                buf: Some(buf),
                pool: Some(pool),
            },
            data_off,
            data_len: 0,
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    /// Creates a detached (pool-less) mbuf owning `data`, with no headroom.
    pub fn from_vec(data: Vec<u8>) -> Mbuf {
        let data_len = data.len();
        Mbuf {
            storage: Storage::Boxed {
                buf: Some(data.into_boxed_slice()),
                pool: None,
            },
            data_off: 0,
            data_len,
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    /// Creates a detached mbuf copying `data`, with standard headroom so
    /// headers can still be prepended and tailroom so trailers can be
    /// appended.
    pub fn from_slice(data: &[u8]) -> Mbuf {
        let mut buf = vec![0u8; MBUF_HEADROOM + data.len() + MBUF_TAILROOM];
        buf[MBUF_HEADROOM..MBUF_HEADROOM + data.len()].copy_from_slice(data);
        Mbuf {
            storage: Storage::Boxed {
                buf: Some(buf.into_boxed_slice()),
                pool: None,
            },
            data_off: MBUF_HEADROOM,
            data_len: data.len(),
            port: 0,
            udata: 0,
            timestamp: 0,
        }
    }

    /// Wraps an arena slot in the generic mbuf API. The mbuf addresses the
    /// slot with its own offsets; layout is written back into the handle on
    /// [`Mbuf::try_into_desc`].
    pub fn from_arena(am: ArenaMbuf) -> Mbuf {
        Mbuf {
            data_off: am.data_off(),
            data_len: am.len(),
            port: am.port,
            udata: am.udata,
            timestamp: am.timestamp,
            storage: Storage::Arena(am),
        }
    }

    /// True when the payload lives in a shared arena segment (descriptor-
    /// only enqueue applies).
    pub fn is_arena(&self) -> bool {
        matches!(self.storage, Storage::Arena(_))
    }

    /// Segment id of arena-backed payload (diagnostics / census tests).
    pub fn arena_segment_id(&self) -> Option<u64> {
        match &self.storage {
            Storage::Arena(am) => Some(am.segment_id()),
            Storage::Boxed { .. } => None,
        }
    }

    /// Converts an arena-backed mbuf into its ring descriptor (the
    /// zero-copy enqueue). Boxed mbufs come back unchanged in `Err` so the
    /// caller can enqueue them by value.
    pub fn try_into_desc(mut self) -> Result<MbufDesc, Mbuf> {
        if !self.is_arena() {
            return Err(self);
        }
        let empty = Storage::Boxed {
            buf: None,
            pool: None,
        };
        let Storage::Arena(mut am) = std::mem::replace(&mut self.storage, empty) else {
            unreachable!("checked is_arena above")
        };
        am.set_layout(self.data_off, self.data_len);
        am.port = self.port;
        am.udata = self.udata;
        am.timestamp = self.timestamp;
        Ok(am.into_desc())
    }

    fn raw(&self) -> &[u8] {
        match &self.storage {
            Storage::Boxed { buf, .. } => buf.as_deref().expect("mbuf buffer present until drop"),
            Storage::Arena(am) => am.slot_bytes(),
        }
    }

    /// Ensures exclusive ownership of the underlying bytes before handing
    /// out `&mut`. Boxed storage is always exclusive. A shared arena slot
    /// first tries copy-on-write inside the arena; if the arena is
    /// exhausted it detaches to a private heap copy of the slot (counted as
    /// `arena_cow_detach` — the packet leaves the zero-copy domain but
    /// correctness is preserved).
    fn make_writable(&mut self) {
        if let Storage::Arena(am) = &mut self.storage {
            if !am.is_unique() && !am.make_unique() {
                let buf = am.slot_bytes().to_vec().into_boxed_slice();
                events::emit("arena_cow_detach", 1);
                self.storage = Storage::Boxed {
                    buf: Some(buf),
                    pool: None,
                };
            }
        }
    }

    fn raw_mut(&mut self) -> &mut [u8] {
        self.make_writable();
        match &mut self.storage {
            Storage::Boxed { buf, .. } => {
                buf.as_deref_mut().expect("mbuf buffer present until drop")
            }
            Storage::Arena(am) => am.slot_bytes_mut(),
        }
    }

    /// Packet bytes.
    pub fn data(&self) -> &[u8] {
        &self.raw()[self.data_off..self.data_off + self.data_len]
    }

    /// Mutable packet bytes. On a shared arena slot this copies-on-write
    /// first (see `Mbuf::raw_mut`'s helper), so writers never alias
    /// readers.
    pub fn data_mut(&mut self) -> &mut [u8] {
        let (off, len) = (self.data_off, self.data_len);
        &mut self.raw_mut()[off..off + len]
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.data_len
    }

    /// True when the mbuf carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data_len == 0
    }

    /// Bytes available in front of the packet (for header prepends).
    pub fn headroom(&self) -> usize {
        self.data_off
    }

    /// Bytes available after the packet (for appends).
    pub fn tailroom(&self) -> usize {
        self.raw().len() - self.data_off - self.data_len
    }

    /// Resizes the packet in place (must fit in the tailroom). New bytes are
    /// whatever the buffer previously held — callers overwrite them.
    pub fn set_len(&mut self, len: usize) {
        assert!(
            self.data_off + len <= self.raw().len(),
            "mbuf set_len {len} exceeds buffer"
        );
        self.data_len = len;
    }

    /// Extends the packet by `n` bytes at the tail (like `rte_pktmbuf_append`)
    /// and returns the newly exposed region.
    pub fn append(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.tailroom(), "mbuf append {n} exceeds tailroom");
        let start = self.data_off + self.data_len;
        self.data_len += n;
        &mut self.raw_mut()[start..start + n]
    }

    /// Prepends `n` bytes at the head (like `rte_pktmbuf_prepend`) and
    /// returns the newly exposed region.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.data_off, "mbuf prepend {n} exceeds headroom");
        self.data_off -= n;
        self.data_len += n;
        let off = self.data_off;
        &mut self.raw_mut()[off..off + n]
    }

    /// Removes `n` bytes from the head (like `rte_pktmbuf_adj`).
    pub fn adj(&mut self, n: usize) {
        assert!(n <= self.data_len, "mbuf adj {n} exceeds length");
        self.data_off += n;
        self.data_len -= n;
    }

    /// Removes `n` bytes from the tail (like `rte_pktmbuf_trim`).
    pub fn trim(&mut self, n: usize) {
        assert!(n <= self.data_len, "mbuf trim {n} exceeds length");
        self.data_len -= n;
    }

    /// Copies the packet bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data().to_vec()
    }

    /// Clones the packet for multi-output actions (flood), preserving
    /// metadata. An arena-backed mbuf clones by reference — both handles
    /// share the slot read-only and copy-on-write protects any later
    /// mutation — so a flood of an arena packet touches no payload bytes.
    /// Boxed mbufs deep-copy into a detached buffer, as before.
    pub fn duplicate(&self) -> Mbuf {
        let mut copy = match &self.storage {
            Storage::Arena(am) => Mbuf {
                storage: Storage::Arena(am.clone_ref()),
                data_off: self.data_off,
                data_len: self.data_len,
                port: 0,
                udata: 0,
                timestamp: 0,
            },
            Storage::Boxed { .. } => Mbuf::from_slice(self.data()),
        };
        copy.port = self.port;
        copy.udata = self.udata;
        copy.timestamp = self.timestamp;
        copy
    }
}

impl Drop for Mbuf {
    fn drop(&mut self) {
        if let Storage::Boxed { buf, pool } = &mut self.storage {
            if let (Some(buf), Some(pool)) = (buf.take(), pool.take()) {
                pool.put_back(buf);
            }
        }
        // Arena storage: ArenaMbuf's own Drop releases the slot reference.
    }
}

impl std::fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.storage {
            Storage::Boxed { pool: Some(_), .. } => "pooled",
            Storage::Boxed { pool: None, .. } => "detached",
            Storage::Arena(_) => "arena",
        };
        f.debug_struct("Mbuf")
            .field("len", &self.data_len)
            .field("port", &self.port)
            .field("udata", &self.udata)
            .field("backend", &backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mempool;

    #[test]
    fn pooled_mbuf_has_headroom_and_recycles() {
        let pool = Mempool::new("t", 1, 2048);
        let mut m = pool.alloc().unwrap();
        assert_eq!(m.headroom(), MBUF_HEADROOM);
        assert_eq!(m.len(), 0);
        m.append(64).fill(0xAA);
        assert_eq!(m.len(), 64);
        assert_eq!(m.data()[0], 0xAA);
        drop(m);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn prepend_and_adj_are_inverses() {
        let mut m = Mbuf::from_slice(&[1, 2, 3, 4]);
        m.prepend(2).copy_from_slice(&[9, 9]);
        assert_eq!(m.data(), &[9, 9, 1, 2, 3, 4]);
        m.adj(2);
        assert_eq!(m.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn trim_shortens_tail() {
        let mut m = Mbuf::from_vec(vec![1, 2, 3, 4]);
        m.trim(3);
        assert_eq!(m.data(), &[1]);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds headroom")]
    fn prepend_beyond_headroom_panics() {
        let mut m = Mbuf::from_vec(vec![0u8; 4]); // from_vec has no headroom
        m.prepend(1);
    }

    #[test]
    #[should_panic(expected = "exceeds tailroom")]
    fn append_beyond_tailroom_panics() {
        let pool = Mempool::new("t", 1, 130);
        let mut m = pool.alloc().unwrap();
        m.append(1024);
    }

    #[test]
    fn metadata_fields_travel_with_the_buffer() {
        let mut m = Mbuf::from_slice(&[0; 8]);
        m.port = 7;
        m.udata = 0xdead_beef;
        m.timestamp = 42;
        assert_eq!((m.port, m.udata, m.timestamp), (7, 0xdead_beef, 42));
    }

    #[test]
    fn detached_mbuf_does_not_touch_any_pool() {
        let pool = Mempool::new("t", 1, 64);
        let before = pool.stats();
        let m = Mbuf::from_slice(&[1, 2, 3]);
        drop(m);
        assert_eq!(pool.stats(), before);
    }

    #[test]
    fn arena_backed_duplicate_shares_the_slot() {
        let arena = crate::Arena::new("t", 4, 512);
        let m = Mbuf::from_arena(arena.alloc_from(&[1, 2, 3]).unwrap());
        let writes_after_ingress = arena.stats().slab_writes;
        let copy = m.duplicate();
        assert_eq!(copy.data(), &[1, 2, 3]);
        assert!(copy.is_arena());
        assert_eq!(
            arena.stats().slab_writes,
            writes_after_ingress,
            "flood clone must not touch the slab"
        );
        assert_eq!(arena.in_use(), 1, "one slot, two references");
        drop((m, copy));
        assert!(arena.census_clean());
    }

    #[test]
    fn shared_arena_mbuf_copies_on_write() {
        let arena = crate::Arena::new("t", 4, 512);
        let mut m = Mbuf::from_arena(arena.alloc_from(&[7, 7, 7]).unwrap());
        let reader = m.duplicate();
        m.data_mut()[0] = 1;
        assert_eq!(reader.data(), &[7, 7, 7], "reader unaffected by COW");
        assert_eq!(m.data(), &[1, 7, 7]);
        assert_eq!(arena.stats().cow_copies, 1);
        drop((m, reader));
        assert!(arena.census_clean());
    }

    #[test]
    fn shared_arena_mbuf_detaches_when_arena_exhausted() {
        let arena = crate::Arena::new("t", 1, 512);
        let mut m = Mbuf::from_arena(arena.alloc_from(&[5, 5]).unwrap());
        let reader = m.duplicate();
        m.data_mut()[0] = 9; // no free slot for COW: detaches to heap
        assert!(!m.is_arena());
        assert_eq!(m.data(), &[9, 5]);
        assert_eq!(reader.data(), &[5, 5]);
        drop((m, reader));
        assert!(arena.census_clean());
    }

    #[test]
    fn desc_roundtrip_preserves_edits_and_metadata() {
        let arena = crate::Arena::new("t", 2, 512);
        let mut m = Mbuf::from_arena(arena.alloc_from(&[1, 2, 3, 4]).unwrap());
        m.adj(1); // trims head: layout must survive the descriptor hop
        m.port = 9;
        m.udata = 0xabc;
        m.timestamp = 11;
        let desc = m.try_into_desc().expect("arena-backed");
        let back = Mbuf::from_arena(crate::arena::adopt(desc).unwrap());
        assert_eq!(back.data(), &[2, 3, 4]);
        assert_eq!((back.port, back.udata, back.timestamp), (9, 0xabc, 11));
    }

    #[test]
    fn boxed_mbuf_refuses_desc_conversion() {
        let m = Mbuf::from_slice(&[1]);
        let m = m.try_into_desc().unwrap_err();
        assert_eq!(m.data(), &[1], "handed back intact");
    }
}
