//! Property suite for the shared-arena allocator (satellite of the
//! zero-copy highway PR):
//!
//! 1. live handles never overlap — every allocated slot is distinct and
//!    writes through one handle are invisible through any other;
//! 2. exhaustion then free recovers full capacity, whichever mapping
//!    (owner freelist or consumer credit ring) the frees went through;
//! 3. refcounted clones return the slot exactly once, no matter how the
//!    clones/descriptors are dropped or adopted;
//! 4. a random interleaving of alloc / clone_ref / into_desc→adopt / free
//!    ends with a zero-leak census: `in_use == 0`,
//!    `available + credit_pending == capacity`, `foreign_frees == 0`.

use dpdk_sim::arena::adopt;
use dpdk_sim::{Arena, ArenaMbuf};
use proptest::prelude::*;

/// One step of the random-interleaving machine.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate (from the owner or the consumer mapping) and fill with a tag.
    Alloc { via_consumer: bool },
    /// clone_ref an arbitrary live handle.
    Clone { pick: usize },
    /// Round-trip an arbitrary live handle through a descriptor + adopt.
    DescHop { pick: usize },
    /// Drop an arbitrary live handle.
    Free { pick: usize },
    /// Owner-side credit reclaim.
    Reclaim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::bool::ANY.prop_map(|via_consumer| Op::Alloc { via_consumer }),
        (0usize..64).prop_map(|pick| Op::Clone { pick }),
        (0usize..64).prop_map(|pick| Op::DescHop { pick }),
        (0usize..64).prop_map(|pick| Op::Free { pick }),
        Just(Op::Reclaim),
    ]
}

/// Tag written into a slot at allocation time, checked on every observation.
fn tag(i: usize) -> [u8; 4] {
    let b = (i as u32).to_le_bytes();
    [b[0], b[1], b[2], b[3]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn live_handles_never_overlap(cap in 1usize..32, extra in 0usize..8) {
        let arena = Arena::new("props", cap, 256);
        let want = cap + extra; // over-ask: the tail must fail, not alias
        let mut live: Vec<ArenaMbuf> = Vec::new();
        for i in 0..want {
            match arena.alloc_from(&tag(i)) {
                Some(m) => live.push(m),
                None => prop_assert!(live.len() == cap, "failed before exhaustion"),
            }
        }
        prop_assert_eq!(live.len(), cap);
        // Distinct slots, and every handle still reads its own tag — a
        // write through any overlapping handle would have clobbered one.
        let mut slots: Vec<u32> = live.iter().map(|m| m.slot()).collect();
        slots.sort_unstable();
        slots.dedup();
        prop_assert_eq!(slots.len(), cap, "two live handles share a slot");
        for (i, m) in live.iter().enumerate() {
            prop_assert_eq!(m.data(), &tag(i));
        }
    }

    #[test]
    fn exhaustion_then_free_recovers_full_capacity(
        cap in 1usize..32,
        free_via_consumer in proptest::collection::vec(proptest::bool::ANY, 32..33),
    ) {
        let arena = Arena::new("props", cap, 256);
        let live: Vec<ArenaMbuf> = (0..cap).map(|i| arena.alloc_from(&tag(i)).unwrap()).collect();
        prop_assert!(arena.alloc().is_none());
        // Free each handle through a randomly chosen mapping: direct drop
        // (owner freelist) or a descriptor hop adopted by a consumer
        // (credit ring).
        for (i, m) in live.into_iter().enumerate() {
            if free_via_consumer[i % free_via_consumer.len()] {
                drop(adopt(m.into_desc()).unwrap());
            } else {
                drop(m);
            }
        }
        prop_assert!(arena.census_clean(), "census: {:?}", arena.stats());
        // Full capacity is allocatable again (reclaim happens inside alloc).
        let again: Vec<_> = (0..cap).map(|_| arena.alloc().unwrap()).collect();
        prop_assert_eq!(again.len(), cap);
    }

    #[test]
    fn clones_return_the_slot_exactly_once(n_clones in 1usize..12, hop_mask in 0u32..4096) {
        let arena = Arena::new("props", 4, 256);
        let m = arena.alloc_from(&tag(7)).unwrap();
        let mut handles = vec![m];
        for i in 0..n_clones {
            let c = handles[i % handles.len()].clone_ref();
            // Some clones additionally take a descriptor hop first.
            if hop_mask & (1 << (i % 12)) != 0 {
                handles.push(adopt(c.into_desc()).unwrap());
            } else {
                handles.push(c);
            }
        }
        prop_assert_eq!(arena.in_use(), 1, "all clones share one slot");
        while handles.len() > 1 {
            handles.swap_remove(hop_mask as usize % handles.len());
            prop_assert_eq!(arena.in_use(), 1, "slot freed while clones live");
        }
        drop(handles);
        arena.reclaim_credits();
        prop_assert_eq!(arena.available(), 4);
        let s = arena.stats();
        prop_assert_eq!(s.frees + s.credit_returns, 1, "slot returned exactly once");
        prop_assert_eq!(s.foreign_frees, 0);
    }

    #[test]
    fn random_interleaving_ends_with_zero_leak_census(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        cap in 1usize..16,
    ) {
        let arena = Arena::new("props", cap, 256);
        let consumer = arena.consumer();
        let mut live: Vec<(usize, ArenaMbuf)> = Vec::new();
        let mut next_id = 0usize;
        for op in ops {
            match op {
                Op::Alloc { via_consumer } => {
                    let from = if via_consumer { &consumer } else { &arena };
                    if let Some(m) = from.alloc_from(&tag(next_id)) {
                        live.push((next_id, m));
                        next_id += 1;
                    }
                }
                Op::Clone { pick } if !live.is_empty() => {
                    let (id, m) = &live[pick % live.len()];
                    let (id, c) = (*id, m.clone_ref());
                    live.push((id, c));
                }
                Op::DescHop { pick } if !live.is_empty() => {
                    let (id, m) = live.swap_remove(pick % live.len());
                    let back = adopt(m.into_desc()).unwrap();
                    live.push((id, back));
                }
                Op::Free { pick } if !live.is_empty() => {
                    live.swap_remove(pick % live.len());
                }
                Op::Reclaim => {
                    arena.reclaim_credits();
                }
                _ => {}
            }
            // Interleaving invariant: every live handle still reads the
            // bytes written at its allocation.
            for (id, m) in &live {
                prop_assert_eq!(m.data(), &tag(*id), "slot contents clobbered");
            }
            prop_assert_eq!(arena.in_use(), count_distinct_slots(&live));
        }
        drop(live);
        prop_assert!(arena.census_clean(), "census: {:?}", arena.stats());
    }
}

fn count_distinct_slots(live: &[(usize, ArenaMbuf)]) -> usize {
    let mut slots: Vec<u32> = live.iter().map(|(_, m)| m.slot()).collect();
    slots.sort_unstable();
    slots.dedup();
    slots.len()
}
