//! The p-2-p link detector.
//!
//! Analyses the flow table after every flow_mod and decides, per ingress
//! port, whether its traffic is point-to-point steered. The rule shape it
//! hunts for (§2 of the paper: "recognizing new point-to-point connections
//! in traffic steering rules") is taken conservatively:
//!
//! A directed p-2-p link `src → dst` exists iff
//!
//! 1. exactly **one** rule applies to traffic entering on `src` — i.e. no
//!    other rule's match covers `in_port = src` (a fully wildcarded match
//!    covers *every* port and therefore vetoes all links);
//! 2. that rule matches **only** on the ingress port (every other field
//!    wildcarded), so *all* of `src`'s traffic is steered;
//! 3. its action list is exactly `[Output(dst)]` with `dst` a physical
//!    port different from `src`.
//!
//! Conservatism matters: a false positive would silently steal traffic
//! from the switch (wrong forwarding); a false negative merely loses the
//! acceleration. Every condition below errs toward false negatives.

use openflow::action::ActionListExt;
use ovs_dp::RuleSnapshot;
use std::collections::BTreeMap;

/// A detected directed point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2pLink {
    /// Ingress dpdkr port whose traffic is steered.
    pub src: u32,
    /// Destination dpdkr port.
    pub dst: u32,
    /// Cookie of the steering rule (stats accounting key).
    pub cookie: u64,
}

/// Runs the detector over a rule snapshot. Returns the live links keyed by
/// source port (a port can have at most one p-2-p link by construction).
pub fn detect_p2p_links(rules: &[RuleSnapshot]) -> BTreeMap<u32, P2pLink> {
    let mut links = BTreeMap::new();
    for rule in rules {
        // Condition 2: matches only on in_port.
        let Some(src_port) = rule.fmatch.only_in_port() else {
            continue;
        };
        // Condition 3: single physical output, not hair-pinned.
        let Some(dst_port) = rule.actions.single_physical_output() else {
            continue;
        };
        if dst_port == src_port {
            continue;
        }
        // Condition 1: no other rule covers this ingress port.
        let alone = rules
            .iter()
            .filter(|r| r.id != rule.id)
            .all(|r| !r.fmatch.covers_in_port(src_port));
        if !alone {
            continue;
        }
        links.insert(
            u32::from(src_port.0),
            P2pLink {
                src: u32::from(src_port.0),
                dst: u32::from(dst_port.0),
                cookie: rule.cookie,
            },
        );
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::{Action, FlowMatch, PortNo};

    fn snap(id: u64, fmatch: FlowMatch, actions: Vec<Action>, cookie: u64) -> RuleSnapshot {
        RuleSnapshot {
            id,
            fmatch,
            priority: 100,
            actions,
            cookie,
        }
    }

    fn p2p_rule(id: u64, src: u16, dst: u16) -> RuleSnapshot {
        snap(
            id,
            FlowMatch::in_port(PortNo(src)),
            vec![Action::Output(PortNo(dst))],
            id * 10,
        )
    }

    #[test]
    fn detects_a_clean_p2p_rule() {
        let links = detect_p2p_links(&[p2p_rule(1, 1, 2)]);
        assert_eq!(links.len(), 1);
        assert_eq!(
            links[&1],
            P2pLink {
                src: 1,
                dst: 2,
                cookie: 10
            }
        );
    }

    #[test]
    fn detects_chains_and_bidirectional_pairs() {
        let rules = vec![
            p2p_rule(1, 1, 2),
            p2p_rule(2, 2, 1), // reverse
            p2p_rule(3, 3, 4),
        ];
        let links = detect_p2p_links(&rules);
        assert_eq!(links.len(), 3);
        assert_eq!(links[&1].dst, 2);
        assert_eq!(links[&2].dst, 1);
        assert_eq!(links[&3].dst, 4);
    }

    #[test]
    fn narrower_match_is_not_p2p() {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(80); // only web traffic steered: not ALL traffic
        let links = detect_p2p_links(&[snap(1, m, vec![Action::Output(PortNo(2))], 0)]);
        assert!(links.is_empty());
    }

    #[test]
    fn second_rule_on_same_port_vetoes() {
        let mut web = FlowMatch::in_port(PortNo(1));
        web.l4_dst = Some(80);
        let rules = vec![
            p2p_rule(1, 1, 2),
            snap(2, web, vec![Action::Output(PortNo(3))], 0),
        ];
        assert!(detect_p2p_links(&rules).is_empty());
    }

    #[test]
    fn wildcard_rule_vetoes_every_port() {
        let rules = vec![
            p2p_rule(1, 1, 2),
            p2p_rule(2, 3, 4),
            snap(3, FlowMatch::any(), vec![Action::Output(PortNo(9))], 0),
        ];
        assert!(detect_p2p_links(&rules).is_empty());
    }

    #[test]
    fn multi_action_or_reserved_output_is_not_p2p() {
        let rules = vec![snap(
            1,
            FlowMatch::in_port(PortNo(1)),
            vec![Action::SetIpTos(1), Action::Output(PortNo(2))],
            0,
        )];
        assert!(detect_p2p_links(&rules).is_empty());

        let rules = vec![snap(
            1,
            FlowMatch::in_port(PortNo(1)),
            vec![Action::Output(PortNo::FLOOD)],
            0,
        )];
        assert!(detect_p2p_links(&rules).is_empty());

        let rules = vec![snap(
            1,
            FlowMatch::in_port(PortNo(1)),
            vec![Action::Output(PortNo(2)), Action::Output(PortNo(3))],
            0,
        )];
        assert!(detect_p2p_links(&rules).is_empty());
    }

    #[test]
    fn hairpin_is_not_p2p() {
        let rules = vec![p2p_rule(1, 1, 1)];
        assert!(detect_p2p_links(&rules).is_empty());
    }

    #[test]
    fn drop_rule_is_not_p2p() {
        let rules = vec![snap(1, FlowMatch::in_port(PortNo(1)), vec![], 0)];
        assert!(detect_p2p_links(&rules).is_empty());
    }

    #[test]
    fn unrelated_specific_rules_do_not_veto() {
        // A rule pinned to a DIFFERENT in_port does not cover port 1.
        let rules = vec![p2p_rule(1, 1, 2), p2p_rule(2, 5, 6)];
        let links = detect_p2p_links(&rules);
        assert_eq!(links.len(), 2);
    }

    #[test]
    fn empty_table_has_no_links() {
        assert!(detect_p2p_links(&[]).is_empty());
    }
}
