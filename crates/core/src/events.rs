//! The bypass lifecycle journal.
//!
//! Every step of a bypass channel's life — detection, setup, activation,
//! teardown, failure — is recorded here with a timestamp, and optionally
//! streamed to subscribers. The journal gives three things the prototype's
//! authors needed during their evaluation and any operator would need in
//! production:
//!
//! 1. **observability** — `ovs-appctl`-style introspection of what the
//!    highway did and when (see `examples/failure_recovery.rs`);
//! 2. **experiment probes** — the setup-time experiment (§3's ~100 ms
//!    claim) measures `Detected → Active` gaps straight from the journal;
//! 3. **test oracles** — integration tests assert on exact event sequences
//!    rather than sleeping and polling switch state.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::time::Instant;

/// What happened to a (directed) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BypassEventKind {
    /// The detector recognised the link in the flow table.
    Detected,
    /// The link disappeared from the flow table (or was vetoed) before or
    /// after activation.
    Vanished,
    /// The manager asked the compute agent to set the bypass up.
    SetupStarted,
    /// The PMDs now exchange packets over the bypass channel.
    Active,
    /// Setup failed (agent error); the link will not be retried until the
    /// table changes again.
    SetupFailed,
    /// The manager asked the compute agent to tear the bypass down.
    TeardownStarted,
    /// The bypass is gone; traffic flows through the switch again.
    Removed,
    /// Teardown failed (agent error); state was dropped anyway.
    TeardownFailed,
}

/// One journal entry.
#[derive(Debug, Clone)]
pub struct BypassEvent {
    pub at: Instant,
    pub kind: BypassEventKind,
    /// Source port of the directed link.
    pub src: u32,
    /// Destination port of the directed link.
    pub dst: u32,
    /// Free-form context (error text, segment name).
    pub detail: String,
}

/// An append-only journal with fan-out to live subscribers.
#[derive(Default)]
pub struct EventJournal {
    log: Mutex<Vec<BypassEvent>>,
    subscribers: Mutex<Vec<Sender<BypassEvent>>>,
}

impl EventJournal {
    /// Creates an empty journal.
    pub fn new() -> EventJournal {
        EventJournal::default()
    }

    /// Appends an event and fans it out to live subscribers.
    pub fn record(&self, kind: BypassEventKind, src: u32, dst: u32, detail: impl Into<String>) {
        let ev = BypassEvent {
            at: Instant::now(),
            kind,
            src,
            dst,
            detail: detail.into(),
        };
        self.subscribers
            .lock()
            .retain(|tx| tx.send(ev.clone()).is_ok());
        self.log.lock().push(ev);
    }

    /// A snapshot of the full journal.
    pub fn snapshot(&self) -> Vec<BypassEvent> {
        self.log.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Subscribes to future events. Dropped receivers are pruned lazily on
    /// the next `record`.
    pub fn subscribe(&self) -> Receiver<BypassEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: BypassEventKind) -> Vec<BypassEvent> {
        self.log
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Blocks until an event of `kind` for the directed link `(src, dst)`
    /// exists in the journal (checks history first, then waits on a live
    /// subscription). Returns false on timeout.
    pub fn wait_for(
        &self,
        kind: BypassEventKind,
        src: u32,
        dst: u32,
        timeout: std::time::Duration,
    ) -> bool {
        // Subscribe *before* scanning history so no event can be missed.
        let rx = self.subscribe();
        if self
            .log
            .lock()
            .iter()
            .any(|e| e.kind == kind && e.src == src && e.dst == dst)
        {
            return true;
        }
        let deadline = Instant::now() + timeout;
        loop {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            match rx.recv_timeout(remaining) {
                Ok(ev) if ev.kind == kind && ev.src == src && ev.dst == dst => return true,
                Ok(_) => continue,
                Err(_) => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_snapshots_in_order() {
        let j = EventJournal::new();
        j.record(BypassEventKind::Detected, 1, 2, "");
        j.record(BypassEventKind::SetupStarted, 1, 2, "");
        j.record(BypassEventKind::Active, 1, 2, "bypass-1-2");
        let all = j.snapshot();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kind, BypassEventKind::Detected);
        assert_eq!(all[2].kind, BypassEventKind::Active);
        assert_eq!(all[2].detail, "bypass-1-2");
        assert!(all[0].at <= all[2].at);
    }

    #[test]
    fn subscription_receives_future_events() {
        let j = EventJournal::new();
        j.record(BypassEventKind::Detected, 1, 2, "before subscribe");
        let rx = j.subscribe();
        j.record(BypassEventKind::Active, 1, 2, "after subscribe");
        let got = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.kind, BypassEventKind::Active);
        assert!(rx.try_recv().is_err(), "history is not replayed");
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let j = EventJournal::new();
        drop(j.subscribe());
        drop(j.subscribe());
        j.record(BypassEventKind::Detected, 1, 2, "");
        assert_eq!(j.subscribers.lock().len(), 0);
    }

    #[test]
    fn of_kind_filters() {
        let j = EventJournal::new();
        j.record(BypassEventKind::Detected, 1, 2, "");
        j.record(BypassEventKind::Detected, 3, 4, "");
        j.record(BypassEventKind::Active, 1, 2, "");
        assert_eq!(j.of_kind(BypassEventKind::Detected).len(), 2);
        assert_eq!(j.of_kind(BypassEventKind::Active).len(), 1);
        assert_eq!(j.of_kind(BypassEventKind::Removed).len(), 0);
    }

    #[test]
    fn wait_for_sees_history_and_future() {
        let j = std::sync::Arc::new(EventJournal::new());
        j.record(BypassEventKind::Active, 1, 2, "");
        assert!(j.wait_for(BypassEventKind::Active, 1, 2, Duration::from_millis(10)));
        assert!(!j.wait_for(BypassEventKind::Active, 9, 9, Duration::from_millis(10)));

        let j2 = std::sync::Arc::clone(&j);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            j2.record(BypassEventKind::Removed, 1, 2, "");
        });
        assert!(j.wait_for(BypassEventKind::Removed, 1, 2, Duration::from_secs(2)));
        t.join().unwrap();
    }
}
