//! The assembled NFV server node.
//!
//! [`HighwayNode`] wires together every component of Figure 1(b)/Figure 2:
//! the vSwitch, the shared-memory registry, the statistics region, the
//! compute agent, the orchestrator — and, when enabled, the highway
//! (detector + manager + stats bridge). The same node with
//! `highway_enabled = false` *is* the paper's vanilla OVS-DPDK baseline:
//! identical VMs, identical rules, no bypass.

use crate::events::EventJournal;
use crate::manager::{HighwayManager, SetupRecord};
use crate::policy::AccelerationPolicy;
use crate::stats::HighwayStatsAugmenter;
use openflow::{framed_link, Connection, SwitchLink};
use ovs_dp::{VSwitchd, VSwitchdConfig};
use shmem_sim::{ShmRegistry, StatsRegion};
use std::sync::Arc;
use std::time::Duration;
use vm_host::{ComputeAgent, LatencyModel, Orchestrator};

/// Node configuration.
pub struct HighwayNodeConfig {
    /// Enable the transparent highway (false = vanilla baseline).
    pub highway_enabled: bool,
    /// Hypervisor latency model for the compute agent.
    pub latency: LatencyModel,
    /// Switch daemon configuration.
    pub switch: VSwitchdConfig,
    /// Which detected links may be accelerated, and when.
    pub policy: AccelerationPolicy,
}

impl Default for HighwayNodeConfig {
    fn default() -> Self {
        HighwayNodeConfig {
            highway_enabled: true,
            latency: LatencyModel::zero(),
            switch: VSwitchdConfig::default(),
            policy: AccelerationPolicy::paper(),
        }
    }
}

impl HighwayNodeConfig {
    /// The vanilla OVS-DPDK baseline (no highway).
    pub fn vanilla() -> HighwayNodeConfig {
        HighwayNodeConfig {
            highway_enabled: false,
            ..HighwayNodeConfig::default()
        }
    }

    /// Highway enabled with the paper-calibrated control latencies.
    pub fn paper_latencies() -> HighwayNodeConfig {
        HighwayNodeConfig {
            latency: LatencyModel::paper(),
            ..HighwayNodeConfig::default()
        }
    }
}

/// One NFV server: switch + agent + orchestrator (+ highway).
pub struct HighwayNode {
    switch: Arc<VSwitchd>,
    registry: ShmRegistry,
    stats: StatsRegion,
    agent: Arc<ComputeAgent>,
    orchestrator: Orchestrator,
    manager: Option<Arc<HighwayManager>>,
}

impl HighwayNode {
    /// Builds the node (switch not yet started).
    pub fn new(config: HighwayNodeConfig) -> HighwayNode {
        let switch = Arc::new(VSwitchd::new(config.switch));
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let agent = Arc::new(ComputeAgent::new(registry.clone(), config.latency));
        let orchestrator = Orchestrator::with_agent(
            Arc::clone(&switch),
            registry.clone(),
            stats.clone(),
            Arc::clone(&agent),
        );
        let manager = if config.highway_enabled {
            let manager = HighwayManager::with_policy(Arc::clone(&agent), config.policy);
            switch.register_observer(Arc::clone(&manager) as Arc<dyn ovs_dp::FlowTableObserver>);
            switch.set_stats_augmenter(Arc::new(HighwayStatsAugmenter::new(stats.clone())));
            // Links deferred because an endpoint VM had not registered yet
            // are re-evaluated the moment it does. Weak: the agent must
            // not keep the manager (and its worker) alive.
            let weak = Arc::downgrade(&manager);
            agent.on_registration(move || {
                if let Some(manager) = weak.upgrade() {
                    manager.refresh();
                }
            });
            Some(manager)
        } else {
            None
        };
        HighwayNode {
            switch,
            registry,
            stats,
            agent,
            orchestrator,
            manager,
        }
    }

    /// The switch daemon.
    pub fn switch(&self) -> &Arc<VSwitchd> {
        &self.switch
    }

    /// The host segment registry.
    pub fn registry(&self) -> &ShmRegistry {
        &self.registry
    }

    /// The shared statistics region.
    pub fn stats(&self) -> &StatsRegion {
        &self.stats
    }

    /// The compute agent.
    pub fn agent(&self) -> &Arc<ComputeAgent> {
        &self.agent
    }

    /// The orchestrator.
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// True when the highway is enabled.
    pub fn highway_enabled(&self) -> bool {
        self.manager.is_some()
    }

    /// Starts the switch threads.
    pub fn start(&self) {
        self.switch.start();
    }

    /// Stops everything (switch threads and highway worker).
    pub fn stop(&self) {
        self.switch.stop();
        if let Some(m) = &self.manager {
            m.shutdown();
        }
    }

    /// Creates a controller connection over an in-process framed byte
    /// stream, attaches the switch end and returns the controller end.
    /// The OF 1.0 handshake is in flight when this returns; the switch
    /// answers it on its housekeeping loop.
    pub fn connect_controller(&self) -> Connection {
        let (conn, link) = framed_link();
        self.switch.attach_controller(link);
        conn
    }

    /// Opens a loopback TCP listener for controllers; every accepted
    /// connection is attached to the switch as its control channel (a new
    /// connection replaces the old link — how a standby controller takes
    /// over after failover). Returns the bound address.
    pub fn listen_controller(&self) -> std::io::Result<std::net::SocketAddr> {
        self.switch.listen_controller()
    }

    /// Re-attaches a controller connection after its transport died (a
    /// controller restart): a fresh in-process stream replaces the dead
    /// one on both sides, the connection re-handshakes and replays any
    /// flow mods a barrier never acknowledged.
    pub fn reconnect_controller(&self, conn: &Connection) {
        let (c_end, s_end) = openflow::loopback();
        self.switch
            .attach_controller(SwitchLink::new(Box::new(s_end)));
        conn.reconnect(Box::new(c_end));
    }

    /// Registers a VM with the compute agent so its ports can be bypassed.
    pub fn register_vm(&self, vm: Arc<vm_host::Vm>) {
        self.agent.register_vm(vm);
    }

    /// Currently active bypass links `(src, dst)`.
    pub fn active_links(&self) -> Vec<(u32, u32)> {
        self.manager
            .as_ref()
            .map(|m| m.active_links().iter().map(|l| (l.src, l.dst)).collect())
            .unwrap_or_default()
    }

    /// Waits until the control plane is quiescent *and* the highway has
    /// reconciled every detected link. Always true on a vanilla node.
    ///
    /// The control-idle condition matters: a controller's `add_flow` is
    /// asynchronous, so without it this could report "converged" against
    /// the flow table from before a still-queued flow_mod.
    pub fn wait_highway_converged(&self, timeout: Duration) -> bool {
        let Some(manager) = &self.manager else {
            return true;
        };
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.switch.control_idle() && manager.is_converged() {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The bypass setup log (empty on a vanilla node).
    pub fn setup_log(&self) -> Vec<SetupRecord> {
        self.manager
            .as_ref()
            .map(|m| m.setup_log())
            .unwrap_or_default()
    }

    /// Highway failures (empty on a vanilla node).
    pub fn highway_failures(&self) -> Vec<String> {
        self.manager
            .as_ref()
            .map(|m| m.failures())
            .unwrap_or_default()
    }

    /// The bypass lifecycle journal (`None` on a vanilla node).
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.manager.as_ref().map(|m| m.journal())
    }

    /// An `ovs-appctl`-style status report: flow table, ports (with admin
    /// state), active bypass links and highway health. The operator view
    /// the examples print.
    pub fn status_report(&self) -> String {
        let dp = self.switch.datapath();
        let mut out = String::new();
        // Flow counters through the stats path (augmented with bypassed
        // traffic), exactly what `ovs-ofctl dump-flows` would show.
        out.push_str("=== flows (controller view) ===\n");
        let mut entries = self.switch.ofproto().flow_stats_snapshot();
        entries.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.cookie.cmp(&b.cookie)));
        for e in entries {
            out.push_str(&format!(
                " cookie={:#x}, n_packets={}, n_bytes={}, priority={}, actions={:?}\n",
                e.cookie, e.packet_count, e.byte_count, e.priority, e.actions
            ));
        }
        // Raw switch-side port counters (no augmentation) — the view that
        // *reveals* the bypass: ports carried by a highway show zero here
        // while their flow counters above keep counting.
        out.push_str("=== ports (switch-side raw) ===\n");
        out.push_str(&ovs_dp::dump::dump_ports(&dp));
        // The cache hierarchy's view of the same traffic: which tier (EMC,
        // megaflow, classifier) resolved the packets the switch did carry,
        // plus the live megaflow aggregates per PMD (`dpctl dump-flows`).
        out.push_str("=== datapath caches ===\n");
        out.push_str(&ovs_dp::dump::dump_datapath_stats(&dp));
        out.push_str(&ovs_dp::dump::dump_megaflows(&dp));
        out.push_str("=== highway ===\n");
        match &self.manager {
            None => out.push_str("  disabled (vanilla mode)\n"),
            Some(m) => {
                let links = m.snapshot_links();
                if links.is_empty() {
                    out.push_str("  no p-2-p links detected\n");
                }
                for (link, state) in links {
                    out.push_str(&format!(
                        "  link {} -> {} (cookie {:#x}): {state:?}\n",
                        link.src, link.dst, link.cookie
                    ));
                }
                out.push_str(&format!(
                    "  segments={} setups={} failures={} journal_events={}\n",
                    self.registry
                        .live_of_kind(shmem_sim::SegmentKind::Bypass)
                        .len(),
                    m.setup_log().len(),
                    m.failures().len(),
                    m.journal().len(),
                ));
            }
        }
        out
    }

    /// A structured [`telemetry::TelemetrySnapshot`] of the node's
    /// datapath: per-PMD perf blocks, stage/tier latency histograms,
    /// coverage counters and sampled traces. Serialise with `.to_json()`.
    pub fn telemetry_snapshot(&self) -> telemetry::TelemetrySnapshot {
        self.switch.telemetry_snapshot()
    }

    /// `ovs-appctl`-style introspection against a fresh snapshot; commands
    /// mirror OVS (`pmd-stats-show`, `pmd-perf-show`, `coverage/show`,
    /// `histograms/show`, `telemetry/json`, `telemetry/prometheus`).
    pub fn appctl(&self, command: &str) -> String {
        self.switch.appctl(command)
    }

    /// The node's metrics in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        telemetry::appctl::prometheus_text(&self.telemetry_snapshot())
    }

    /// The highway manager itself (`None` on a vanilla node).
    pub fn manager(&self) -> Option<&Arc<HighwayManager>> {
        self.manager.as_ref()
    }
}

impl Drop for HighwayNode {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;
    use openflow::PortNo;
    use packet_wire::PacketBuilder;
    use shmem_sim::SegmentKind;
    use std::time::Instant;
    use vm_host::VnfSpec;

    /// Node + a 2-VM chain with edge dpdkr ports; returns edge channel ends.
    fn chain_node(
        highway: bool,
    ) -> (
        HighwayNode,
        shmem_sim::ChannelEnd,
        shmem_sim::ChannelEnd,
        vm_host::ChainDeployment,
    ) {
        let node = HighwayNode::new(if highway {
            HighwayNodeConfig::default()
        } else {
            HighwayNodeConfig::vanilla()
        });
        let entry_no = node.orchestrator().alloc_port();
        let (entry_end, sw_end) = node.registry().create_channel(
            format!("dpdkr{entry_no}"),
            SegmentKind::DpdkrNormal,
            1024,
        );
        node.switch()
            .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
        let exit_no = node.orchestrator().alloc_port();
        let (exit_end, sw_end) = node.registry().create_channel(
            format!("dpdkr{exit_no}"),
            SegmentKind::DpdkrNormal,
            1024,
        );
        node.switch()
            .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

        let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
            VnfSpec::forwarder(format!("vm{i}"))
        });
        for vm in &dep.vms {
            node.register_vm(std::sync::Arc::clone(vm));
        }
        node.start();
        (node, entry_end, exit_end, dep)
    }

    fn pump_until(end: &mut shmem_sim::ChannelEnd, timeout: Duration) -> Option<Mbuf> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = end.recv() {
                return Some(m);
            }
            if Instant::now() > deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn highway_node_bypasses_inner_seams() {
        let (node, mut entry, mut exit, dep) = chain_node(true);
        // All seams are p-2-p: entry→vm0, vm0→vm1, vm1→exit, both ways.
        // Only VM-to-VM seams can be bypassed (edge ports have no VM), so
        // the highway must activate exactly 2 links (one per direction of
        // the middle seam) and log 2+4 failures... no: edge links involve
        // unknown ports and are logged as failures.
        assert!(node.wait_highway_converged(Duration::from_secs(10)));
        let links = node.active_links();
        let mid_fwd = (dep.vm_ports[0].1, dep.vm_ports[1].0);
        let mid_rev = (dep.vm_ports[1].0, dep.vm_ports[0].1);
        assert!(links.contains(&mid_fwd), "forward middle seam bypassed");
        assert!(links.contains(&mid_rev), "reverse middle seam bypassed");
        assert_eq!(node.registry().live_of_kind(SegmentKind::Bypass).len(), 1);

        // Traffic still flows end to end.
        entry
            .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        assert!(pump_until(&mut exit, Duration::from_secs(10)).is_some());
        node.stop();
        for vm in &dep.vms {
            vm.shutdown();
        }
    }

    #[test]
    fn status_report_reflects_the_node() {
        let (node, _entry, _exit, dep) = chain_node(true);
        assert!(node.wait_highway_converged(Duration::from_secs(10)));
        let report = node.status_report();
        assert!(report.contains("=== flows (controller view) ==="));
        assert!(report.contains("=== highway ==="));
        assert!(report.contains(": Active"));
        assert!(report.contains("segments=1"));
        // Down a port and check the flag appears.
        node.switch()
            .set_port_down(PortNo(dep.vm_ports[0].1 as u16), true);
        let report = node.status_report();
        assert!(report.contains("[PORT_DOWN]"));
        node.stop();
        for vm in &dep.vms {
            vm.shutdown();
        }

        let vanilla = HighwayNode::new(HighwayNodeConfig::vanilla());
        assert!(vanilla.status_report().contains("disabled (vanilla mode)"));
    }

    #[test]
    fn vanilla_node_never_creates_bypasses() {
        let (node, mut entry, mut exit, dep) = chain_node(false);
        entry
            .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        assert!(pump_until(&mut exit, Duration::from_secs(10)).is_some());
        assert!(node.active_links().is_empty());
        assert_eq!(node.registry().live_of_kind(SegmentKind::Bypass).len(), 0);
        assert!(node.setup_log().is_empty());
        node.stop();
        for vm in &dep.vms {
            vm.shutdown();
        }
    }
}
