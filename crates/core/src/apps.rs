//! Built-in controller applications for the highway node.
//!
//! [`ChainSteering`] is the reproduction's "ordinary OpenFlow controller":
//! it knows nothing about the highway and simply installs the service-chain
//! steering rules (`in_port → output`) the paper's §2 scenario assumes. It
//! runs behind the same [`ControllerApp`] trait as any other app (e.g. the
//! ported learning switch), so one byte-identical OpenFlow stream can drive
//! either.

use openflow::{
    Action, Connection, ControllerApp, FabricApp, FlowMatch, FlowMod, OfpMessage, PortNo,
    SwitchFeatures,
};
use std::collections::HashMap;

/// One steering seam of a service chain: everything entering `from` is
/// forwarded out of `to`, tagged with `cookie` for later stats lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seam {
    pub from: PortNo,
    pub to: PortNo,
    pub cookie: u64,
}

impl Seam {
    /// A seam with an auto-derived cookie (`0x100 + index` convention used
    /// throughout the examples).
    pub fn new(index: usize, from: PortNo, to: PortNo) -> Seam {
        Seam {
            from,
            to,
            cookie: 0x100 + index as u64,
        }
    }
}

/// The built-in highway controller app: installs a fixed set of
/// point-to-point steering rules whenever the connection (re)reaches the
/// ready state, batched into one write and fenced by an asynchronous
/// barrier.
pub struct ChainSteering {
    seams: Vec<Seam>,
    priority: u16,
    barrier_xid: Option<u32>,
    settled: bool,
    connects: u64,
    packet_ins: u64,
}

impl ChainSteering {
    /// A steering app for the given chain seams at flow priority 100.
    pub fn new(seams: Vec<Seam>) -> ChainSteering {
        ChainSteering {
            seams,
            priority: 100,
            barrier_xid: None,
            settled: false,
            connects: 0,
            packet_ins: 0,
        }
    }

    /// Builds the chain from consecutive `(from, to)` port pairs.
    pub fn from_pairs(pairs: &[(u16, u16)]) -> ChainSteering {
        ChainSteering::new(
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(f, t))| Seam::new(i, PortNo(f), PortNo(t)))
                .collect(),
        )
    }

    /// True once the switch has acknowledged (via barrier reply) that every
    /// steering rule of the latest (re)connect is committed.
    pub fn settled(&self) -> bool {
        self.settled
    }

    /// How many times the app has pushed its rule set (1 + reconnects).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Packet-ins observed (the steering chain should produce none once
    /// settled — the counter is a canary for missing rules).
    pub fn packet_ins(&self) -> u64 {
        self.packet_ins
    }

    fn flow_mods(&self) -> Vec<FlowMod> {
        self.seams
            .iter()
            .map(|s| {
                FlowMod::add(
                    FlowMatch::in_port(s.from),
                    self.priority,
                    vec![Action::Output(s.to)],
                )
                .with_cookie(s.cookie)
            })
            .collect()
    }
}

impl ControllerApp for ChainSteering {
    fn on_connected(&mut self, conn: &Connection, _features: &SwitchFeatures) {
        self.connects += 1;
        self.settled = false;
        let mods = self.flow_mods();
        if conn.send_flow_mods(&mods).is_err() {
            return; // disconnected again; the next reconnect retries
        }
        // Fence asynchronously: the reply lands in on_message, so the
        // runtime's poll loop is never blocked on the switch.
        self.barrier_xid = conn.send(&OfpMessage::BarrierRequest).ok();
    }

    fn on_message(&mut self, _conn: &Connection, msg: OfpMessage, xid: u32) {
        match msg {
            OfpMessage::BarrierReply if Some(xid) == self.barrier_xid => {
                self.barrier_xid = None;
                self.settled = true;
            }
            OfpMessage::PacketIn(_) => self.packet_ins += 1,
            _ => {}
        }
    }
}

/// [`ChainSteering`] generalised to a fabric: one steering rule set per
/// switch, keyed by datapath id, installed through a single
/// [`openflow::FabricRuntime`]. A VNF chain spanning several hosts is
/// expressed as per-switch seam lists — intra-host seams between VM
/// ports, inter-host hops via the trunk ports wiring the switches
/// together — and this app makes each switch converge independently
/// (batched install + async barrier fence, per switch).
pub struct FabricChainSteering {
    per_switch: HashMap<u64, ChainSteering>,
    /// `FlowRemoved` notifications seen, per cookie — the exactly-once
    /// canary the failover tests read (replay must never trigger one).
    flow_removed: HashMap<u64, u64>,
}

impl FabricChainSteering {
    /// A steering app for per-switch seam lists keyed by datapath id.
    pub fn new(seams_by_dpid: HashMap<u64, Vec<Seam>>) -> FabricChainSteering {
        FabricChainSteering {
            per_switch: seams_by_dpid
                .into_iter()
                .map(|(dpid, seams)| (dpid, ChainSteering::new(seams)))
                .collect(),
            flow_removed: HashMap::new(),
        }
    }

    /// True once every switch has barrier-acknowledged its rule set.
    pub fn settled(&self) -> bool {
        self.per_switch.values().all(ChainSteering::settled)
    }

    /// Whether the switch `dpid` has settled its rules.
    pub fn switch_settled(&self, dpid: u64) -> bool {
        self.per_switch
            .get(&dpid)
            .is_some_and(ChainSteering::settled)
    }

    /// Total packet-ins across the fabric (should stay 0 once settled).
    pub fn packet_ins(&self) -> u64 {
        self.per_switch
            .values()
            .map(ChainSteering::packet_ins)
            .sum()
    }

    /// `FlowRemoved` tallies per cookie, across every switch.
    pub fn flow_removed(&self) -> &HashMap<u64, u64> {
        &self.flow_removed
    }
}

impl FabricApp for FabricChainSteering {
    fn on_switch_ready(&mut self, dpid: u64, conn: &Connection, features: &SwitchFeatures) {
        if let Some(app) = self.per_switch.get_mut(&dpid) {
            app.on_connected(conn, features);
        }
    }

    fn on_switch_message(&mut self, dpid: u64, conn: &Connection, msg: OfpMessage, xid: u32) {
        if let OfpMessage::FlowRemoved(fr) = &msg {
            *self.flow_removed.entry(fr.cookie).or_insert(0) += 1;
        }
        if let Some(app) = self.per_switch.get_mut(&dpid) {
            app.on_message(conn, msg, xid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{HighwayNode, HighwayNodeConfig};
    use openflow::ControllerRuntime;
    use std::time::{Duration, Instant};

    #[test]
    fn chain_steering_installs_rules_and_settles() {
        let node = HighwayNode::new(HighwayNodeConfig::default());
        node.start();
        let conn = node.connect_controller();
        let app = ChainSteering::from_pairs(&[(1, 2), (3, 4)]);
        let mut rt = ControllerRuntime::new(conn, app);
        rt.run_until_ready(Duration::from_secs(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !rt.app().settled() && Instant::now() < deadline {
            rt.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.app().settled(), "barrier reply never arrived");
        assert_eq!(rt.app().connects(), 1);
        let stats = rt.connection().flow_stats(Duration::from_secs(2)).unwrap();
        assert_eq!(stats.len(), 2);
        node.stop();
    }
}
