//! # highway-core
//!
//! The paper's contribution: a *transparent highway* for inter-VNF
//! communication. Given an unmodified controller, unmodified VNF
//! applications and the OVS-DPDK-style substrate in `ovs-dp`, this crate
//! adds the three pieces §2 of the paper describes:
//!
//! * [`detector`] — the **p-2-p link detector**: hooks flow-table changes
//!   (every flow_mod) and recognises when the rules express a pure
//!   point-to-point connection between two dpdkr ports, or when such a
//!   connection disappears.
//! * [`manager`] — the reconciliation engine: turns detector output into
//!   compute-agent operations (create/destroy bypass channels), serially
//!   and asynchronously from the switch's control loop, keeping a log of
//!   setup latencies (the paper's ~100 ms claim is measured from here).
//! * [`stats`] — the statistics bridge: implements the switch's
//!   [`ovs_dp::StatsAugmenter`] hook over the shared-memory
//!   [`shmem_sim::StatsRegion`] the guest PMDs write, so flow and port
//!   statistics remain exact even for traffic the switch never sees.
//! * [`node`] — [`node::HighwayNode`], the assembled server: switch +
//!   registry + compute agent + orchestrator + highway, with a single
//!   switch to run the same deployment in *vanilla* mode (the evaluation
//!   baseline) or *highway* mode.
//! * [`fabric`] — [`fabric::Fabric`], N highway nodes with unique
//!   datapath ids wired by simulated inter-host trunks, plus cross-host
//!   chain placement; one [`openflow::FabricRuntime`] controller drives
//!   them all over the framed control channel.
//! * [`policy`] — the [`policy::AccelerationPolicy`]: which detected links
//!   may be accelerated (port exclusions) and when (setup debounce against
//!   controller rule flapping).
//! * [`events`] — the [`events::EventJournal`]: a timestamped record of
//!   every bypass lifecycle step, with live subscriptions; the setup-time
//!   experiment and the failure-injection tests read it.

pub mod apps;
pub mod detector;
pub mod events;
pub mod fabric;
pub mod manager;
pub mod node;
pub mod policy;
pub mod stats;

pub use apps::{ChainSteering, FabricChainSteering, Seam};
pub use detector::{detect_p2p_links, P2pLink};
pub use events::{BypassEvent, BypassEventKind, EventJournal};
pub use fabric::{Fabric, FabricChain, Trunk};
pub use manager::{HighwayManager, LinkState, SetupRecord};
pub use node::{HighwayNode, HighwayNodeConfig};
pub use policy::AccelerationPolicy;
pub use stats::HighwayStatsAugmenter;
