//! Acceleration policy: which detected p-2-p links the highway is allowed
//! to carry, and when.
//!
//! The paper's prototype accelerates every detected link immediately. In
//! operation two refinements matter, and both are exposed here as knobs so
//! the ablation benches can quantify them:
//!
//! * **Debounce** — a controller reshuffling its table (e.g. a routing
//!   convergence burst) can create and destroy the same p-2-p link many
//!   times per second. Every activation costs ~100 ms of hypervisor work
//!   (§3), so chasing a flapping link wastes agent time and can queue a
//!   storm of stale setups. With a debounce, a link must remain stable for
//!   a grace period before the agent is engaged.
//! * **Port exclusion** — some dpdkr ports should never be bypassed (e.g.
//!   ports whose VM is about to be migrated, or operator policy). The
//!   detector result is filtered against this set.
//! * **Port state** — a link whose endpoint the controller set
//!   administratively down must not be accelerated: the switch would have
//!   dropped that traffic, so a live bypass would *add* connectivity the
//!   flow table no longer expresses. This filter is not optional; it is a
//!   correctness condition (transparency), but it is applied here so the
//!   whole "what may be accelerated" decision lives in one place.

use std::collections::BTreeSet;
use std::time::Duration;

/// Policy for turning detected links into bypass channels.
#[derive(Debug, Clone)]
pub struct AccelerationPolicy {
    /// How long a detected link must remain stable before setup begins.
    /// Zero (the default, and the paper's behaviour) sets up immediately.
    pub setup_debounce: Duration,
    /// OpenFlow ports that must never participate in a bypass.
    pub excluded_ports: BTreeSet<u32>,
}

impl Default for AccelerationPolicy {
    fn default() -> Self {
        AccelerationPolicy {
            setup_debounce: Duration::ZERO,
            excluded_ports: BTreeSet::new(),
        }
    }
}

impl AccelerationPolicy {
    /// The paper's policy: accelerate everything, immediately.
    pub fn paper() -> AccelerationPolicy {
        AccelerationPolicy::default()
    }

    /// A conservative policy with the given debounce.
    pub fn debounced(grace: Duration) -> AccelerationPolicy {
        AccelerationPolicy {
            setup_debounce: grace,
            ..AccelerationPolicy::default()
        }
    }

    /// Builder: exclude a port from acceleration.
    pub fn exclude_port(mut self, port: u32) -> AccelerationPolicy {
        self.excluded_ports.insert(port);
        self
    }

    /// True when a link between these endpoints is allowed by the
    /// exclusion list (port state is checked separately, against live
    /// switch state).
    pub fn allows(&self, src: u32, dst: u32) -> bool {
        !self.excluded_ports.contains(&src) && !self.excluded_ports.contains(&dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything_immediately() {
        let p = AccelerationPolicy::default();
        assert_eq!(p.setup_debounce, Duration::ZERO);
        assert!(p.allows(1, 2));
    }

    #[test]
    fn exclusion_is_symmetric_over_endpoints() {
        let p = AccelerationPolicy::default().exclude_port(7);
        assert!(!p.allows(7, 2));
        assert!(!p.allows(2, 7));
        assert!(p.allows(1, 2));
    }

    #[test]
    fn builders_compose() {
        let p = AccelerationPolicy::debounced(Duration::from_millis(50))
            .exclude_port(1)
            .exclude_port(9);
        assert_eq!(p.setup_debounce, Duration::from_millis(50));
        assert_eq!(p.excluded_ports.len(), 2);
    }
}
