//! The highway manager: reconciles detected p-2-p links with actual bypass
//! channels.
//!
//! The detector runs synchronously inside the switch's flow_mod handling
//! (it must see every table change), but bypass setup takes ~100 ms of
//! hypervisor work — far too long to block the control loop. The manager
//! therefore splits the two: the observer callback only updates the
//! *desired* link set and wakes a worker thread, which serially drives the
//! compute agent until *actual* matches *desired*. Serial reconciliation
//! makes rule flapping safe: operations never interleave, and the final
//! state always reflects the last flow table seen.
//!
//! Three inputs shape the desired set:
//!
//! 1. the detector's output over the latest rule snapshot;
//! 2. the switch's port admin state (a link over a down port is vetoed —
//!    the switch would have dropped that traffic, and a bypass must never
//!    deliver packets the flow table would not);
//! 3. the [`AccelerationPolicy`] (port exclusions; setup debounce).
//!
//! Every lifecycle step is recorded in the [`EventJournal`].

use crate::detector::{detect_p2p_links, P2pLink};
use crate::events::{BypassEventKind, EventJournal};
use crate::policy::AccelerationPolicy;
use crossbeam::channel::{bounded, Receiver, Sender};
use ovs_dp::{FlowTableObserver, RuleSnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vm_host::ComputeAgent;

/// One completed bypass activation, for the setup-time experiment
/// (paper §3: "on the order of 100 ms").
#[derive(Debug, Clone, Copy)]
pub struct SetupRecord {
    pub link: P2pLink,
    /// When the detector recognised the link (flow_mod processing time).
    pub detected_at: Instant,
    /// When the PMDs started using the bypass channel.
    pub active_at: Instant,
}

impl SetupRecord {
    /// Detection-to-activation latency.
    pub fn setup_time(&self) -> Duration {
        self.active_at.duration_since(self.detected_at)
    }
}

/// The manager's view of one directed link (observability API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Desired but not yet set up (debouncing or queued behind other work).
    Pending,
    /// Carried by a live bypass channel.
    Active,
    /// No longer desired; teardown queued or in flight.
    TearingDown,
}

#[derive(Default)]
struct Shared {
    /// Latest rule snapshot from the switch.
    last_rules: Vec<RuleSnapshot>,
    /// Ports currently administratively down on the switch.
    down_ports: BTreeSet<u32>,
    /// What table+ports+policy currently imply, stamped with detection time.
    desired: BTreeMap<u32, (P2pLink, Instant)>,
    /// Directions actually set up (src → link).
    actual: BTreeMap<u32, P2pLink>,
    /// Completed setups.
    log: Vec<SetupRecord>,
    /// Setup/teardown failures (agent errors), for observability.
    failures: Vec<String>,
    /// True while the worker is driving the agent for one operation.
    /// Convergence checks must not report "converged" mid-operation:
    /// desired/actual only reflect *completed* work, and callers (tests,
    /// experiments) use convergence as a quiescence barrier.
    inflight: bool,
}

/// The highway manager. Implements [`FlowTableObserver`]; owns the worker.
pub struct HighwayManager {
    agent: Arc<ComputeAgent>,
    policy: AccelerationPolicy,
    journal: Arc<EventJournal>,
    shared: Arc<Mutex<Shared>>,
    wake: Sender<()>,
    stop: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl HighwayManager {
    /// Creates the manager with the paper's accelerate-everything policy.
    pub fn new(agent: Arc<ComputeAgent>) -> Arc<HighwayManager> {
        HighwayManager::with_policy(agent, AccelerationPolicy::paper())
    }

    /// Creates the manager with an explicit policy and starts its
    /// reconciliation worker.
    pub fn with_policy(
        agent: Arc<ComputeAgent>,
        policy: AccelerationPolicy,
    ) -> Arc<HighwayManager> {
        let (wake_tx, wake_rx) = bounded::<()>(1);
        let manager = Arc::new(HighwayManager {
            agent,
            policy,
            journal: Arc::new(EventJournal::new()),
            shared: Arc::new(Mutex::new(Shared::default())),
            wake: wake_tx,
            stop: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
        });
        let worker = {
            let manager = Arc::clone(&manager);
            std::thread::Builder::new()
                .name("highway-manager".into())
                .spawn(move || manager.worker_loop(wake_rx))
                .expect("spawn highway manager")
        };
        *manager.worker.lock() = Some(worker);
        manager
    }

    fn wake_worker(&self) {
        let _ = self.wake.try_send(()); // coalesced: one token is enough
    }

    /// The lifecycle journal.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// The active policy.
    pub fn policy(&self) -> &AccelerationPolicy {
        &self.policy
    }

    /// The links currently carried by bypass channels.
    pub fn active_links(&self) -> Vec<P2pLink> {
        self.shared.lock().actual.values().copied().collect()
    }

    /// Every link the manager knows about, with its state (observability).
    pub fn snapshot_links(&self) -> Vec<(P2pLink, LinkState)> {
        let s = self.shared.lock();
        let mut out = Vec::new();
        for (src, link) in &s.actual {
            let state = match s.desired.get(src) {
                Some((d, _)) if d == link => LinkState::Active,
                _ => LinkState::TearingDown,
            };
            out.push((*link, state));
        }
        for (src, (link, _)) in &s.desired {
            if !s.actual.contains_key(src) {
                out.push((*link, LinkState::Pending));
            }
        }
        out.sort_by_key(|(l, _)| (l.src, l.dst));
        out
    }

    /// Per-link state as the manager sees it, keyed by source port.
    pub fn link_states(&self) -> BTreeMap<u32, LinkState> {
        let s = self.shared.lock();
        let mut out = BTreeMap::new();
        for (src, link) in &s.actual {
            let state = match s.desired.get(src) {
                Some((d, _)) if d == link => LinkState::Active,
                _ => LinkState::TearingDown,
            };
            out.insert(*src, state);
        }
        for src in s.desired.keys() {
            out.entry(*src).or_insert(LinkState::Pending);
        }
        out
    }

    /// Completed setup records (clone).
    pub fn setup_log(&self) -> Vec<SetupRecord> {
        self.shared.lock().log.clone()
    }

    /// Agent errors encountered so far.
    pub fn failures(&self) -> Vec<String> {
        self.shared.lock().failures.clone()
    }

    /// True when the actual link set matches the desired one right now
    /// and no agent operation is in flight.
    pub fn is_converged(&self) -> bool {
        let s = self.shared.lock();
        !s.inflight
            && s.desired.len() == s.actual.len()
            && s.desired
                .iter()
                .all(|(src, (link, _))| s.actual.get(src) == Some(link))
    }

    /// Blocks until the actual link set matches the desired one (or the
    /// timeout passes). Test/experiment helper.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_converged() {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Re-derives the desired link set from the cached rule snapshot —
    /// for events that change link *serviceability* without touching the
    /// flow table (VM registration, in particular).
    pub fn refresh(&self) {
        let now = Instant::now();
        {
            let mut s = self.shared.lock();
            self.recompute_desired(&mut s, now);
        }
        self.wake_worker();
    }

    /// Recomputes the desired link set from the latest rules, port state
    /// and policy. Records Detected/Vanished transitions. Caller wakes the
    /// worker afterwards.
    fn recompute_desired(&self, s: &mut Shared, now: Instant) {
        let links = detect_p2p_links(&s.last_rules);
        let mut new_desired = BTreeMap::new();
        for (src, link) in links {
            if !self.policy.allows(link.src, link.dst) {
                continue;
            }
            if s.down_ports.contains(&link.src) || s.down_ports.contains(&link.dst) {
                continue;
            }
            // A bypass needs a guest PMD on both ends. Links touching
            // non-VM ports (NICs, edge dpdkrs, VMs that have not booted
            // yet) are deferred, not failed: VM registration calls
            // [`HighwayManager::refresh`] and re-evaluates them.
            if !self.agent.has_port(link.src) || !self.agent.has_port(link.dst) {
                continue;
            }
            let stamp = match s.desired.get(&src) {
                Some((old, t)) if *old == link => *t,
                _ => {
                    self.journal.record(
                        BypassEventKind::Detected,
                        link.src,
                        link.dst,
                        format!("cookie {:#x}", link.cookie),
                    );
                    now
                }
            };
            new_desired.insert(src, (link, stamp));
        }
        for (src, (old, _)) in &s.desired {
            if new_desired.get(src).map(|(l, _)| l) != Some(old) {
                self.journal
                    .record(BypassEventKind::Vanished, old.src, old.dst, "");
            }
        }
        s.desired = new_desired;
    }

    /// One reconciliation pass; returns true when work was done.
    fn reconcile_step(&self) -> bool {
        // Decide one operation under the lock, run it outside the lock
        // (agent operations sleep for the modelled hypervisor latencies).
        enum Op {
            Setup(P2pLink, Instant),
            Teardown(P2pLink),
        }
        let op = {
            let mut s = self.shared.lock();
            let mut op = None;
            // Teardowns first: frees segments and avoids steering stale
            // traffic along links the table no longer expresses.
            for (src, link) in &s.actual {
                match s.desired.get(src) {
                    Some((d, _)) if d == link => {}
                    _ => {
                        op = Some(Op::Teardown(*link));
                        break;
                    }
                }
            }
            if op.is_none() {
                for (src, (link, detected_at)) in &s.desired {
                    if s.actual.get(src) == Some(link) {
                        continue;
                    }
                    // Debounce: only set up once the link has been stable
                    // for the policy's grace period.
                    if detected_at.elapsed() < self.policy.setup_debounce {
                        continue;
                    }
                    op = Some(Op::Setup(*link, *detected_at));
                    break;
                }
            }
            // Flagged under the same lock that chose the operation, so a
            // convergence check can never see "nothing to do" while an
            // agent call is about to run on this state.
            s.inflight = op.is_some();
            op
        };
        match op {
            None => false,
            Some(Op::Teardown(link)) => {
                self.journal
                    .record(BypassEventKind::TeardownStarted, link.src, link.dst, "");
                match self.agent.teardown_bypass(link.src, link.dst) {
                    Ok(report) => {
                        let mut s = self.shared.lock();
                        s.actual.remove(&link.src);
                        s.inflight = false;
                        drop(s);
                        self.journal.record(
                            BypassEventKind::Removed,
                            link.src,
                            link.dst,
                            format!("drained {} in-flight packets", report.drained),
                        );
                    }
                    Err(e) => {
                        let mut s = self.shared.lock();
                        s.failures.push(format!("teardown {link:?}: {e}"));
                        // Drop it from actual anyway: the agent state machine
                        // rejects unknown directions, so retrying forever
                        // would spin.
                        s.actual.remove(&link.src);
                        s.inflight = false;
                        drop(s);
                        self.journal.record(
                            BypassEventKind::TeardownFailed,
                            link.src,
                            link.dst,
                            e.to_string(),
                        );
                    }
                }
                true
            }
            Some(Op::Setup(link, detected_at)) => {
                self.journal
                    .record(BypassEventKind::SetupStarted, link.src, link.dst, "");
                match self.agent.setup_bypass(link.src, link.dst, link.cookie) {
                    Ok(report) => {
                        let mut s = self.shared.lock();
                        s.actual.insert(link.src, link);
                        s.log.push(SetupRecord {
                            link,
                            detected_at,
                            active_at: Instant::now(),
                        });
                        s.inflight = false;
                        drop(s);
                        self.journal.record(
                            BypassEventKind::Active,
                            link.src,
                            link.dst,
                            report.segment,
                        );
                    }
                    Err(e) => {
                        let mut s = self.shared.lock();
                        s.failures.push(format!("setup {link:?}: {e}"));
                        // Remove the unsatisfiable desire; a future table
                        // change will re-create it.
                        s.desired.remove(&link.src);
                        s.inflight = false;
                        drop(s);
                        self.journal.record(
                            BypassEventKind::SetupFailed,
                            link.src,
                            link.dst,
                            e.to_string(),
                        );
                    }
                }
                true
            }
        }
    }

    fn worker_loop(&self, wake: Receiver<()>) {
        while !self.stop.load(Ordering::Acquire) {
            if !self.reconcile_step() {
                // Converged (or debouncing): sleep until the observer wakes
                // us, or re-check shortly for debounce expiry.
                let _ = wake.recv_timeout(Duration::from_millis(5));
            }
        }
    }

    /// Stops the worker (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.wake_worker();
        if let Some(t) = self.worker.lock().take() {
            let _ = t.join();
        }
    }
}

impl FlowTableObserver for HighwayManager {
    fn table_changed(&self, rules: &[RuleSnapshot]) {
        let now = Instant::now();
        {
            let mut s = self.shared.lock();
            s.last_rules = rules.to_vec();
            self.recompute_desired(&mut s, now);
        }
        self.wake_worker();
    }

    fn ports_changed(&self, down_ports: &[openflow::PortNo]) {
        let now = Instant::now();
        {
            let mut s = self.shared.lock();
            s.down_ports = down_ports.iter().map(|p| u32::from(p.0)).collect();
            self.recompute_desired(&mut s, now);
        }
        self.wake_worker();
    }
}

impl Drop for HighwayManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::{SegmentKind, ShmRegistry, StatsRegion};
    use std::sync::Arc;
    use vm_host::{LatencyModel, Vm};
    use vnf_apps::L2Forwarder;

    /// Agent over two 2-port VMs (ports 1,2 and 3,4), zero latency.
    fn agent_world() -> (Arc<ComputeAgent>, ShmRegistry, Vec<Arc<Vm>>) {
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let mut vms = Vec::new();
        let mut port = 1u32;
        for name in ["vm0", "vm1"] {
            let mut vm_ports = Vec::new();
            for _ in 0..2 {
                let (vm_end, _sw_end) =
                    registry.create_channel(format!("dpdkr{port}"), SegmentKind::DpdkrNormal, 64);
                vm_ports.push((port, vm_end));
                port += 1;
            }
            vms.push(Vm::launch(
                name,
                vm_ports,
                Box::new(L2Forwarder::new()),
                stats.clone(),
            ));
        }
        let agent = Arc::new(ComputeAgent::new(registry.clone(), LatencyModel::zero()));
        for vm in &vms {
            agent.register_vm(Arc::clone(vm));
        }
        (agent, registry, vms)
    }

    fn p2p_snapshot(src: u16, dst: u16, cookie: u64) -> RuleSnapshot {
        RuleSnapshot {
            id: u64::from(src),
            fmatch: openflow::FlowMatch::in_port(openflow::PortNo(src)),
            priority: 100,
            actions: vec![openflow::Action::Output(openflow::PortNo(dst))],
            cookie,
        }
    }

    #[test]
    fn link_up_then_down_drives_the_agent() {
        let (agent, registry, _vms) = agent_world();
        let manager = HighwayManager::new(Arc::clone(&agent));

        manager.table_changed(&[p2p_snapshot(2, 3, 7)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        assert_eq!(manager.link_states()[&2], LinkState::Active);

        manager.table_changed(&[]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert!(manager.active_links().is_empty());
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 0);

        let log = manager.setup_log();
        assert_eq!(log.len(), 1);
        assert!(manager.failures().is_empty());

        // The journal tells the whole story, in order.
        let kinds: Vec<_> = manager
            .journal()
            .snapshot()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                BypassEventKind::Detected,
                BypassEventKind::SetupStarted,
                BypassEventKind::Active,
                BypassEventKind::Vanished,
                BypassEventKind::TeardownStarted,
                BypassEventKind::Removed,
            ]
        );
        manager.shutdown();
    }

    #[test]
    fn bidirectional_links_share_one_segment() {
        let (agent, registry, _vms) = agent_world();
        let manager = HighwayManager::new(agent);
        manager.table_changed(&[p2p_snapshot(2, 3, 1), p2p_snapshot(3, 2, 2)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 2);
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        manager.shutdown();
    }

    #[test]
    fn flapping_converges_to_last_state() {
        let (agent, registry, _vms) = agent_world();
        let manager = HighwayManager::new(agent);
        for _ in 0..5 {
            manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
            manager.table_changed(&[]);
        }
        manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        manager.shutdown();
    }

    #[test]
    fn cookie_change_resets_the_bypass() {
        let (agent, _registry, _vms) = agent_world();
        let manager = HighwayManager::new(agent);
        manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        manager.table_changed(&[p2p_snapshot(2, 3, 99)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        let links = manager.active_links();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].cookie, 99);
        assert_eq!(manager.setup_log().len(), 2);
        manager.shutdown();
    }

    #[test]
    fn links_to_unregistered_ports_are_deferred_until_registration() {
        let (agent, registry, _vms) = agent_world();
        let manager = HighwayManager::new(Arc::clone(&agent));
        // What HighwayNode wires up: registration re-evaluates deferrals.
        let weak = Arc::downgrade(&manager);
        agent.on_registration(move || {
            if let Some(m) = weak.upgrade() {
                m.refresh();
            }
        });

        // Port 99 has no VM: a bypass needs a guest PMD on both ends, so
        // the link is deferred — not attempted, not logged as a failure.
        manager.table_changed(&[p2p_snapshot(2, 99, 1)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert!(manager.active_links().is_empty());
        assert!(manager.failures().is_empty());
        assert!(
            manager.journal().is_empty(),
            "deferred links are not even Detected"
        );

        // The VM owning port 99 boots: the cached rules are re-evaluated
        // and the link comes up without any flow table change.
        let (vm_end, _sw_end) = registry.create_channel("dpdkr99", SegmentKind::DpdkrNormal, 64);
        let vm = Vm::launch(
            "late-vm",
            vec![(99, vm_end)],
            Box::new(L2Forwarder::new()),
            StatsRegion::new(),
        );
        agent.register_vm(vm);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);
        assert!(manager.failures().is_empty());
        manager.shutdown();
    }

    #[test]
    fn down_port_vetoes_and_revives_links() {
        let (agent, registry, _vms) = agent_world();
        let manager = HighwayManager::new(agent);
        manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);

        // Port 3 goes down: the bypass must be torn down even though the
        // flow table still expresses the link.
        manager.ports_changed(&[openflow::PortNo(3)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert!(manager.active_links().is_empty());
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 0);

        // Port comes back: the link is re-detected from the cached rules.
        manager.ports_changed(&[]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);
        assert_eq!(manager.setup_log().len(), 2);
        manager.shutdown();
    }

    #[test]
    fn excluded_ports_are_never_accelerated() {
        let (agent, registry, _vms) = agent_world();
        let manager =
            HighwayManager::with_policy(agent, AccelerationPolicy::paper().exclude_port(3));
        manager.table_changed(&[p2p_snapshot(2, 3, 1), p2p_snapshot(3, 2, 2)]);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert!(manager.active_links().is_empty());
        assert_eq!(registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert!(
            manager.journal().is_empty(),
            "excluded links are not even Detected"
        );
        manager.shutdown();
    }

    #[test]
    fn debounce_absorbs_flapping() {
        let (agent, _registry, _vms) = agent_world();
        let manager = HighwayManager::with_policy(
            Arc::clone(&agent),
            AccelerationPolicy::debounced(Duration::from_millis(80)),
        );
        // Flap the link rapidly for ~40 ms: the debounce must absorb every
        // cycle without engaging the agent.
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(40) {
            manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
            manager.table_changed(&[]);
            std::thread::sleep(Duration::from_millis(2));
        }
        manager.table_changed(&[]);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(manager.setup_log().len(), 0, "no setup during the flap");
        assert!(manager
            .journal()
            .of_kind(BypassEventKind::SetupStarted)
            .is_empty());

        // Once stable, the link is accelerated after the grace period.
        manager.table_changed(&[p2p_snapshot(2, 3, 1)]);
        assert_eq!(manager.link_states()[&2], LinkState::Pending);
        assert!(manager.wait_converged(Duration::from_secs(5)));
        assert_eq!(manager.active_links().len(), 1);
        assert_eq!(manager.setup_log().len(), 1);
        // The recorded setup time includes the debounce by construction.
        assert!(manager.setup_log()[0].setup_time() >= Duration::from_millis(80));
        manager.shutdown();
    }
}
