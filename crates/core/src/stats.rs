//! The statistics bridge.
//!
//! Implements the switch's [`StatsAugmenter`] hook by reading the shared
//! statistics region the guest PMDs write for bypassed traffic. The switch
//! consults it while building flow-stats, port-stats and flow-removed
//! messages, so an OpenFlow controller sees exact counters regardless of
//! which channel the packets took — §2's transparency requirement.

use openflow::PortNo;
use ovs_dp::ofproto::{PortExtra, StatsAugmenter};
use shmem_sim::{PortDir, StatsRegion};

/// Adapter from [`StatsRegion`] to the switch's augmenter hook.
pub struct HighwayStatsAugmenter {
    region: StatsRegion,
}

impl HighwayStatsAugmenter {
    /// Wraps the region shared with the guest PMDs.
    pub fn new(region: StatsRegion) -> HighwayStatsAugmenter {
        HighwayStatsAugmenter { region }
    }
}

impl StatsAugmenter for HighwayStatsAugmenter {
    fn rule_extra(&self, cookie: u64) -> (u64, u64) {
        telemetry::coverage!("stats_augment_rule");
        self.region.rule_totals(cookie)
    }

    fn port_extra(&self, port: PortNo) -> PortExtra {
        let (rx_packets, rx_bytes) = self.region.port_totals(u32::from(port.0), PortDir::Rx);
        let (tx_packets, tx_bytes) = self.region.port_totals(u32::from(port.0), PortDir::Tx);
        PortExtra {
            rx_packets,
            rx_bytes,
            tx_packets,
            tx_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augmenter_reflects_region_writes() {
        let region = StatsRegion::new();
        let aug = HighwayStatsAugmenter::new(region.clone());
        assert_eq!(aug.rule_extra(7), (0, 0));

        region.rule_cell(7).add(3, 192);
        region.port_cell(1, PortDir::Rx).add(3, 192);
        region.port_cell(2, PortDir::Tx).add(3, 192);

        assert_eq!(aug.rule_extra(7), (3, 192));
        let p1 = aug.port_extra(PortNo(1));
        assert_eq!((p1.rx_packets, p1.rx_bytes), (3, 192));
        assert_eq!((p1.tx_packets, p1.tx_bytes), (0, 0));
        let p2 = aug.port_extra(PortNo(2));
        assert_eq!((p2.tx_packets, p2.tx_bytes), (3, 192));
    }
}
