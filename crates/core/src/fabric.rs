//! A multi-host fabric: N [`HighwayNode`]s wired together by trunk ports.
//!
//! The paper evaluates a single server, but its control plane is ordinary
//! OpenFlow — one controller can just as well drive several highway nodes.
//! [`Fabric`] assembles that topology: each node is an independent server
//! (own switch, registry, agent, orchestrator, highway manager) with a
//! unique datapath id, and [`Fabric::trunk`] splices a simulated
//! inter-host link between two switches by handing each one end of a raw
//! shared-memory channel (standing in for the NIC-to-NIC wire).
//!
//! [`Fabric::place_chain`] then places a VNF chain *across* hosts: VMs go
//! to the node their span names, consecutive VMs on the same node are
//! joined by an ordinary intra-host seam (a highway-bypass candidate),
//! and consecutive VMs on different nodes are joined through a fresh
//! trunk. The resulting per-switch seam lists feed
//! [`crate::apps::FabricChainSteering`], which installs them over the
//! wire through one [`openflow::FabricRuntime`] — so the switches' p-2-p
//! detectors see exactly what a real controller would send.

use crate::apps::Seam;
use crate::node::{HighwayNode, HighwayNodeConfig};
use openflow::PortNo;
use shmem_sim::SegmentKind;
use std::collections::HashMap;
use std::sync::Arc;
use vm_host::{Vm, VnfSpec};

/// Ring depth for edge and trunk channels (matches the node tests).
const EDGE_RING_DEPTH: usize = 1024;

/// N highway nodes with unique datapath ids, plus the trunks between them.
pub struct Fabric {
    nodes: Vec<HighwayNode>,
    dpids: Vec<u64>,
    trunks: std::sync::atomic::AtomicUsize,
}

/// One trunk between two nodes: the local port number on each switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trunk {
    /// Port on the first node passed to [`Fabric::trunk`].
    pub port_a: u32,
    /// Port on the second node passed to [`Fabric::trunk`].
    pub port_b: u32,
}

/// A chain placed across the fabric by [`Fabric::place_chain`].
pub struct FabricChain {
    /// Traffic-generator end of the entry edge port.
    pub entry: shmem_sim::ChannelEnd,
    /// Sink end of the exit edge port.
    pub exit: shmem_sim::ChannelEnd,
    /// Entry port number (on the first span's node).
    pub entry_port: u32,
    /// Exit port number (on the last span's node).
    pub exit_port: u32,
    /// The chain's VMs with the node index hosting each.
    pub vms: Vec<(usize, Arc<Vm>)>,
    /// `(in, out)` switch ports of each VM, chain order.
    pub vm_ports: Vec<(u32, u32)>,
    /// Trunks created for inter-host hops, chain order.
    pub trunks: Vec<Trunk>,
    /// Forward steering seams per datapath id — feed these to
    /// [`crate::apps::FabricChainSteering`].
    pub seams: HashMap<u64, Vec<Seam>>,
}

impl FabricChain {
    /// All seam cookies, ascending.
    pub fn cookies(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .seams
            .values()
            .flat_map(|v| v.iter().map(|s| s.cookie))
            .collect();
        out.sort_unstable();
        out
    }

    /// Shuts down every VM of the chain.
    pub fn shutdown_vms(&self) {
        for (_, vm) in &self.vms {
            vm.shutdown();
        }
    }
}

impl Fabric {
    /// Builds one node per datapath id. `config_for` customises each node;
    /// the datapath id it returns is overwritten with the fabric's.
    pub fn new(dpids: &[u64], config_for: impl Fn(usize) -> HighwayNodeConfig) -> Fabric {
        assert!(!dpids.is_empty(), "fabric needs at least one node");
        let nodes = dpids
            .iter()
            .enumerate()
            .map(|(i, &dpid)| {
                let mut cfg = config_for(i);
                cfg.switch.datapath_id = dpid;
                HighwayNode::new(cfg)
            })
            .collect();
        Fabric {
            nodes,
            dpids: dpids.to_vec(),
            trunks: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// A fabric of default highway nodes.
    pub fn with_defaults(dpids: &[u64]) -> Fabric {
        Fabric::new(dpids, |_| HighwayNodeConfig::default())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the fabric has no nodes (never: `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `index`.
    pub fn node(&self, index: usize) -> &HighwayNode {
        &self.nodes[index]
    }

    /// The node owning `dpid`, if any.
    pub fn node_by_dpid(&self, dpid: u64) -> Option<&HighwayNode> {
        self.dpids
            .iter()
            .position(|&d| d == dpid)
            .map(|i| &self.nodes[i])
    }

    /// Datapath ids, node order.
    pub fn dpids(&self) -> &[u64] {
        &self.dpids
    }

    /// Starts every node's switch threads.
    pub fn start(&self) {
        for n in &self.nodes {
            n.start();
        }
    }

    /// Stops every node.
    pub fn stop(&self) {
        for n in &self.nodes {
            n.stop();
        }
    }

    /// Opens a TCP controller listener on every node; returns
    /// `(dpid, addr)` pairs, node order.
    pub fn listen_all(&self) -> std::io::Result<Vec<(u64, std::net::SocketAddr)>> {
        self.dpids
            .iter()
            .zip(&self.nodes)
            .map(|(&dpid, n)| Ok((dpid, n.listen_controller()?)))
            .collect()
    }

    /// Splices a simulated inter-host wire between nodes `a` and `b`:
    /// each switch gets a fresh port backed by one end of a raw
    /// shared-memory channel, so a packet output on `port_a` arrives as
    /// an rx on `port_b` (and vice versa) — the fabric's stand-in for a
    /// NIC-to-NIC cable.
    pub fn trunk(&self, a: usize, b: usize) -> Trunk {
        assert_ne!(a, b, "a trunk joins two distinct nodes");
        let no = self
            .trunks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let port_a = self.nodes[a].orchestrator().alloc_port();
        let port_b = self.nodes[b].orchestrator().alloc_port();
        let name = format!("trunk{no}");
        let (end_a, end_b) = shmem_sim::channel(&name, EDGE_RING_DEPTH);
        self.nodes[a]
            .switch()
            .add_dpdkr_port(PortNo(port_a as u16), &name, end_a);
        self.nodes[b]
            .switch()
            .add_dpdkr_port(PortNo(port_b as u16), &name, end_b);
        Trunk { port_a, port_b }
    }

    /// Places a forward VNF chain across the fabric. `spans[i]` names the
    /// node hosting VM `i`; entry sits on the first span's node, exit on
    /// the last's, and every hop between nodes gets its own trunk.
    ///
    /// No rules are installed here — the returned per-switch seam lists
    /// are meant for a [`crate::apps::FabricChainSteering`] app driving
    /// the switches over the control channel, so the installs arrive the
    /// way a real controller's would (and the p-2-p detector fires on
    /// them). Seam cookies are globally unique (`0x100 + k`, hop order).
    pub fn place_chain(&self, spans: &[usize], spec_for: impl Fn(usize) -> VnfSpec) -> FabricChain {
        assert!(!spans.is_empty(), "chain needs at least one VM");
        let first = spans[0];
        let last = *spans.last().unwrap();

        let (entry, entry_port) = self.edge_port(first, "fabric-entry");
        let (exit, exit_port) = self.edge_port(last, "fabric-exit");

        let mut vms = Vec::with_capacity(spans.len());
        let mut vm_ports = Vec::with_capacity(spans.len());
        for (i, &span) in spans.iter().enumerate() {
            let vm = self.nodes[span].orchestrator().create_vm(spec_for(i), 2);
            vm_ports.push((vm.of_ports()[0], vm.of_ports()[1]));
            vms.push((span, vm));
        }

        // Walk the hops, assigning each seam to the switch that owns its
        // ingress port and splicing a trunk wherever the chain changes
        // hosts.
        let mut seams: HashMap<u64, Vec<Seam>> = HashMap::new();
        let mut trunks = Vec::new();
        let mut cookie = 0;
        let mut push = |node: usize, from: u32, to: u32, k: &mut usize| {
            seams.entry(self.dpids[node]).or_default().push(Seam::new(
                *k,
                PortNo(from as u16),
                PortNo(to as u16),
            ));
            *k += 1;
        };
        push(first, entry_port, vm_ports[0].0, &mut cookie);
        for i in 0..spans.len() - 1 {
            let (here, next) = (spans[i], spans[i + 1]);
            if here == next {
                push(here, vm_ports[i].1, vm_ports[i + 1].0, &mut cookie);
            } else {
                let trunk = self.trunk(here, next);
                push(here, vm_ports[i].1, trunk.port_a, &mut cookie);
                push(next, trunk.port_b, vm_ports[i + 1].0, &mut cookie);
                trunks.push(trunk);
            }
        }
        push(last, vm_ports[spans.len() - 1].1, exit_port, &mut cookie);

        FabricChain {
            entry,
            exit,
            entry_port,
            exit_port,
            vms,
            vm_ports,
            trunks,
            seams,
        }
    }

    /// Creates an edge (traffic generator / sink) dpdkr port on `node`;
    /// returns the host-side channel end and the port number.
    fn edge_port(&self, node: usize, label: &str) -> (shmem_sim::ChannelEnd, u32) {
        let n = &self.nodes[node];
        let no = n.orchestrator().alloc_port();
        let (host_end, sw_end) = n.registry().create_channel(
            format!("dpdkr{no}"),
            SegmentKind::DpdkrNormal,
            EDGE_RING_DEPTH,
        );
        n.switch().add_dpdkr_port(PortNo(no as u16), label, sw_end);
        (host_end, no)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::FabricChainSteering;
    use dpdk_sim::Mbuf;
    use openflow::FabricRuntime;
    use packet_wire::PacketBuilder;
    use std::time::{Duration, Instant};

    fn pump_until(end: &mut shmem_sim::ChannelEnd, timeout: Duration) -> Option<Mbuf> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = end.recv() {
                return Some(m);
            }
            if Instant::now() > deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn cross_host_chain_converges_and_forwards() {
        let fabric = Fabric::with_defaults(&[0xa1, 0xb2]);
        fabric.start();
        // 3 VNFs: two on node 0 (one intra-host seam — the bypass
        // candidate), one on node 1 across a trunk.
        let mut chain = fabric.place_chain(&[0, 0, 1], |i| VnfSpec::forwarder(format!("vnf{i}")));
        assert_eq!(chain.trunks.len(), 1);
        assert_eq!(chain.cookies(), vec![0x100, 0x101, 0x102, 0x103, 0x104]);

        // Drive both switches from one runtime over in-process links.
        let mut rt = FabricRuntime::new(FabricChainSteering::new(chain.seams.clone()));
        rt.add_switch(fabric.node(0).connect_controller());
        rt.add_switch(fabric.node(1).connect_controller());
        rt.run_until_ready(Duration::from_secs(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !rt.app().settled() && Instant::now() < deadline {
            rt.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.app().settled(), "some switch never settled its seams");
        assert!(fabric
            .node(0)
            .wait_highway_converged(Duration::from_secs(10)));
        assert!(fabric
            .node(1)
            .wait_highway_converged(Duration::from_secs(10)));

        // The intra-host seam (vnf0.out -> vnf1.in) is bypassed on node 0.
        let links = fabric.node(0).active_links();
        assert!(
            links.contains(&(chain.vm_ports[0].1, chain.vm_ports[1].0)),
            "intra-host seam not bypassed: {links:?}"
        );

        // Traffic crosses both hosts.
        for _ in 0..4 {
            chain
                .entry
                .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
                .unwrap();
        }
        for _ in 0..4 {
            assert!(
                pump_until(&mut chain.exit, Duration::from_secs(10)).is_some(),
                "packet lost across the trunk"
            );
        }
        assert_eq!(rt.app().packet_ins(), 0);
        fabric.stop();
        chain.shutdown_vms();
    }
}
