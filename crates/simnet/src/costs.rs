//! Per-packet cycle costs.
//!
//! Quoted at the testbed's nominal 3 GHz. Derived from two sources, in this
//! order of authority:
//!
//! 1. the `highway-bench` Criterion microbenchmarks of *this repository's*
//!    real code (ring ops, EMC lookups, classifier misses, PMD mux) — run
//!    `cargo bench -p highway-bench` and compare;
//! 2. the OVS-DPDK performance literature for the absolute anchors the
//!    simulation cannot reproduce (≈ 250–300 cycles per EMC-hit switch
//!    traversal ⇒ 10–12 Mpps per PMD core; single-core l2fwd VMs around
//!    8–17 Mpps), which the paper's testbed class is known for.

/// Cycle costs of path components (per packet, burst-amortised).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPU frequency the costs are quoted against.
    pub cpu_hz: f64,
    /// PMD cores the vSwitch runs (the paper's server dedicates cores to
    /// OvS; two 10 G ports ⇒ two PMD cores is the customary sizing).
    pub ovs_pmd_cores: f64,
    /// Enqueue one packet on an SPSC ring (burst-amortised).
    pub ring_enqueue: f64,
    /// Dequeue one packet from an SPSC ring (burst-amortised).
    pub ring_dequeue: f64,
    /// Flow-key extraction + EMC hit inside the switch.
    pub emc_hit: f64,
    /// Extra cycles when the EMC misses but the megaflow (wildcard) cache
    /// hits: one hash probe per cached mask instead of a classifier walk.
    pub megaflow_extra: f64,
    /// Extra cycles when both caches miss into the tuple-space classifier
    /// (quoted *beyond* the EMC probe, like `megaflow_extra`).
    pub classifier_extra: f64,
    /// EMC hit probability in steady state (chains: stable flows ⇒ ~1.0).
    pub emc_hit_rate: f64,
    /// Megaflow hit probability *among EMC misses*; cache-tier experiments
    /// raise it. At the default 0.0 every EMC miss still pays the megaflow
    /// *probe* (`megaflow_extra`) before the classifier walk — the datapath
    /// always consults the tier — so EMC-miss costs are `megaflow_extra`
    /// higher than the pre-megaflow two-tier model. The published-figure
    /// calibrations are unaffected: they run at the steady state
    /// `emc_hit_rate = 1.0`, where neither term contributes.
    pub megaflow_hit_rate: f64,
    /// Executing the matched output action (batched).
    pub ovs_action: f64,
    /// NIC driver rx+tx overhead per packet on a physical port.
    pub nic_driver: f64,
    /// The guest application's per-packet work (paper's forwarder).
    pub vnf_app: f64,
    /// Cost of polling one empty port (discovery latency term).
    pub empty_poll: f64,
    /// Source VM per-packet generation cost.
    pub gen_cost: f64,
    /// Sink VM per-packet accounting cost.
    pub sink_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

impl CostModel {
    /// Overrides the number of PMD cores dedicated to the vSwitch.
    ///
    /// OVS-DPDK sizes its PMD set to the ports it must poll: the memory-only
    /// experiment (no physical ports) runs the default single PMD core,
    /// while the NIC experiment dedicates cores to the two physical ports
    /// plus the dpdkr rings (three in our calibration).
    pub fn with_pmd_cores(mut self, cores: f64) -> CostModel {
        self.ovs_pmd_cores = cores;
        self
    }

    /// Calibration for the paper's testbed (E5-2690 v2 @ 3 GHz).
    ///
    /// The ring and tier costs are re-anchored against the measured
    /// `highway_showdown` bench of this repository's real datapath
    /// (see `BENCH_highway_showdown.json`): a descriptor ring hop measures
    /// ≈ 98 cycles (⇒ 50/50 enqueue/dequeue), and the classifier walk past
    /// the decoy subtables costs ≈ 7.5× the warm-cache extra — far steeper
    /// than the pre-measurement guess — scaled here to the literature's
    /// absolute EMC-hit anchor (≈ 10–12 Mpps/core).
    pub fn paper_testbed() -> CostModel {
        CostModel {
            cpu_hz: 3.0e9,
            ovs_pmd_cores: 2.0,
            ring_enqueue: 50.0,
            ring_dequeue: 50.0,
            emc_hit: 120.0,
            megaflow_extra: 190.0,
            classifier_extra: 1400.0,
            emc_hit_rate: 1.0,
            megaflow_hit_rate: 0.0,
            ovs_action: 60.0,
            nic_driver: 70.0,
            vnf_app: 100.0,
            empty_poll: 55.0,
            gen_cost: 90.0,
            sink_cost: 60.0,
        }
    }

    /// Overrides the cache-tier hit rates (EMC overall, megaflow among
    /// EMC misses) — the knob the cache-tier experiments sweep.
    pub fn with_cache_hit_rates(mut self, emc: f64, megaflow: f64) -> CostModel {
        self.emc_hit_rate = emc;
        self.megaflow_hit_rate = megaflow;
        self
    }

    /// Switch-side cost of carrying one packet across one seam
    /// (dequeue from source port, classify, act, enqueue to destination).
    /// Classification walks the tier hierarchy: an EMC miss costs
    /// `megaflow_extra` if the megaflow catches it, `megaflow_extra +
    /// classifier_extra` if it falls through to the tuple-space walk.
    pub fn ovs_crossing(&self) -> f64 {
        let emc_miss = 1.0 - self.emc_hit_rate;
        self.ring_dequeue
            + self.emc_hit
            + emc_miss
                * (self.megaflow_extra + (1.0 - self.megaflow_hit_rate) * self.classifier_extra)
            + self.ovs_action
            + self.ring_enqueue
    }

    /// Switch-side cost of a seam whose endpoint is a physical NIC.
    pub fn ovs_nic_crossing(&self) -> f64 {
        self.ovs_crossing() + self.nic_driver
    }

    /// A forwarding VM's per-packet cost (receive, process, send).
    pub fn vm_forward(&self) -> f64 {
        self.ring_dequeue + self.vnf_app + self.ring_enqueue
    }

    /// Total switch capacity in cycles/second.
    pub fn ovs_capacity_cycles(&self) -> f64 {
        self.ovs_pmd_cores * self.cpu_hz
    }

    /// Implied single-core switch forwarding rate (sanity anchor:
    /// OVS-DPDK does ≈10–12 Mpps/core phy-phy with EMC hits).
    pub fn implied_ovs_mpps_per_core(&self) -> f64 {
        self.cpu_hz / self.ovs_crossing() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_known_anchors() {
        let c = CostModel::paper_testbed();
        let per_core = c.implied_ovs_mpps_per_core();
        assert!(
            (9.0..=13.0).contains(&per_core),
            "OVS-DPDK per-core rate {per_core:.1} Mpps out of the known 10-12 band"
        );
        let vm_mpps = c.cpu_hz / c.vm_forward() / 1e6;
        assert!(
            (10.0..=20.0).contains(&vm_mpps),
            "single-core forwarder {vm_mpps:.1} Mpps out of the plausible band"
        );
    }

    #[test]
    fn emc_misses_are_more_expensive() {
        let mut c = CostModel::paper_testbed();
        let hit = c.ovs_crossing();
        c.emc_hit_rate = 0.0;
        assert!(c.ovs_crossing() > hit + 400.0);
    }

    #[test]
    fn megaflow_tier_sits_between_emc_and_classifier() {
        let emc_only = CostModel::paper_testbed().with_cache_hit_rates(1.0, 0.0);
        let megaflow = CostModel::paper_testbed().with_cache_hit_rates(0.0, 1.0);
        let classifier = CostModel::paper_testbed().with_cache_hit_rates(0.0, 0.0);
        assert!(emc_only.ovs_crossing() < megaflow.ovs_crossing());
        assert!(megaflow.ovs_crossing() < classifier.ovs_crossing());
        // A megaflow hit dodges the whole classifier walk.
        assert!(
            classifier.ovs_crossing() - megaflow.ovs_crossing()
                >= classifier.classifier_extra - f64::EPSILON
        );
        // At the evaluation's steady state (EMC hit rate 1.0 — every
        // published figure) the megaflow terms contribute nothing, so the
        // default crossing cost is exactly the pre-megaflow calibration.
        assert_eq!(
            CostModel::paper_testbed().ovs_crossing(),
            emc_only.ovs_crossing()
        );
    }

    #[test]
    fn nic_crossing_includes_driver() {
        let c = CostModel::paper_testbed();
        assert!(c.ovs_nic_crossing() > c.ovs_crossing());
    }
}
