//! The closed-chain bottleneck solver.
//!
//! Poll-mode dataplanes are deterministic pipelines: every packet costs a
//! fixed number of cycles on every resource it touches, so a chain's
//! sustained throughput is set by the single most-loaded resource. For a
//! symmetric bidirectional load at rate `x` packets/second *per direction*:
//!
//! ```text
//!     x · demand_r (cycles/pkt, both directions)  ≤  capacity_r
//!     x* = min_r capacity_r / demand_r
//! ```
//!
//! and the figures report the aggregate `2·x*`.

use crate::costs::CostModel;
use crate::topology::{ChainSpec, EdgeKind, Mode};

/// One resource's demand/capacity and resulting utilisation at `x*`.
#[derive(Debug, Clone)]
pub struct ResourceLoad {
    pub name: String,
    /// Cycles (or pps-equivalents) consumed per packet-pair.
    pub demand_per_pair: f64,
    /// Capacity in the same unit per second.
    pub capacity: f64,
    /// Utilisation at the solved throughput (1.0 = the bottleneck).
    pub utilisation: f64,
}

/// A solved chain.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Sustained rate per direction (pps).
    pub per_direction_pps: f64,
    /// Aggregate bidirectional rate (pps) — the figures' y-axis.
    pub aggregate_mpps: f64,
    /// Name of the binding resource.
    pub bottleneck: String,
    /// Every resource's load at the solution.
    pub resources: Vec<ResourceLoad>,
}

/// Builds the per-resource demand table for a chain.
/// `demand_per_pair` counts BOTH directions (one packet each way).
fn demands(spec: &ChainSpec, cost: &CostModel) -> Vec<(String, f64, f64)> {
    let mut out: Vec<(String, f64, f64)> = Vec::new();

    // --- the vSwitch PMD pool ---
    let per_dir_vm_seams = match spec.mode {
        Mode::Vanilla => spec.vm_seams() as f64,
        Mode::Highway => 0.0,
    };
    let per_dir_nic_seams = spec.nic_seams() as f64;
    let ovs_cycles_per_pair = 2.0
        * (per_dir_vm_seams * cost.ovs_crossing() + per_dir_nic_seams * cost.ovs_nic_crossing());
    if ovs_cycles_per_pair > 0.0 {
        out.push((
            "ovs-pmd".into(),
            ovs_cycles_per_pair,
            cost.ovs_capacity_cycles(),
        ));
    }

    // --- the VMs ---
    match spec.edge {
        EdgeKind::Memory => {
            // Each endpoint VM generates one direction's packet and sinks
            // the other's: one gen+enqueue plus one dequeue+sink per pair.
            // Both endpoints carry identical demand; model one (symmetric).
            let endpoint =
                (cost.gen_cost + cost.ring_enqueue) + (cost.ring_dequeue + cost.sink_cost);
            out.push(("vm-endpoint".into(), endpoint, cost.cpu_hz));
            if spec.forwarding_vms() > 0 {
                // Every forwarding VM carries both directions.
                out.push(("vm-forwarder".into(), 2.0 * cost.vm_forward(), cost.cpu_hz));
            }
        }
        EdgeKind::Nic { .. } => {
            if spec.forwarding_vms() > 0 {
                out.push(("vm-forwarder".into(), 2.0 * cost.vm_forward(), cost.cpu_hz));
            }
        }
    }

    // --- the NICs ---
    if let EdgeKind::Nic { gbps, frame_len } = spec.edge {
        // Each NIC port carries one packet per direction per pair
        // (one direction enters it, the other leaves it).
        let line_pps = nic_sim_line_rate(gbps, frame_len);
        out.push(("nic-port".into(), 2.0, 2.0 * line_pps));
    }

    out
}

/// 10 GbE framing economics (duplicated from `nic-sim` to keep `simnet`
/// dependency-free; cross-checked by a test against the known constants).
fn nic_sim_line_rate(gbps: f64, frame_len: usize) -> f64 {
    gbps * 1e9 / (((frame_len + 20) * 8) as f64)
}

/// Solves a chain for its sustained bidirectional throughput.
pub fn solve(spec: &ChainSpec, cost: &CostModel) -> Solution {
    let demand_table = demands(spec, cost);
    let mut best: Option<(f64, &str)> = None;
    for (name, demand, capacity) in &demand_table {
        if *demand <= 0.0 {
            continue;
        }
        let x = capacity / demand;
        match best {
            Some((bx, _)) if bx <= x => {}
            _ => best = Some((x, name)),
        }
    }
    let (x, bottleneck) = best.expect("chain has at least one resource");
    let resources = demand_table
        .iter()
        .map(|(name, demand, capacity)| ResourceLoad {
            name: name.clone(),
            demand_per_pair: *demand,
            capacity: *capacity,
            utilisation: if *capacity > 0.0 {
                (x * demand / capacity).min(1.0)
            } else {
                0.0
            },
        })
        .collect();
    Solution {
        per_direction_pps: x,
        aggregate_mpps: 2.0 * x / 1e6,
        bottleneck: bottleneck.to_string(),
        resources,
    }
}

/// Utilisation of a named resource when the chain is offered
/// `offered_pps_per_direction` (for the latency model).
pub fn utilisation_at(
    spec: &ChainSpec,
    cost: &CostModel,
    resource: &str,
    offered_pps_per_direction: f64,
) -> f64 {
    demands(spec, cost)
        .iter()
        .find(|(name, _, _)| name == resource)
        .map(|(_, demand, capacity)| (offered_pps_per_direction * demand / capacity).min(0.999))
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Memory-only experiments run the default single-PMD switch.
    fn mem_cost() -> CostModel {
        CostModel::paper_testbed().with_pmd_cores(1.0)
    }

    /// NIC experiments dedicate PMD cores to the physical ports.
    fn nic_cost() -> CostModel {
        CostModel::paper_testbed().with_pmd_cores(3.0)
    }

    #[test]
    fn vanilla_memory_chain_is_switch_bound_and_declines() {
        let cost = mem_cost();
        let s2 = solve(&ChainSpec::memory(2, Mode::Vanilla), &cost);
        let s8 = solve(&ChainSpec::memory(8, Mode::Vanilla), &cost);
        assert!(s8.aggregate_mpps < s2.aggregate_mpps / 4.0);
        assert_eq!(s8.bottleneck, "ovs-pmd");
        // 1/(N-1) shape: throughput ratio ≈ seam ratio.
        let ratio = s2.aggregate_mpps / s8.aggregate_mpps;
        assert!((6.0..=8.0).contains(&ratio), "ratio {ratio:.2} not ≈ 7");
    }

    #[test]
    fn highway_memory_chain_is_vm_bound_with_flat_tail() {
        let cost = mem_cost();
        let s2 = solve(&ChainSpec::memory(2, Mode::Highway), &cost);
        let s3 = solve(&ChainSpec::memory(3, Mode::Highway), &cost);
        let s8 = solve(&ChainSpec::memory(8, Mode::Highway), &cost);
        // N=2 has no forwarding VM (endpoints only); from N=3 on the
        // forwarder core binds and throughput is flat.
        assert!(s2.aggregate_mpps >= s3.aggregate_mpps);
        assert!((s8.aggregate_mpps - s3.aggregate_mpps).abs() < 1e-6);
        assert!(s8.bottleneck.starts_with("vm"));
    }

    #[test]
    fn highway_beats_vanilla_everywhere_and_gap_grows() {
        let cost = mem_cost();
        let mut last_gap = 0.0;
        for n in 2..=8 {
            let v = solve(&ChainSpec::memory(n, Mode::Vanilla), &cost).aggregate_mpps;
            let h = solve(&ChainSpec::memory(n, Mode::Highway), &cost).aggregate_mpps;
            assert!(h >= v, "highway slower at n={n}: {h:.2} vs {v:.2}");
            let gap = h / v;
            assert!(gap >= last_gap * 0.99, "gap shrank at n={n}");
            last_gap = gap;
        }
        assert!(last_gap > 4.0, "gap at n=8 only {last_gap:.1}×");
    }

    #[test]
    fn nic_chain_matches_figure_3b_shape() {
        let cost = nic_cost();
        // N=1: both modes identical (no VM seam to bypass).
        let v1 = solve(&ChainSpec::nic(1, Mode::Vanilla), &cost).aggregate_mpps;
        let h1 = solve(&ChainSpec::nic(1, Mode::Highway), &cost).aggregate_mpps;
        assert!((v1 - h1).abs() < 1e-6);
        // The y-axis of Fig. 3(b) spans 4..20 Mpps; N=1 sits in the teens.
        assert!((10.0..=20.0).contains(&v1), "N=1 at {v1:.1} Mpps");
        // Vanilla declines with N; highway stays flat.
        let v8 = solve(&ChainSpec::nic(8, Mode::Vanilla), &cost).aggregate_mpps;
        let h8 = solve(&ChainSpec::nic(8, Mode::Highway), &cost).aggregate_mpps;
        assert!((3.0..=7.0).contains(&v8), "N=8 vanilla at {v8:.1} Mpps");
        assert!(
            (h8 - h1).abs() < 0.1 * h1,
            "highway not flat: {h1:.1}→{h8:.1}"
        );
    }

    #[test]
    fn nic_line_rate_constant() {
        let pps = nic_sim_line_rate(10.0, 64);
        assert!((pps / 1e6 - 14.88).abs() < 0.01);
    }

    #[test]
    fn utilisation_at_tracks_offered_load() {
        let cost = CostModel::paper_testbed();
        let spec = ChainSpec::memory(4, Mode::Vanilla);
        let sol = solve(&spec, &cost);
        let half = utilisation_at(&spec, &cost, "ovs-pmd", sol.per_direction_pps / 2.0);
        assert!((half - 0.5).abs() < 0.05, "got {half}");
        let full = utilisation_at(&spec, &cost, "ovs-pmd", sol.per_direction_pps);
        assert!(full > 0.95);
    }
}
