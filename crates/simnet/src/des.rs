//! A packet-level discrete-event cross-check of the bottleneck solver.
//!
//! The figures are produced by the closed-form solver in [`crate::solver`];
//! this module re-derives the same numbers the slow way — individual
//! packets visiting FIFO stations in virtual time — so the reproduction
//! does not rest on one analytic shortcut. The two models share only the
//! [`CostModel`] inputs; agreement (within a few percent at saturation) is
//! asserted by tests and by `tests/chain_functional.rs`-style CI runs.
//!
//! The DES also yields *latency under load* directly (sojourn times),
//! providing an independent check on the M/M/1 approximation behind the
//! §3 latency experiment: with deterministic service the queueing is
//! M/D/1-like, so DES latencies must sit at or below the analytic curve
//! while preserving its shape.

use crate::costs::CostModel;
use crate::topology::{ChainSpec, EdgeKind, Mode};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One shared FIFO resource with one timeline per server (a PMD *pool*
/// has one per core — modelling it as a single faster server would create
/// a false serialisation point and starve balanced pipelines).
#[derive(Debug, Clone)]
struct Station {
    /// When each server next becomes free (cycles).
    free_at: Vec<u64>,
    /// Packets served (diagnostics).
    served: u64,
}

impl Station {
    /// Admits one packet at time `t`: earliest-free server takes it.
    fn admit(&mut self, t: u64, service: u64) -> u64 {
        let idx = (0..self.free_at.len())
            .min_by_key(|i| self.free_at[*i])
            .expect("station has servers");
        let start = t.max(self.free_at[idx]);
        let done = start + service;
        self.free_at[idx] = done;
        self.served += 1;
        done
    }
}

/// A packet's itinerary: `(station index, service cycles)` per hop.
type Route = Vec<(usize, u64)>;

/// The simulated chain: stations plus one route per direction.
pub struct ChainSim {
    stations: Vec<Station>,
    names: Vec<&'static str>,
    forward: Route,
    reverse: Route,
    cpu_hz: f64,
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Delivered aggregate throughput (Mpps, both directions).
    pub aggregate_mpps: f64,
    /// Mean one-way sojourn (µs) over the steady-state half of the run.
    pub mean_latency_us: f64,
    /// 99th-percentile one-way sojourn (µs).
    pub p99_latency_us: f64,
    /// Packets delivered.
    pub delivered: u64,
}

impl ChainSim {
    /// Builds the event-level twin of a [`ChainSpec`] under a [`CostModel`].
    ///
    /// Station granularity matches the solver's resources: the vSwitch PMD
    /// pool is one station whose service time is divided by its core count;
    /// each VM is a station serving both directions; each NIC port is a
    /// station at its line rate.
    pub fn new(spec: &ChainSpec, cost: &CostModel) -> ChainSim {
        let mut stations = Vec::new();
        let mut names = Vec::new();
        let mut add = |name: &'static str, servers: usize| {
            stations.push(Station {
                free_at: vec![0; servers.max(1)],
                served: 0,
            });
            names.push(name);
            stations.len() - 1
        };

        let cyc = |cycles: f64| cycles.max(1.0).round() as u64;
        // The PMD pool: one server per core, full per-packet service.
        let ovs = add("ovs-pmd", cost.ovs_pmd_cores.round() as usize);
        let ovs_service = cyc(cost.ovs_crossing());
        let ovs_nic_service = cyc(cost.ovs_nic_crossing());

        let mut forward: Route = Vec::new();
        let mut reverse: Route = Vec::new();

        match spec.edge {
            EdgeKind::Memory => {
                let src = add("vm-endpoint-a", 1);
                let mut mids = Vec::new();
                for _ in 0..spec.forwarding_vms() {
                    mids.push(add("vm-forwarder", 1));
                }
                let dst = add("vm-endpoint-b", 1);

                let gen = cyc(cost.gen_cost + cost.ring_enqueue);
                let sink = cyc(cost.ring_dequeue + cost.sink_cost);
                let fwd = cyc(cost.vm_forward());
                let crossing = match spec.mode {
                    Mode::Vanilla => Some(ovs_service),
                    Mode::Highway => None,
                };

                // Forward: endpoint A generates, every seam optionally
                // crosses the switch, forwarders relay, endpoint B sinks.
                forward.push((src, gen));
                for mid in &mids {
                    if let Some(s) = crossing {
                        forward.push((ovs, s));
                    }
                    forward.push((*mid, fwd));
                }
                if let Some(s) = crossing {
                    forward.push((ovs, s));
                }
                forward.push((dst, sink));

                // Reverse: mirrored.
                reverse.push((dst, gen));
                for mid in mids.iter().rev() {
                    if let Some(s) = crossing {
                        reverse.push((ovs, s));
                    }
                    reverse.push((*mid, fwd));
                }
                if let Some(s) = crossing {
                    reverse.push((ovs, s));
                }
                reverse.push((src, sink));
            }
            EdgeKind::Nic { gbps, frame_len } => {
                let nic_a = add("nic-a", 1);
                let nic_b = add("nic-b", 1);
                let line_pps = gbps * 1e9 / (((frame_len + 20) * 8) as f64);
                let nic_service = cyc(cost.cpu_hz / line_pps);
                let mut vms = Vec::new();
                for _ in 0..spec.n_vms {
                    vms.push(add("vm-forwarder", 1));
                }
                let fwd = cyc(cost.vm_forward());
                let inner = match spec.mode {
                    Mode::Vanilla => Some(ovs_service),
                    Mode::Highway => None,
                };

                forward.push((nic_a, nic_service));
                forward.push((ovs, ovs_nic_service));
                for (i, vm) in vms.iter().enumerate() {
                    if i > 0 {
                        if let Some(s) = inner {
                            forward.push((ovs, s));
                        }
                    }
                    forward.push((*vm, fwd));
                }
                forward.push((ovs, ovs_nic_service));
                forward.push((nic_b, nic_service));

                reverse.push((nic_b, nic_service));
                reverse.push((ovs, ovs_nic_service));
                for (i, vm) in vms.iter().rev().enumerate() {
                    if i > 0 {
                        if let Some(s) = inner {
                            reverse.push((ovs, s));
                        }
                    }
                    reverse.push((*vm, fwd));
                }
                reverse.push((ovs, ovs_nic_service));
                reverse.push((nic_a, nic_service));
            }
        }

        ChainSim {
            stations,
            names,
            forward,
            reverse,
            cpu_hz: cost.cpu_hz,
        }
    }

    /// Runs `packets_per_direction` packets per direction with
    /// *deterministic* interarrivals at `offered_pps_per_direction`.
    /// Below capacity this behaves like D/D/1 (no queueing): right for
    /// saturation-throughput questions, wrong for latency-under-load.
    pub fn run(&mut self, packets_per_direction: u64, offered_pps_per_direction: f64) -> SimResult {
        let interval = (self.cpu_hz / offered_pps_per_direction).round() as u64;
        let fwd: Vec<u64> = (0..packets_per_direction).map(|s| s * interval).collect();
        let rev: Vec<u64> = (0..packets_per_direction)
            .map(|s| s * interval + interval / 2)
            .collect();
        self.run_schedule(&fwd, &rev)
    }

    /// Runs with *Poisson* arrivals (exponential interarrivals from a
    /// seeded generator) — the open-system assumption behind the latency
    /// experiment. Deterministic given the seed.
    pub fn run_poisson(
        &mut self,
        packets_per_direction: u64,
        offered_pps_per_direction: f64,
        seed: u64,
    ) -> SimResult {
        let mean_interval = self.cpu_hz / offered_pps_per_direction;
        let schedule = |mut state: u64| {
            let mut t = 0f64;
            let mut out = Vec::with_capacity(packets_per_direction as usize);
            for _ in 0..packets_per_direction {
                // xorshift64* + inverse-transform exponential sampling.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
                t += -u.max(1e-12).ln() * mean_interval;
                out.push(t as u64);
            }
            out
        };
        let fwd = schedule(seed | 1);
        let rev = schedule(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        self.run_schedule(&fwd, &rev)
    }

    /// The event loop proper: two explicit per-direction arrival schedules
    /// (cycles, ascending).
    fn run_schedule(&mut self, fwd_arrivals: &[u64], rev_arrivals: &[u64]) -> SimResult {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Ev {
            time: u64,
            seq: u64,
            dir: bool,
            stage: usize,
        }
        for s in &mut self.stations {
            s.free_at.fill(0);
            s.served = 0;
        }
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        for (seq, t) in fwd_arrivals.iter().enumerate() {
            heap.push(Reverse(Ev {
                time: *t,
                seq: seq as u64,
                dir: false,
                stage: 0,
            }));
        }
        for (seq, t) in rev_arrivals.iter().enumerate() {
            heap.push(Reverse(Ev {
                time: *t,
                seq: seq as u64,
                dir: true,
                stage: 0,
            }));
        }

        let packets_per_direction = fwd_arrivals.len() as u64;
        let mut sojourns_us: Vec<f64> = Vec::with_capacity(2 * fwd_arrivals.len());
        let mut last_done = 0u64;
        let mut delivered = 0u64;
        while let Some(Reverse(ev)) = heap.pop() {
            let route: &Route = if ev.dir { &self.reverse } else { &self.forward };
            let (station, service) = route[ev.stage];
            let done = self.stations[station].admit(ev.time, service);
            if ev.stage + 1 < route.len() {
                heap.push(Reverse(Ev {
                    time: done,
                    seq: ev.seq,
                    dir: ev.dir,
                    stage: ev.stage + 1,
                }));
            } else {
                delivered += 1;
                last_done = last_done.max(done);
                let injected = if ev.dir {
                    rev_arrivals[ev.seq as usize]
                } else {
                    fwd_arrivals[ev.seq as usize]
                };
                // Steady-state measurement: skip the warm-up half.
                if ev.seq >= packets_per_direction / 2 {
                    sojourns_us.push((done - injected) as f64 / self.cpu_hz * 1e6);
                }
            }
        }

        let horizon_s = last_done as f64 / self.cpu_hz;
        sojourns_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = if sojourns_us.is_empty() {
            0.0
        } else {
            sojourns_us.iter().sum::<f64>() / sojourns_us.len() as f64
        };
        let p99 = sojourns_us
            .get((sojourns_us.len().saturating_sub(1)) * 99 / 100)
            .copied()
            .unwrap_or(0.0);
        SimResult {
            aggregate_mpps: delivered as f64 / horizon_s / 1e6,
            mean_latency_us: mean,
            p99_latency_us: p99,
            delivered,
        }
    }

    /// Saturation throughput, measured closed-loop: a fixed window of
    /// packets circulates per direction (each completion immediately
    /// injects a successor), so every station stays fed and the two
    /// directions remain interleaved — the steady state the solver
    /// describes. (An *open* overload batch would serialise the
    /// directions at the endpoint stations: all of direction A's backlog
    /// arrives before direction B's first packets, and FIFO order then
    /// processes them sequentially — measuring a drain wave, not the
    /// sustainable rate.)
    pub fn saturate(&mut self, packets_per_direction: u64) -> SimResult {
        self.run_closed(packets_per_direction, 64)
    }

    /// Closed-loop run: `window` packets in flight per direction; each
    /// completion injects the next until `packets_per_direction` have been
    /// delivered per direction. Throughput is measured over the second
    /// half of completions (steady state).
    pub fn run_closed(&mut self, packets_per_direction: u64, window: u64) -> SimResult {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Ev {
            time: u64,
            seq: u64,
            dir: bool,
            stage: usize,
        }
        for s in &mut self.stations {
            s.free_at.fill(0);
            s.served = 0;
        }
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        let window = window.min(packets_per_direction).max(1);
        // Stagger the initial windows so the first burst interleaves.
        for seq in 0..window {
            heap.push(Reverse(Ev {
                time: seq,
                seq,
                dir: false,
                stage: 0,
            }));
            heap.push(Reverse(Ev {
                time: seq,
                seq,
                dir: true,
                stage: 0,
            }));
        }
        let mut injected = [window, window];
        let mut delivered = 0u64;
        let mut last_done = 0u64;
        let measure_after = packets_per_direction; // half of 2N completions
        let mut measure_start = 0u64;
        let mut measured = 0u64;
        while let Some(Reverse(ev)) = heap.pop() {
            let route: &Route = if ev.dir { &self.reverse } else { &self.forward };
            let (station, service) = route[ev.stage];
            let done = self.stations[station].admit(ev.time, service);
            if ev.stage + 1 < route.len() {
                heap.push(Reverse(Ev {
                    time: done,
                    seq: ev.seq,
                    dir: ev.dir,
                    stage: ev.stage + 1,
                }));
            } else {
                delivered += 1;
                last_done = last_done.max(done);
                if delivered == measure_after {
                    measure_start = done;
                } else if delivered > measure_after {
                    measured += 1;
                }
                // Closed loop: this completion admits a successor.
                let dir_idx = usize::from(ev.dir);
                if injected[dir_idx] < packets_per_direction {
                    let seq = injected[dir_idx];
                    injected[dir_idx] += 1;
                    heap.push(Reverse(Ev {
                        time: done,
                        seq,
                        dir: ev.dir,
                        stage: 0,
                    }));
                }
            }
        }
        let span_s = last_done.saturating_sub(measure_start) as f64 / self.cpu_hz;
        SimResult {
            aggregate_mpps: if span_s > 0.0 {
                measured as f64 / span_s / 1e6
            } else {
                0.0
            },
            // Closed-loop sojourn reflects the window size, not the open
            // system the latency experiment models — not reported.
            mean_latency_us: 0.0,
            p99_latency_us: 0.0,
            delivered,
        }
    }

    /// Per-station packets served in the last run (diagnostics).
    pub fn served(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .zip(&self.stations)
            .map(|(n, s)| (*n, s.served))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    fn mem_cost() -> CostModel {
        CostModel::paper_testbed().with_pmd_cores(1.0)
    }

    fn nic_cost() -> CostModel {
        CostModel::paper_testbed().with_pmd_cores(3.0)
    }

    /// DES saturation agrees with the closed-form solver within 10 %.
    fn assert_agreement(spec: ChainSpec, cost: &CostModel) {
        let analytic = solve(&spec, cost).aggregate_mpps;
        let mut sim = ChainSim::new(&spec, cost);
        let des = sim.saturate(20_000).aggregate_mpps;
        let err = (des - analytic).abs() / analytic;
        assert!(
            err < 0.10,
            "{spec:?}: DES {des:.2} vs analytic {analytic:.2} Mpps ({:.1}% off)",
            err * 100.0
        );
    }

    #[test]
    fn des_matches_solver_memory_vanilla() {
        for n in [2usize, 4, 8] {
            assert_agreement(ChainSpec::memory(n, Mode::Vanilla), &mem_cost());
        }
    }

    #[test]
    fn des_matches_solver_memory_highway() {
        for n in [2usize, 4, 8] {
            assert_agreement(ChainSpec::memory(n, Mode::Highway), &mem_cost());
        }
    }

    #[test]
    fn des_matches_solver_nic_both_modes() {
        for n in [1usize, 4, 8] {
            assert_agreement(ChainSpec::nic(n, Mode::Vanilla), &nic_cost());
            assert_agreement(ChainSpec::nic(n, Mode::Highway), &nic_cost());
        }
    }

    #[test]
    fn des_reproduces_figure_3a_shape() {
        // The full published shape, from the packet-level model alone.
        let cost = mem_cost();
        let mut prev_gap = 0.0;
        for n in [2usize, 4, 6, 8] {
            let v = ChainSim::new(&ChainSpec::memory(n, Mode::Vanilla), &cost)
                .saturate(10_000)
                .aggregate_mpps;
            let h = ChainSim::new(&ChainSpec::memory(n, Mode::Highway), &cost)
                .saturate(10_000)
                .aggregate_mpps;
            assert!(h > v, "highway wins at n={n}");
            let gap = h / v;
            assert!(gap >= prev_gap * 0.95, "gap does not collapse with n");
            prev_gap = gap;
        }
        assert!(prev_gap > 4.0, "n=8 gap {prev_gap:.1}x");
    }

    #[test]
    fn low_load_latency_is_the_service_sum() {
        let cost = mem_cost();
        let spec = ChainSpec::memory(4, Mode::Highway);
        let mut sim = ChainSim::new(&spec, &cost);
        // 1 kpps per direction: queues never form.
        let r = sim.run(2_000, 1_000.0);
        let service_sum_us: f64 = sim
            .forward
            .iter()
            .map(|(_, s)| *s as f64 / cost.cpu_hz * 1e6)
            .sum();
        assert!(
            (r.mean_latency_us - service_sum_us).abs() < 0.05 * service_sum_us + 0.01,
            "mean {:.3} µs vs unloaded path {:.3} µs",
            r.mean_latency_us,
            service_sum_us
        );
        assert_eq!(r.delivered, 4_000);
    }

    #[test]
    fn latency_gap_under_poisson_load_matches_the_claim() {
        let cost = nic_cost();
        // Load both modes at 90 % of VANILLA capacity (the experiment's
        // operating point) with Poisson arrivals: the vanilla chain queues
        // hard at its bottleneck, the highway cruises — the paper's ~80 %
        // latency improvement at N=8. (Service here is deterministic, so
        // queueing is M/D/1-like: somewhat milder than the analytic M/M/1
        // curve; the shape and the large improvement must survive.)
        let spec_v = ChainSpec::nic(8, Mode::Vanilla);
        let spec_h = ChainSpec::nic(8, Mode::Highway);
        let cap_v = solve(&spec_v, &cost).per_direction_pps;
        let mut sim_v = ChainSim::new(&spec_v, &cost);
        let mut sim_h = ChainSim::new(&spec_h, &cost);
        let lat_v = sim_v.run_poisson(60_000, 0.9 * cap_v, 42).mean_latency_us;
        let lat_h = sim_h.run_poisson(60_000, 0.9 * cap_v, 42).mean_latency_us;
        let improvement = 1.0 - lat_h / lat_v;
        assert!(
            improvement > 0.5,
            "DES improvement {improvement:.2} at N=8 (paper: ~0.80)"
        );

        // And latency is monotone in load for the vanilla chain.
        let l50 = sim_v.run_poisson(60_000, 0.5 * cap_v, 7).mean_latency_us;
        let l90 = sim_v.run_poisson(60_000, 0.9 * cap_v, 7).mean_latency_us;
        assert!(l90 > l50);
    }

    #[test]
    fn poisson_arrivals_are_seed_deterministic() {
        let cost = mem_cost();
        let spec = ChainSpec::memory(3, Mode::Vanilla);
        let a = ChainSim::new(&spec, &cost)
            .run_poisson(5_000, 1.0e6, 99)
            .mean_latency_us;
        let b = ChainSim::new(&spec, &cost)
            .run_poisson(5_000, 1.0e6, 99)
            .mean_latency_us;
        assert_eq!(a, b);
    }

    #[test]
    fn served_accounting_is_conserved() {
        let cost = mem_cost();
        let mut sim = ChainSim::new(&ChainSpec::memory(3, Mode::Vanilla), &cost);
        let r = sim.saturate(1_000);
        assert_eq!(r.delivered, 2_000);
        let served = sim.served();
        // The single forwarder carries every packet of both directions.
        let fwd = served.iter().find(|(n, _)| *n == "vm-forwarder").unwrap().1;
        assert_eq!(fwd, 2_000);
        // The switch carries 2 seams × both directions.
        let ovs = served.iter().find(|(n, _)| *n == "ovs-pmd").unwrap().1;
        assert_eq!(ovs, 4_000);
    }
}
