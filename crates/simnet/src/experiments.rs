//! One function per table/figure of the paper.
//!
//! Each returns printable rows; the `highway-bench` binaries format them
//! and EXPERIMENTS.md records them against the paper's reported values.

use crate::costs::CostModel;
use crate::latency::compare;
use crate::solver::solve;
use crate::topology::{ChainSpec, Mode};

/// One x-axis point of a figure.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Chain length (number of VMs).
    pub n_vms: usize,
    /// Vanilla OvS-DPDK value.
    pub traditional: f64,
    /// Transparent-highway value.
    pub highway: f64,
    /// Unit label for printing.
    pub unit: &'static str,
}

impl FigureRow {
    /// Highway-to-traditional ratio.
    pub fn speedup(&self) -> f64 {
        if self.traditional > 0.0 {
            self.highway / self.traditional
        } else {
            f64::INFINITY
        }
    }
}

/// Figure 3(a): memory-only chains, lengths 2–8, bidirectional 64 B.
/// Values in Mpps (log axis in the paper). With no physical ports to poll,
/// the switch runs its default single PMD core.
pub fn fig3a(cost: &CostModel) -> Vec<FigureRow> {
    let cost = cost.with_pmd_cores(1.0);
    (2..=8)
        .map(|n| FigureRow {
            n_vms: n,
            traditional: solve(&ChainSpec::memory(n, Mode::Vanilla), &cost).aggregate_mpps,
            highway: solve(&ChainSpec::memory(n, Mode::Highway), &cost).aggregate_mpps,
            unit: "Mpps",
        })
        .collect()
}

/// Figure 3(b): NIC-edged chains, lengths 1–8, bidirectional 64 B.
/// Values in Mpps (linear 4–20 axis in the paper). The switch dedicates
/// PMD cores to the two physical ports plus the dpdkr rings (3 cores).
pub fn fig3b(cost: &CostModel) -> Vec<FigureRow> {
    let cost = cost.with_pmd_cores(3.0);
    (1..=8)
        .map(|n| FigureRow {
            n_vms: n,
            traditional: solve(&ChainSpec::nic(n, Mode::Vanilla), &cost).aggregate_mpps,
            highway: solve(&ChainSpec::nic(n, Mode::Highway), &cost).aggregate_mpps,
            unit: "Mpps",
        })
        .collect()
}

/// §3's latency claim: mean one-way latency vs chain length, both modes at
/// 90 % of vanilla capacity. Values in µs; the paper promises ~80 %
/// improvement at 8 VMs. NIC-edged like the throughput testbed.
pub fn latency_vs_chain(cost: &CostModel) -> Vec<FigureRow> {
    let cost = cost.with_pmd_cores(3.0);
    (1..=8)
        .map(|n| {
            let (v, h, _) = compare(n, true, &cost, 0.9);
            FigureRow {
                n_vms: n,
                traditional: v.one_way_us,
                highway: h.one_way_us,
                unit: "µs",
            }
        })
        .collect()
}

/// §3's setup-time claim, modelled: expected milliseconds from p-2-p rule
/// recognition to active bypass (the measured version lives in
/// `highway-bench --bin setup_time`, which drives the real control plane).
pub fn setup_time_model() -> f64 {
    // Mirrors vm_host::LatencyModel::paper(): 2 hot-plugs + 4 serial RTTs.
    2.0 * 35.0 + 4.0 * 7.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_reproduces_the_published_shape() {
        let rows = fig3a(&CostModel::paper_testbed());
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].n_vms, 2);
        assert_eq!(rows[6].n_vms, 8);
        // Highway wins everywhere; the gap grows monotonically.
        for w in rows.windows(2) {
            assert!(w[0].highway >= w[0].traditional);
            assert!(w[1].speedup() >= w[0].speedup() * 0.99);
        }
        // Traditional falls by ~7× from N=2 to N=8 (1/(N-1) scaling).
        let fall = rows[0].traditional / rows[6].traditional;
        assert!((5.0..=9.0).contains(&fall), "fall {fall:.1}");
    }

    #[test]
    fn fig3b_reproduces_the_published_shape() {
        let rows = fig3b(&CostModel::paper_testbed());
        assert_eq!(rows.len(), 8);
        // Equal at N=1, highway flat, traditional declining into the
        // figure's 4–20 Mpps window.
        assert!((rows[0].traditional - rows[0].highway).abs() < 1e-6);
        assert!(rows.iter().all(|r| r.highway <= 20.0 && r.highway >= 4.0));
        assert!(rows[7].traditional >= 3.0 && rows[7].traditional <= 7.0);
        let flatness = rows[7].highway / rows[0].highway;
        assert!((0.9..=1.1).contains(&flatness));
    }

    #[test]
    fn latency_improvement_at_8_vms_is_paper_sized() {
        let rows = latency_vs_chain(&CostModel::paper_testbed());
        let last = rows.last().unwrap();
        let improvement = 1.0 - last.highway / last.traditional;
        assert!(
            (0.70..=0.92).contains(&improvement),
            "{improvement:.2} vs the paper's ~0.80"
        );
    }

    #[test]
    fn setup_model_is_about_100ms() {
        let ms = setup_time_model();
        assert!((80.0..=120.0).contains(&ms));
    }
}
