//! Ablation studies around the paper's design choices.
//!
//! The paper reports two figures and two in-text claims; these sweeps
//! answer the questions a reviewer (or an operator sizing a deployment)
//! asks next:
//!
//! * [`frame_size_sweep`] — Fig. 3(b) at other frame sizes: the 64 B
//!   workload maximises per-packet overhead, so where does the win go at
//!   realistic MTUs?
//! * [`emc_sweep`] — how much of vanilla's cost is classification? The
//!   bypass skips the whole switch, so its advantage must *grow* as the
//!   EMC degrades.
//! * [`vnf_cost_crossover`] — the evaluation's VNFs are nearly free
//!   (`l2fwd`); with heavier apps the VM cores become the bottleneck in
//!   both modes and the highway's advantage fades. Where is the
//!   crossover?
//! * [`pmd_core_scaling`] — vanilla can also buy throughput with more
//!   switch cores: how many PMD cores must the operator burn to match one
//!   highway chain?

use crate::costs::CostModel;
use crate::solver::solve;
use crate::topology::{ChainSpec, Mode};

/// One x-point of a sweep: both modes' values at that x.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The swept parameter's value.
    pub x: f64,
    /// Vanilla OvS-DPDK value.
    pub traditional: f64,
    /// Transparent-highway value.
    pub highway: f64,
    /// Unit of the y values.
    pub unit: &'static str,
}

impl SweepRow {
    /// Highway-to-traditional ratio.
    pub fn speedup(&self) -> f64 {
        if self.traditional > 0.0 {
            self.highway / self.traditional
        } else {
            f64::INFINITY
        }
    }
}

/// Fig. 3(b)'s chain at other frame sizes (aggregate Mpps, N fixed).
///
/// At 64 B the chain is packet-rate bound and the highway's per-packet
/// savings dominate; at 1518 B both modes hit the 10 G wire and converge.
pub fn frame_size_sweep(n_vms: usize, cost: &CostModel) -> Vec<SweepRow> {
    let cost = cost.with_pmd_cores(3.0);
    [64usize, 128, 256, 512, 1024, 1518]
        .iter()
        .map(|&frame_len| {
            let spec = |mode| ChainSpec {
                n_vms,
                mode,
                edge: crate::topology::EdgeKind::Nic {
                    gbps: 10.0,
                    frame_len,
                },
            };
            SweepRow {
                x: frame_len as f64,
                traditional: solve(&spec(Mode::Vanilla), &cost).aggregate_mpps,
                highway: solve(&spec(Mode::Highway), &cost).aggregate_mpps,
                unit: "Mpps",
            }
        })
        .collect()
}

/// Memory-only chain (N fixed) as the EMC hit rate degrades from 1.0
/// (the evaluation's steady state) to 0.0 (every packet pays the
/// tuple-space classifier).
pub fn emc_sweep(n_vms: usize, cost: &CostModel) -> Vec<SweepRow> {
    [1.0f64, 0.9, 0.75, 0.5, 0.25, 0.0]
        .iter()
        .map(|&rate| {
            let mut c = cost.with_pmd_cores(1.0);
            c.emc_hit_rate = rate;
            SweepRow {
                x: rate,
                traditional: solve(&ChainSpec::memory(n_vms, Mode::Vanilla), &c).aggregate_mpps,
                highway: solve(&ChainSpec::memory(n_vms, Mode::Highway), &c).aggregate_mpps,
                unit: "Mpps",
            }
        })
        .collect()
}

/// Memory-only chain at full EMC miss (cold flows) as the megaflow tier
/// catches a growing share of the misses — the model-level counterpart of
/// `highway_bench`'s measured cache-tier ablation. At rate 0.0 every miss
/// pays the full tuple-space walk (classifier-only); at 1.0 every miss is
/// absorbed by one wildcard probe (EMC+megaflow).
pub fn megaflow_sweep(n_vms: usize, cost: &CostModel) -> Vec<SweepRow> {
    [0.0f64, 0.25, 0.5, 0.75, 0.9, 1.0]
        .iter()
        .map(|&rate| {
            let c = cost.with_pmd_cores(1.0).with_cache_hit_rates(0.0, rate);
            SweepRow {
                x: rate,
                traditional: solve(&ChainSpec::memory(n_vms, Mode::Vanilla), &c).aggregate_mpps,
                highway: solve(&ChainSpec::memory(n_vms, Mode::Highway), &c).aggregate_mpps,
                unit: "Mpps",
            }
        })
        .collect()
}

/// Memory-only chain (N fixed) as the per-packet VNF application cost
/// grows from the evaluation's trivial forwarder towards DPI-class work.
pub fn vnf_cost_crossover(n_vms: usize, cost: &CostModel) -> Vec<SweepRow> {
    [100.0f64, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0]
        .iter()
        .map(|&cycles| {
            let mut c = cost.with_pmd_cores(1.0);
            c.vnf_app = cycles;
            SweepRow {
                x: cycles,
                traditional: solve(&ChainSpec::memory(n_vms, Mode::Vanilla), &c).aggregate_mpps,
                highway: solve(&ChainSpec::memory(n_vms, Mode::Highway), &c).aggregate_mpps,
                unit: "Mpps",
            }
        })
        .collect()
}

/// The smallest swept VNF cost at which the highway's advantage drops
/// under `threshold` (e.g. 1.1 = "within 10 % of vanilla"), if any.
pub fn crossover_point(rows: &[SweepRow], threshold: f64) -> Option<f64> {
    rows.iter().find(|r| r.speedup() <= threshold).map(|r| r.x)
}

/// Vanilla throughput of the N-VM memory chain as switch PMD cores are
/// added, against the (single-PMD-irrelevant) highway value. The
/// `traditional` column sweeps cores; `highway` is constant — the point is
/// how many cores buy parity.
pub fn pmd_core_scaling(n_vms: usize, cost: &CostModel) -> Vec<SweepRow> {
    let highway = solve(
        &ChainSpec::memory(n_vms, Mode::Highway),
        &cost.with_pmd_cores(1.0),
    )
    .aggregate_mpps;
    (1..=8)
        .map(|cores| SweepRow {
            x: cores as f64,
            traditional: solve(
                &ChainSpec::memory(n_vms, Mode::Vanilla),
                &cost.with_pmd_cores(cores as f64),
            )
            .aggregate_mpps,
            highway,
            unit: "Mpps",
        })
        .collect()
}

/// PMD cores vanilla needs before it matches the highway (None if even 8
/// are not enough).
pub fn cores_for_parity(rows: &[SweepRow]) -> Option<u32> {
    rows.iter()
        .find(|r| r.traditional >= r.highway)
        .map(|r| r.x as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::paper_testbed()
    }

    #[test]
    fn frame_sweep_converges_on_the_wire() {
        let rows = frame_size_sweep(4, &cost());
        assert_eq!(rows.len(), 6);
        // 64 B: CPU-bound, big gap. 1518 B: both at wire rate, gap gone.
        assert!(
            rows[0].speedup() > 1.5,
            "64 B speedup {:.2}",
            rows[0].speedup()
        );
        let last = rows.last().unwrap();
        assert!(
            (last.speedup() - 1.0).abs() < 0.05,
            "1518 B speedup {:.2} should be ~1 (wire-bound)",
            last.speedup()
        );
        // Mpps declines with frame size for the highway (wire economics).
        assert!(rows[0].highway > last.highway);
    }

    #[test]
    fn emc_degradation_widens_the_gap() {
        let rows = emc_sweep(4, &cost());
        let at_full = rows.first().unwrap().speedup();
        let at_zero = rows.last().unwrap().speedup();
        assert!(at_zero > at_full * 1.5, "{at_zero:.1} vs {at_full:.1}");
        // Highway is unaffected by EMC quality (it skips the switch).
        assert!((rows[0].highway - rows[5].highway).abs() < 1e-6);
    }

    #[test]
    fn megaflow_tier_recovers_classifier_loss() {
        let rows = megaflow_sweep(4, &cost());
        // Vanilla throughput rises monotonically as the megaflow catches
        // more of the misses…
        for w in rows.windows(2) {
            assert!(w[1].traditional >= w[0].traditional - 1e-9);
        }
        // …strictly: EMC+megaflow beats classifier-only.
        let classifier_only = rows.first().unwrap();
        let with_megaflow = rows.last().unwrap();
        assert!(with_megaflow.traditional > classifier_only.traditional);
        // The highway skips the switch, so the tier cannot affect it.
        assert!((classifier_only.highway - with_megaflow.highway).abs() < 1e-6);
    }

    #[test]
    fn heavy_vnfs_erase_the_advantage() {
        let rows = vnf_cost_crossover(4, &cost());
        assert!(rows[0].speedup() > 2.0, "cheap apps: big win");
        let heavy = rows.last().unwrap();
        assert!(
            heavy.speedup() < 1.3,
            "at 8000 cycles/pkt the VM is the bottleneck either way ({:.2})",
            heavy.speedup()
        );
        let x = crossover_point(&rows, 1.3).expect("crossover exists");
        assert!(x >= 1000.0, "crossover at {x} cycles");
        // Monotone: speedup never grows with app cost.
        for w in rows.windows(2) {
            assert!(w[1].speedup() <= w[0].speedup() + 1e-9);
        }
    }

    #[test]
    fn parity_costs_multiple_pmd_cores() {
        let rows = pmd_core_scaling(8, &cost());
        let parity = cores_for_parity(&rows);
        assert!(
            parity.map(|c| c >= 3).unwrap_or(true),
            "an 8-VM chain must cost vanilla ≥3 switch cores to match, got {parity:?}"
        );
        // More cores help vanilla monotonically until VM-bound.
        for w in rows.windows(2) {
            assert!(w[1].traditional >= w[0].traditional - 1e-9);
        }
    }
}
