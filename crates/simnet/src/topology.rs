//! Chain topologies — the four configurations of the paper's Figure 3.

/// How traffic enters and leaves the chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// Figure 3(a): the first and last VM of the chain generate and sink
    /// the traffic themselves; no NIC, no PCIe.
    Memory,
    /// Figure 3(b): traffic enters/leaves through physical NICs of the
    /// given rate, with the given wire frame length.
    Nic { gbps: f64, frame_len: usize },
}

/// Whether the highway is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Vanilla OvS-DPDK: every seam crosses the switch.
    Vanilla,
    /// Transparent highway: every VM↔VM seam is a bypass channel
    /// (NIC↔VM seams still cross the switch — a NIC is not a VM).
    Highway,
}

/// A chain under test.
#[derive(Debug, Clone, Copy)]
pub struct ChainSpec {
    /// Number of VMs in the chain.
    pub n_vms: usize,
    pub mode: Mode,
    pub edge: EdgeKind,
}

impl ChainSpec {
    /// Figure 3(a) configuration.
    pub fn memory(n_vms: usize, mode: Mode) -> ChainSpec {
        ChainSpec {
            n_vms,
            mode,
            edge: EdgeKind::Memory,
        }
    }

    /// Figure 3(b) configuration (two 10 G ports, 64 B frames).
    pub fn nic(n_vms: usize, mode: Mode) -> ChainSpec {
        ChainSpec {
            n_vms,
            mode,
            edge: EdgeKind::Nic {
                gbps: 10.0,
                frame_len: 64,
            },
        }
    }

    /// Seams between *VMs* (bypassable).
    pub fn vm_seams(&self) -> usize {
        self.n_vms.saturating_sub(1)
    }

    /// Seams touching a NIC (never bypassable).
    pub fn nic_seams(&self) -> usize {
        match self.edge {
            EdgeKind::Memory => 0,
            EdgeKind::Nic { .. } => 2,
        }
    }

    /// VMs that forward traffic (rather than generating/sinking it).
    pub fn forwarding_vms(&self) -> usize {
        match self.edge {
            // First and last VM are source/sink.
            EdgeKind::Memory => self.n_vms.saturating_sub(2),
            // All VMs forward; the generator is outside the NICs.
            EdgeKind::Nic { .. } => self.n_vms,
        }
    }

    /// Seams the switch must carry in this mode.
    pub fn switch_seams(&self) -> usize {
        match self.mode {
            Mode::Vanilla => self.vm_seams() + self.nic_seams(),
            Mode::Highway => self.nic_seams(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_chain_counts() {
        let spec = ChainSpec::memory(8, Mode::Vanilla);
        assert_eq!(spec.vm_seams(), 7);
        assert_eq!(spec.nic_seams(), 0);
        assert_eq!(spec.forwarding_vms(), 6);
        assert_eq!(spec.switch_seams(), 7);
        assert_eq!(ChainSpec::memory(8, Mode::Highway).switch_seams(), 0);
    }

    #[test]
    fn nic_chain_counts() {
        let spec = ChainSpec::nic(4, Mode::Vanilla);
        assert_eq!(spec.vm_seams(), 3);
        assert_eq!(spec.nic_seams(), 2);
        assert_eq!(spec.forwarding_vms(), 4);
        assert_eq!(spec.switch_seams(), 5);
        assert_eq!(ChainSpec::nic(4, Mode::Highway).switch_seams(), 2);
    }

    #[test]
    fn single_vm_nic_chain() {
        let spec = ChainSpec::nic(1, Mode::Vanilla);
        assert_eq!(spec.vm_seams(), 0);
        assert_eq!(spec.switch_seams(), 2);
        assert_eq!(ChainSpec::nic(1, Mode::Highway).switch_seams(), 2);
    }
}
