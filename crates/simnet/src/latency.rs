//! Per-packet latency model.
//!
//! Latency of a poll-mode chain is dominated by two terms per seam:
//!
//! 1. **discovery** — how long a packet sits in a ring before the consumer's
//!    round-robin poll reaches that ring: on average half a polling sweep
//!    over the consumer's ports;
//! 2. **sojourn** — service time inflated by queueing as the serving core
//!    approaches saturation, modelled M/M/1-style as `service / (1 - ρ)`.
//!
//! The vanilla path pays both terms *twice* per seam (once into the switch,
//! once out of it) and shares one ρ across every seam the switch carries —
//! which is why long chains hurt so much. The bypass path pays a single
//! ring hop polled by a two-port guest.

use crate::costs::CostModel;
use crate::solver::{solve, utilisation_at};
use crate::topology::{ChainSpec, EdgeKind, Mode};

/// A latency estimate for one chain configuration.
#[derive(Debug, Clone, Copy)]
pub struct LatencyEstimate {
    /// Mean one-way latency in microseconds.
    pub one_way_us: f64,
    /// Utilisation of the switch at the offered load (0 when bypassed).
    pub ovs_utilisation: f64,
}

/// Mean one-way latency of a chain at `load_fraction` of the *vanilla*
/// configuration's capacity (so both modes are compared at the same
/// absolute offered load, like the paper's latency experiment).
pub fn estimate(
    spec: &ChainSpec,
    cost: &CostModel,
    offered_pps_per_direction: f64,
) -> LatencyEstimate {
    let rho_ovs = utilisation_at(spec, cost, "ovs-pmd", offered_pps_per_direction);

    // Ports the switch polls: every dpdkr port (2 per VM) + NIC ports.
    let switch_ports = (2 * spec.n_vms + spec.nic_seams()) as f64;
    let switch_discovery = switch_ports / 2.0 * cost.empty_poll;
    let vm_ports = 2.0; // a VM polls its 2 dpdkr ports
    let vm_discovery = vm_ports / 2.0 * cost.empty_poll;

    let ovs_seam = switch_discovery + (cost.ovs_crossing() / (1.0 - rho_ovs)) + vm_discovery;
    let bypass_seam = vm_discovery + cost.ring_enqueue + cost.ring_dequeue;

    let vm_hop = cost.vnf_app; // processing inside each forwarding VM

    let (vm_seams, nic_seams) = (spec.vm_seams() as f64, spec.nic_seams() as f64);
    let nic_wire = match spec.edge {
        EdgeKind::Memory => 0.0,
        // Serialisation delay of one 64 B frame at 10 G is negligible
        // (~67 ns) but included for completeness.
        EdgeKind::Nic { gbps, frame_len } => {
            2.0 * (((frame_len + 20) * 8) as f64 / (gbps * 1e9)) * cost.cpu_hz
        }
    };

    let cycles = match spec.mode {
        Mode::Vanilla => {
            nic_seams * ovs_seam
                + vm_seams * ovs_seam
                + spec.forwarding_vms() as f64 * vm_hop
                + nic_wire
        }
        Mode::Highway => {
            nic_seams * ovs_seam
                + vm_seams * bypass_seam
                + spec.forwarding_vms() as f64 * vm_hop
                + nic_wire
        }
    };

    LatencyEstimate {
        one_way_us: cycles / cost.cpu_hz * 1e6,
        ovs_utilisation: rho_ovs,
    }
}

/// Compares both modes at the same offered load (a fraction of vanilla
/// capacity) and returns `(vanilla, highway, improvement_fraction)`.
pub fn compare(
    n_vms: usize,
    edge_nic: bool,
    cost: &CostModel,
    load_fraction: f64,
) -> (LatencyEstimate, LatencyEstimate, f64) {
    let (vanilla_spec, highway_spec) = if edge_nic {
        (
            ChainSpec::nic(n_vms, Mode::Vanilla),
            ChainSpec::nic(n_vms, Mode::Highway),
        )
    } else {
        (
            ChainSpec::memory(n_vms, Mode::Vanilla),
            ChainSpec::memory(n_vms, Mode::Highway),
        )
    };
    let offered = solve(&vanilla_spec, cost).per_direction_pps * load_fraction;
    let v = estimate(&vanilla_spec, cost, offered);
    let h = estimate(&highway_spec, cost, offered);
    let improvement = 1.0 - h.one_way_us / v.one_way_us;
    (v, h, improvement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_chain_length() {
        let cost = CostModel::paper_testbed();
        let (v4, _, _) = compare(4, true, &cost, 0.9);
        let (v8, _, _) = compare(8, true, &cost, 0.9);
        assert!(v8.one_way_us > v4.one_way_us);
    }

    #[test]
    fn paper_claim_80_percent_at_8_vms() {
        let cost = CostModel::paper_testbed();
        let (_, _, improvement) = compare(8, true, &cost, 0.9);
        assert!(
            (0.70..=0.92).contains(&improvement),
            "improvement {improvement:.2} strays from the paper's ~80 %"
        );
    }

    #[test]
    fn improvement_grows_with_chain_length() {
        let cost = CostModel::paper_testbed();
        let mut last = 0.0;
        for n in 2..=8 {
            let (_, _, imp) = compare(n, true, &cost, 0.9);
            assert!(imp >= last - 0.02, "improvement shrank at n={n}");
            last = imp;
        }
    }

    #[test]
    fn unloaded_latencies_are_sub_10us() {
        let cost = CostModel::paper_testbed();
        let (v, h, _) = compare(8, true, &cost, 0.1);
        assert!(v.one_way_us < 10.0, "vanilla {0:.2} µs", v.one_way_us);
        assert!(h.one_way_us < v.one_way_us);
    }
}
