//! # simnet
//!
//! The calibrated performance model that regenerates the paper's evaluation
//! on a machine that is not a 10-core Xeon with two 10 G NICs.
//!
//! The *functional* reproduction (crates `ovs-dp`, `vnf-apps`,
//! `highway-core`) really moves packets between threads; it proves the
//! architecture works, end to end, and its microbenchmarks calibrate this
//! model. But multi-core *throughput scaling* cannot be measured honestly
//! on the single-core CI box this reproduction targets, so the figures are
//! produced by an explicit, documented model instead:
//!
//! * [`costs`] — per-packet cycle costs of every component on the path
//!   (ring ops, EMC hit, classifier miss, action execution, VNF work, NIC
//!   driver overhead), quoted against the testbed's 3 GHz clock.
//! * [`topology`] — chain topologies: N VMs, memory-only or NIC-edged,
//!   vanilla or highway mode — the four configurations of Figure 3.
//! * [`solver`] — a closed-chain bottleneck solver: per-resource cycle
//!   demand × symmetric bidirectional rate ≤ capacity; the binding
//!   resource sets the throughput (how one reasons about poll-mode
//!   dataplanes, cf. the OVS-DPDK performance literature).
//! * [`latency`] — an M/M/1-style sojourn model on top of the solver's
//!   utilisations, for the paper's §3 latency claim.
//! * [`experiments`] — one function per table/figure, returning printable
//!   series (used by the `highway-bench` binaries and EXPERIMENTS.md).
//! * [`ablation`] — the sweeps *around* the published figures: frame-size,
//!   EMC degradation, VNF-cost crossover and PMD-core parity.

//! * [`des`] — a packet-level discrete-event twin of the solver: same
//!   inputs, independent mechanics; tests assert the two agree, so the
//!   figures do not rest on one analytic shortcut.

pub mod ablation;
pub mod costs;
pub mod des;
pub mod experiments;
pub mod latency;
pub mod solver;
pub mod topology;

pub use ablation::{
    cores_for_parity, crossover_point, emc_sweep, frame_size_sweep, megaflow_sweep,
    pmd_core_scaling, vnf_cost_crossover, SweepRow,
};
pub use costs::CostModel;
pub use des::{ChainSim, SimResult};
pub use experiments::{fig3a, fig3b, latency_vs_chain, setup_time_model, FigureRow};
pub use latency::LatencyEstimate;
pub use solver::{solve, Solution};
pub use topology::{ChainSpec, EdgeKind, Mode};
