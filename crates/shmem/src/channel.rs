//! Bidirectional shared-memory packet channels.
//!
//! A channel is a pair of SPSC rings: each endpoint transmits on one ring
//! and receives on the other. This is exactly the structure of a `dpdkr`
//! port (VM endpoint ↔ vSwitch endpoint) and of a bypass connection
//! (VM endpoint ↔ VM endpoint).
//!
//! The rings carry [`PktSlot`]s, not mbufs: an arena-backed packet is
//! enqueued as its POD [`MbufDesc`] — segment id plus offsets, the only
//! representation valid on both sides of an ivshmem BAR — so a hop moves
//! ~32 bytes of descriptor while the payload stays put in the shared slab
//! (the zero-copy hop). Heap-backed mbufs still travel by value, keeping
//! every legacy producer working. Each direction has a batched
//! [`Doorbell`]: senders accumulate notifications and ring once per burst
//! instead of once per packet.

use crate::doorbell::Doorbell;
use dpdk_sim::arena::adopt;
use dpdk_sim::{spsc_ring, Mbuf, MbufDesc, SpscConsumer, SpscProducer};

/// What a ring slot carries: an owned heap mbuf, or an arena descriptor
/// (the zero-copy representation).
#[derive(Debug)]
pub enum PktSlotKind {
    /// Process-private mbuf, moved by value (legacy path).
    Boxed(Mbuf),
    /// Offset-based handle into a shared arena segment.
    Desc(MbufDesc),
}

/// One slot on a channel ring. The wrapper exists for its `Drop`: a ring
/// destroyed with descriptors still in flight (endpoint dropped before the
/// peer drained it) releases each slot's arena reference instead of
/// leaking it — the shared-arena analogue of a ring freeing its mbufs.
#[derive(Debug)]
pub struct PktSlot(Option<PktSlotKind>);

impl PktSlot {
    fn new(kind: PktSlotKind) -> PktSlot {
        PktSlot(Some(kind))
    }

    fn take_kind(mut self) -> PktSlotKind {
        self.0.take().expect("slot consumed exactly once")
    }
}

impl Drop for PktSlot {
    fn drop(&mut self) {
        if let Some(PktSlotKind::Desc(desc)) = self.0.take() {
            // Adopt-and-free: the arena slot travels the credit ring home.
            // A dead segment yields None, which is already accounted.
            drop(adopt(desc));
        }
    }
}

/// Per-endpoint channel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelEndStats {
    /// Packets sent as arena descriptors (zero-copy hops).
    pub desc_sent: u64,
    /// Packets sent as owned heap mbufs (copy/move path).
    pub boxed_sent: u64,
    /// Received descriptors whose segment was no longer mapped — the
    /// packet is lost, exactly like traffic in flight across an unmap.
    pub unmapped_drops: u64,
}

/// One endpoint of a bidirectional packet channel.
pub struct ChannelEnd {
    name: String,
    tx: SpscProducer<PktSlot>,
    rx: SpscConsumer<PktSlot>,
    /// Doorbell this endpoint rings as it transmits.
    tx_bell: Doorbell,
    /// Doorbell the peer rings toward this endpoint (consumer side).
    rx_bell: Doorbell,
    stats: ChannelEndStats,
}

/// Creates a channel whose two directions each hold `depth` packets.
/// Returns the two endpoints `(a, b)`; bytes sent on `a` arrive at `b` and
/// vice versa.
pub fn channel(name: impl Into<String>, depth: usize) -> (ChannelEnd, ChannelEnd) {
    let name = name.into();
    let (a_tx, b_rx) = spsc_ring(depth);
    let (b_tx, a_rx) = spsc_ring(depth);
    let ab_bell = Doorbell::default();
    let ba_bell = Doorbell::default();
    (
        ChannelEnd {
            name: format!("{name}.a"),
            tx: a_tx,
            rx: a_rx,
            tx_bell: ab_bell.clone(),
            rx_bell: ba_bell.clone(),
            stats: ChannelEndStats::default(),
        },
        ChannelEnd {
            name: format!("{name}.b"),
            tx: b_tx,
            rx: b_rx,
            tx_bell: ba_bell,
            rx_bell: ab_bell,
            stats: ChannelEndStats::default(),
        },
    )
}

impl ChannelEnd {
    /// Endpoint name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn slot_of(&mut self, pkt: Mbuf) -> PktSlot {
        match pkt.try_into_desc() {
            Ok(desc) => {
                self.stats.desc_sent += 1;
                PktSlot::new(PktSlotKind::Desc(desc))
            }
            Err(m) => {
                self.stats.boxed_sent += 1;
                PktSlot::new(PktSlotKind::Boxed(m))
            }
        }
    }

    fn mbuf_of(&mut self, slot: PktSlot) -> Option<Mbuf> {
        match slot.take_kind() {
            PktSlotKind::Boxed(m) => Some(m),
            PktSlotKind::Desc(desc) => match adopt(desc) {
                Some(am) => Some(Mbuf::from_arena(am)),
                None => {
                    self.stats.unmapped_drops += 1;
                    None
                }
            },
        }
    }

    /// Sends one packet; hands it back when the ring is full. The deferred
    /// doorbell notification is accumulated — call
    /// [`ChannelEnd::flush_doorbell`] at the end of a send loop (burst
    /// sends flush automatically).
    pub fn send(&mut self, pkt: Mbuf) -> Result<(), Mbuf> {
        // Pre-check keeps the descriptor conversion off the failure path:
        // we are the only producer, so free space cannot shrink under us.
        if self.tx.free_space() == 0 {
            return Err(pkt);
        }
        let slot = self.slot_of(pkt);
        self.tx
            .enqueue(slot)
            .unwrap_or_else(|_| unreachable!("free slot checked; single producer"));
        self.tx_bell.notify(1);
        Ok(())
    }

    /// Sends as many packets as fit, draining them from the front of `pkts`;
    /// returns how many were sent. Rings the doorbell once for the burst.
    pub fn send_burst(&mut self, pkts: &mut Vec<Mbuf>) -> usize {
        let fits = self.tx.free_space().min(pkts.len());
        let mut sent = 0;
        for pkt in pkts.drain(..fits) {
            let slot = self.slot_of(pkt);
            self.tx
                .enqueue(slot)
                .unwrap_or_else(|_| unreachable!("free space checked; single producer"));
            sent += 1;
        }
        self.tx_bell.notify(sent);
        self.tx_bell.flush();
        sent
    }

    /// Rings the tx doorbell for any notifications deferred by coalescing.
    /// Producers call this at the end of their poll iteration.
    pub fn flush_doorbell(&mut self) {
        self.tx_bell.flush();
    }

    /// Consumes the rx doorbell hint: true when the peer rang since the
    /// last take. Purely advisory — packets are visible regardless.
    pub fn take_doorbell(&mut self) -> bool {
        self.rx_bell.take()
    }

    /// Sets the tx-side doorbell coalescing threshold (packets per
    /// notification; 0/1 = per-packet).
    pub fn set_doorbell_coalesce(&mut self, threshold: usize) {
        self.tx_bell.set_threshold(threshold);
    }

    /// The doorbell this endpoint rings when transmitting (shared with the
    /// peer's rx side).
    pub fn tx_doorbell(&self) -> &Doorbell {
        &self.tx_bell
    }

    /// Receives one packet if available. Descriptors whose segment has
    /// been unmapped are dropped (counted in
    /// [`ChannelEndStats::unmapped_drops`]) and the next slot is tried.
    pub fn recv(&mut self) -> Option<Mbuf> {
        while let Some(slot) = self.rx.dequeue() {
            if let Some(m) = self.mbuf_of(slot) {
                return Some(m);
            }
        }
        None
    }

    /// Receives up to `max` packets into `out`; returns how many arrived.
    pub fn recv_burst(&mut self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.recv() {
                Some(m) => {
                    out.push(m);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Packets waiting to be received by *this* endpoint.
    pub fn pending_rx(&self) -> usize {
        self.rx.len()
    }

    /// Packets sent by this endpoint not yet drained by the peer.
    pub fn pending_tx(&self) -> usize {
        self.tx.len()
    }

    /// Free slots on the transmit ring.
    pub fn tx_free(&mut self) -> usize {
        self.tx.free_space()
    }

    /// Capacity of each direction.
    pub fn depth(&self) -> usize {
        self.tx.capacity()
    }

    /// True when the peer endpoint has been dropped.
    pub fn peer_gone(&self) -> bool {
        self.tx.is_disconnected() || self.rx.is_disconnected()
    }

    /// Per-endpoint transfer counters.
    pub fn stats(&self) -> ChannelEndStats {
        self.stats
    }
}

impl std::fmt::Debug for ChannelEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelEnd")
            .field("name", &self.name)
            .field("pending_rx", &self.pending_rx())
            .field("pending_tx", &self.pending_tx())
            .field("desc_sent", &self.stats.desc_sent)
            .field("boxed_sent", &self.stats.boxed_sent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Arena;

    #[test]
    fn both_directions_carry_packets() {
        let (mut a, mut b) = channel("t", 8);
        a.send(Mbuf::from_slice(&[1])).unwrap();
        b.send(Mbuf::from_slice(&[2])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[1]);
        assert_eq!(a.recv().unwrap().data(), &[2]);
        assert!(a.recv().is_none());
    }

    #[test]
    fn burst_transfer_with_backpressure() {
        let (mut a, mut b) = channel("t", 4);
        let mut pkts: Vec<Mbuf> = (0u8..6).map(|i| Mbuf::from_slice(&[i])).collect();
        assert_eq!(a.send_burst(&mut pkts), 4);
        assert_eq!(pkts.len(), 2);
        let mut out = Vec::new();
        assert_eq!(b.recv_burst(&mut out, 16), 4);
        assert_eq!(out[3].data(), &[3]);
    }

    #[test]
    fn pending_counts() {
        let (mut a, b) = channel("t", 8);
        a.send(Mbuf::from_slice(&[0])).unwrap();
        a.send(Mbuf::from_slice(&[1])).unwrap();
        assert_eq!(a.pending_tx(), 2);
        assert_eq!(b.pending_rx(), 2);
        assert_eq!(a.pending_rx(), 0);
    }

    #[test]
    fn peer_drop_detection() {
        let (a, b) = channel("t", 2);
        assert!(!a.peer_gone());
        drop(b);
        assert!(a.peer_gone());
    }

    #[test]
    fn arena_packets_travel_as_descriptors() {
        let arena = Arena::new("chan-arena", 8, 512);
        let (mut a, mut b) = channel("t", 8);
        let writes_before = arena.stats().slab_writes;
        let mut m = Mbuf::from_arena(arena.alloc_from(&[9, 8, 7]).unwrap());
        m.udata = 0x55;
        a.send(m).unwrap();
        assert_eq!(a.stats().desc_sent, 1);
        assert_eq!(a.stats().boxed_sent, 0);
        let got = b.recv().unwrap();
        assert!(got.is_arena(), "arrives still arena-backed");
        assert_eq!(got.data(), &[9, 8, 7]);
        assert_eq!(got.udata, 0x55);
        assert_eq!(
            arena.stats().slab_writes,
            writes_before + 1,
            "only the ingress copy touched the slab"
        );
        drop(got);
        arena.reclaim_credits();
        assert!(arena.census_clean());
    }

    #[test]
    fn boxed_packets_still_travel_by_value() {
        let (mut a, mut b) = channel("t", 4);
        a.send(Mbuf::from_slice(&[1, 2])).unwrap();
        assert_eq!(a.stats().boxed_sent, 1);
        assert!(!b.recv().unwrap().is_arena());
    }

    #[test]
    fn unmapped_segment_descriptors_are_dropped_not_wedged() {
        let arena = Arena::new("chan-gone", 4, 256);
        let (mut a, mut b) = channel("t", 8);
        a.send(Mbuf::from_arena(arena.alloc_from(&[1]).unwrap()))
            .unwrap();
        a.send(Mbuf::from_slice(&[2])).unwrap();
        drop(arena); // segment unmapped while a desc is in flight
        let got = b.recv().expect("recv skips the dead desc");
        assert_eq!(got.data(), &[2]);
        assert_eq!(b.stats().unmapped_drops, 1);
    }

    #[test]
    fn ring_drop_releases_in_flight_descriptors() {
        let arena = Arena::new("chan-teardown", 8, 256);
        let (mut a, b) = channel("t", 8);
        for i in 0u8..3 {
            a.send(Mbuf::from_arena(arena.alloc_from(&[i]).unwrap()))
                .unwrap();
        }
        assert_eq!(arena.in_use(), 3);
        // Endpoints die with the packets still queued — no leak.
        drop(a);
        drop(b);
        arena.reclaim_credits();
        assert!(arena.census_clean(), "census: {:?}", arena.stats());
        assert_eq!(arena.stats().foreign_frees, 0);
    }

    #[test]
    fn doorbell_coalesces_across_a_burst() {
        let (mut a, mut b) = channel("t", 64);
        a.set_doorbell_coalesce(32);
        let mut pkts: Vec<Mbuf> = (0u8..16).map(|i| Mbuf::from_slice(&[i])).collect();
        a.send_burst(&mut pkts);
        assert_eq!(a.tx_doorbell().rings(), 1, "one ring for 16 packets");
        assert!(b.take_doorbell(), "consumer sees the hint");
        assert!(!b.take_doorbell(), "edge-triggered");
        let mut out = Vec::new();
        assert_eq!(b.recv_burst(&mut out, 32), 16);
    }

    #[test]
    fn single_sends_defer_until_flush() {
        let (mut a, _b) = channel("t", 64);
        a.set_doorbell_coalesce(32);
        for i in 0u8..5 {
            a.send(Mbuf::from_slice(&[i])).unwrap();
        }
        assert_eq!(a.tx_doorbell().rings(), 0, "below threshold: deferred");
        a.flush_doorbell();
        assert_eq!(a.tx_doorbell().rings(), 1);
        assert_eq!(a.tx_doorbell().notified_pkts(), 5);
    }

    #[test]
    fn cross_thread_duplex() {
        let (mut a, mut b) = channel("t", 64);
        let t = std::thread::spawn(move || {
            // Echo 1000 packets back with a marker appended.
            let mut echoed = 0;
            while echoed < 1000 {
                if let Some(mut m) = b.recv() {
                    m.append(1)[0] = 0xEE;
                    while let Err(ret) = b.send(m) {
                        m = ret;
                        std::thread::yield_now();
                    }
                    echoed += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        // Deadline so a regression fails loudly instead of spinning the
        // test binary forever.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let mut received = 0;
        let mut sent = 0u64;
        while received < 1000 {
            assert!(
                std::time::Instant::now() < deadline,
                "duplex stalled: sent={sent} received={received}"
            );
            if sent < 1000 {
                let m = Mbuf::from_slice(&sent.to_be_bytes());
                if a.send(m).is_ok() {
                    sent += 1; // on Err the mbuf is rebuilt next iteration
                }
            }
            if let Some(m) = a.recv() {
                assert_eq!(m.len(), 9);
                assert_eq!(m.data()[8], 0xEE);
                received += 1;
            } else if sent == 1000 {
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_arena_descriptor_chain() {
        // generator -> hop -> sink over two channels, arena end to end:
        // payload written once, hop relays descriptors untouched.
        let arena = Arena::new("chan-chain", 256, 512);
        let (mut gen_end, mut hop_in) = channel("seg1", 64);
        let (mut hop_out, mut sink_end) = channel("seg2", 64);
        let hop = std::thread::spawn(move || {
            let mut relayed = 0;
            while relayed < 500 {
                if let Some(m) = hop_in.recv() {
                    let mut m = Some(m);
                    while let Some(p) = m.take() {
                        if let Err(back) = hop_out.send(p) {
                            m = Some(back);
                            std::thread::yield_now();
                        }
                    }
                    relayed += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let consumer = arena.consumer();
        let sink = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut got = 0;
            while got < 500 {
                if let Some(m) = sink_end.recv() {
                    sum += m.data()[0] as u64;
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            drop(consumer);
            sum
        });
        let mut sent = 0u64;
        while sent < 500 {
            match arena.alloc_from(&[(sent % 100) as u8]) {
                Some(am) => {
                    let mut m = Some(Mbuf::from_arena(am));
                    while let Some(p) = m.take() {
                        if let Err(back) = gen_end.send(p) {
                            m = Some(back);
                            arena.reclaim_credits();
                            std::thread::yield_now();
                        }
                    }
                    sent += 1;
                }
                None => {
                    arena.reclaim_credits();
                    std::thread::yield_now();
                }
            }
        }
        hop.join().unwrap();
        let sum = sink.join().unwrap();
        assert_eq!(sum, (0..500u64).map(|i| i % 100).sum::<u64>());
        arena.reclaim_credits();
        assert!(arena.census_clean(), "census: {:?}", arena.stats());
        assert_eq!(
            arena.stats().slab_writes,
            500,
            "one ingress write per packet, zero per hop"
        );
    }
}
