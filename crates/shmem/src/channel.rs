//! Bidirectional shared-memory packet channels.
//!
//! A channel is a pair of SPSC rings: each endpoint transmits on one ring
//! and receives on the other. This is exactly the structure of a `dpdkr`
//! port (VM endpoint ↔ vSwitch endpoint) and of a bypass connection
//! (VM endpoint ↔ VM endpoint).

use dpdk_sim::{spsc_ring, Mbuf, SpscConsumer, SpscProducer};

/// One endpoint of a bidirectional packet channel.
pub struct ChannelEnd {
    name: String,
    tx: SpscProducer<Mbuf>,
    rx: SpscConsumer<Mbuf>,
}

/// Creates a channel whose two directions each hold `depth` packets.
/// Returns the two endpoints `(a, b)`; bytes sent on `a` arrive at `b` and
/// vice versa.
pub fn channel(name: impl Into<String>, depth: usize) -> (ChannelEnd, ChannelEnd) {
    let name = name.into();
    let (a_tx, b_rx) = spsc_ring(depth);
    let (b_tx, a_rx) = spsc_ring(depth);
    (
        ChannelEnd {
            name: format!("{name}.a"),
            tx: a_tx,
            rx: a_rx,
        },
        ChannelEnd {
            name: format!("{name}.b"),
            tx: b_tx,
            rx: b_rx,
        },
    )
}

impl ChannelEnd {
    /// Endpoint name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends one packet; hands it back when the ring is full.
    pub fn send(&mut self, pkt: Mbuf) -> Result<(), Mbuf> {
        self.tx.enqueue(pkt)
    }

    /// Sends as many packets as fit, draining them from the front of `pkts`;
    /// returns how many were sent.
    pub fn send_burst(&mut self, pkts: &mut Vec<Mbuf>) -> usize {
        self.tx.enqueue_burst(pkts)
    }

    /// Receives one packet if available.
    pub fn recv(&mut self) -> Option<Mbuf> {
        self.rx.dequeue()
    }

    /// Receives up to `max` packets into `out`; returns how many arrived.
    pub fn recv_burst(&mut self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        self.rx.dequeue_burst(out, max)
    }

    /// Packets waiting to be received by *this* endpoint.
    pub fn pending_rx(&self) -> usize {
        self.rx.len()
    }

    /// Packets sent by this endpoint not yet drained by the peer.
    pub fn pending_tx(&self) -> usize {
        self.tx.len()
    }

    /// Free slots on the transmit ring.
    pub fn tx_free(&mut self) -> usize {
        self.tx.free_space()
    }

    /// Capacity of each direction.
    pub fn depth(&self) -> usize {
        self.tx.capacity()
    }

    /// True when the peer endpoint has been dropped.
    pub fn peer_gone(&self) -> bool {
        self.tx.is_disconnected() || self.rx.is_disconnected()
    }
}

impl std::fmt::Debug for ChannelEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelEnd")
            .field("name", &self.name)
            .field("pending_rx", &self.pending_rx())
            .field("pending_tx", &self.pending_tx())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_carry_packets() {
        let (mut a, mut b) = channel("t", 8);
        a.send(Mbuf::from_slice(&[1])).unwrap();
        b.send(Mbuf::from_slice(&[2])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[1]);
        assert_eq!(a.recv().unwrap().data(), &[2]);
        assert!(a.recv().is_none());
    }

    #[test]
    fn burst_transfer_with_backpressure() {
        let (mut a, mut b) = channel("t", 4);
        let mut pkts: Vec<Mbuf> = (0u8..6).map(|i| Mbuf::from_slice(&[i])).collect();
        assert_eq!(a.send_burst(&mut pkts), 4);
        assert_eq!(pkts.len(), 2);
        let mut out = Vec::new();
        assert_eq!(b.recv_burst(&mut out, 16), 4);
        assert_eq!(out[3].data(), &[3]);
    }

    #[test]
    fn pending_counts() {
        let (mut a, b) = channel("t", 8);
        a.send(Mbuf::from_slice(&[0])).unwrap();
        a.send(Mbuf::from_slice(&[1])).unwrap();
        assert_eq!(a.pending_tx(), 2);
        assert_eq!(b.pending_rx(), 2);
        assert_eq!(a.pending_rx(), 0);
    }

    #[test]
    fn peer_drop_detection() {
        let (a, b) = channel("t", 2);
        assert!(!a.peer_gone());
        drop(b);
        assert!(a.peer_gone());
    }

    #[test]
    fn cross_thread_duplex() {
        let (mut a, mut b) = channel("t", 64);
        let t = std::thread::spawn(move || {
            // Echo 1000 packets back with a marker appended.
            let mut echoed = 0;
            while echoed < 1000 {
                if let Some(mut m) = b.recv() {
                    m.append(1)[0] = 0xEE;
                    while let Err(ret) = b.send(m) {
                        m = ret;
                        std::thread::yield_now();
                    }
                    echoed += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        // Deadline so a regression fails loudly instead of spinning the
        // test binary forever.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let mut received = 0;
        let mut sent = 0u64;
        while received < 1000 {
            assert!(
                std::time::Instant::now() < deadline,
                "duplex stalled: sent={sent} received={received}"
            );
            if sent < 1000 {
                let m = Mbuf::from_slice(&sent.to_be_bytes());
                if a.send(m).is_ok() {
                    sent += 1; // on Err the mbuf is rebuilt next iteration
                }
            }
            if let Some(m) = a.recv() {
                assert_eq!(m.len(), 9);
                assert_eq!(m.data()[8], 0xEE);
                received += 1;
            } else if sent == 1000 {
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
    }
}
