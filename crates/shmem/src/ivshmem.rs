//! ivshmem device model.
//!
//! In the prototype, QEMU exposes a shared-memory segment to a guest as an
//! ivshmem PCI device; the modified compute agent hot-plugs one per bypass
//! channel. Here the device is a named box carrying the guest's
//! [`ChannelEnd`]; "mapping the BAR" means taking the endpoint out.

use crate::channel::ChannelEnd;

/// An ivshmem device as seen on a VM's device board.
pub struct IvshmemDevice {
    segment_name: String,
    end: Option<ChannelEnd>,
}

impl IvshmemDevice {
    /// Wraps a channel endpoint in a pluggable device.
    pub fn new(segment_name: impl Into<String>, end: ChannelEnd) -> IvshmemDevice {
        IvshmemDevice {
            segment_name: segment_name.into(),
            end: Some(end),
        }
    }

    /// Name of the backing segment.
    pub fn segment_name(&self) -> &str {
        &self.segment_name
    }

    /// True until the guest maps the device.
    pub fn is_mapped(&self) -> bool {
        self.end.is_none()
    }

    /// Maps the device into the guest, yielding the channel endpoint.
    /// Returns `None` if already mapped (a guest bug the model surfaces).
    pub fn map(&mut self) -> Option<ChannelEnd> {
        self.end.take()
    }
}

impl std::fmt::Debug for IvshmemDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvshmemDevice")
            .field("segment", &self.segment_name)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A VM's hot-pluggable device slots, shared between the host (QEMU/compute
/// agent, which plugs and unplugs) and the guest (which discovers and maps).
/// Also carries the guest's mapping of the host packet arena: the hugepage
/// segment QEMU maps read-write into every highway VM, through which the
/// guest PMD resolves and allocates offset-based mbufs.
#[derive(Default)]
pub struct DeviceBoard {
    slots: parking_lot::Mutex<std::collections::HashMap<String, IvshmemDevice>>,
    arena: parking_lot::Mutex<Option<dpdk_sim::Arena>>,
}

impl DeviceBoard {
    /// Creates an empty board.
    pub fn new() -> DeviceBoard {
        DeviceBoard::default()
    }

    /// Host side: plugs a device. Panics on duplicate segment names
    /// (the single compute agent chooses them, so that is a logic error).
    pub fn plug(&self, dev: IvshmemDevice) {
        let name = dev.segment_name().to_string();
        let prev = self.slots.lock().insert(name.clone(), dev);
        assert!(prev.is_none(), "device already plugged: {name}");
    }

    /// Host side: unplugs a device (returns false when absent).
    pub fn unplug(&self, segment_name: &str) -> bool {
        self.slots.lock().remove(segment_name).is_some()
    }

    /// Guest side: maps a plugged device's channel endpoint.
    /// Returns `None` when the device is absent or already mapped.
    pub fn map_segment(&self, segment_name: &str) -> Option<ChannelEnd> {
        self.slots.lock().get_mut(segment_name)?.map()
    }

    /// Host side: maps the packet arena into the VM (as a consumer
    /// mapping — the guest recycles buffers through the credit ring).
    /// Idempotent for the same segment; a re-plug simply replaces it.
    pub fn set_arena(&self, arena: &dpdk_sim::Arena) {
        *self.arena.lock() = Some(arena.consumer());
    }

    /// Guest side: the VM's mapping of the packet arena, if one is plugged.
    pub fn arena(&self) -> Option<dpdk_sim::Arena> {
        self.arena.lock().clone()
    }

    /// Devices currently plugged.
    pub fn plugged(&self) -> Vec<String> {
        let mut v: Vec<String> = self.slots.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for DeviceBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBoard")
            .field("plugged", &self.plugged())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use dpdk_sim::Mbuf;

    #[test]
    fn board_plug_map_unplug() {
        let board = DeviceBoard::new();
        let (a, mut b) = channel("seg1", 4);
        board.plug(IvshmemDevice::new("seg1", a));
        assert_eq!(board.plugged(), vec!["seg1".to_string()]);
        let mut end = board.map_segment("seg1").unwrap();
        assert!(board.map_segment("seg1").is_none(), "second map fails");
        end.send(Mbuf::from_slice(&[3])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[3]);
        assert!(board.unplug("seg1"));
        assert!(!board.unplug("seg1"));
        assert!(board.plugged().is_empty());
    }

    #[test]
    fn map_missing_segment_is_none() {
        let board = DeviceBoard::new();
        assert!(board.map_segment("nope").is_none());
    }

    #[test]
    fn arena_mapping_is_a_consumer_view() {
        let board = DeviceBoard::new();
        assert!(board.arena().is_none());
        let host = dpdk_sim::Arena::new("vm-arena", 4, 256);
        board.set_arena(&host);
        let guest = board.arena().unwrap();
        assert_eq!(guest.segment_id(), host.segment_id());
        // Guest frees travel the credit ring, not the owner freelist.
        drop(guest.alloc_from(&[1]).unwrap());
        assert_eq!(host.credit_pending(), 1);
        assert_eq!(host.stats().credit_returns, 1);
    }

    #[test]
    fn map_once() {
        let (a, mut b) = channel("seg", 4);
        let mut dev = IvshmemDevice::new("seg", a);
        assert!(!dev.is_mapped());
        let mut end = dev.map().unwrap();
        assert!(dev.is_mapped());
        assert!(dev.map().is_none());
        end.send(Mbuf::from_slice(&[1])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[1]);
    }
}
