//! Host-side table of named shared-memory segments.
//!
//! The prototype backs dpdkr rings and bypass channels with hugepage
//! segments that QEMU maps into guests. This registry models the host's
//! bookkeeping of those segments so the compute agent, tests and examples
//! can observe lifecycle: a bypass setup *creates* a segment, a teardown
//! *releases* it, and leaks are detectable.

use crate::channel::{channel, ChannelEnd};
use dpdk_sim::Arena;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a segment backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// The normal channel of a dpdkr port (VM ↔ vSwitch).
    DpdkrNormal,
    /// A bypass channel between two VMs.
    Bypass,
    /// The shared statistics region.
    Stats,
    /// The hugepage mbuf arena packets are allocated from.
    Arena,
}

/// Registry record describing one live segment.
#[derive(Debug, Clone)]
pub struct SegmentRecord {
    pub name: String,
    pub kind: SegmentKind,
    /// Ring depth per direction.
    pub depth: usize,
    /// Monotonic creation stamp (for ordering in tests/diagnostics).
    pub created_seq: u64,
}

#[derive(Default)]
struct RegistryInner {
    segments: HashMap<String, SegmentRecord>,
    created: u64,
    released: u64,
    /// Lazily created host-wide packet arena (see
    /// [`ShmRegistry::hugepage_arena`]).
    arena: Option<Arena>,
}

/// Slots in the host-wide hugepage arena. Sized well above the sum of all
/// ring depths a test topology creates, so credit-return lag never starves
/// generators.
pub const DEFAULT_ARENA_SLOTS: usize = 16384;

/// The host's shared-memory segment registry. Clone is cheap and shares
/// state.
#[derive(Clone, Default)]
pub struct ShmRegistry {
    inner: Arc<Mutex<RegistryInner>>,
    seq: Arc<AtomicU64>,
}

impl ShmRegistry {
    /// Creates an empty registry.
    pub fn new() -> ShmRegistry {
        ShmRegistry::default()
    }

    /// Allocates a named segment backing a packet channel and returns its
    /// two endpoints. Panics if the name is already live (names are chosen
    /// by the single compute agent, so a collision is a logic error).
    pub fn create_channel(
        &self,
        name: impl Into<String>,
        kind: SegmentKind,
        depth: usize,
    ) -> (ChannelEnd, ChannelEnd) {
        let name = name.into();
        let mut inner = self.inner.lock();
        assert!(
            !inner.segments.contains_key(&name),
            "segment name collision: {name}"
        );
        let record = SegmentRecord {
            name: name.clone(),
            kind,
            depth,
            created_seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        inner.segments.insert(name.clone(), record);
        inner.created += 1;
        channel(name, depth)
    }

    /// Releases a named segment. Returns `true` if it was live.
    ///
    /// Releasing only removes the bookkeeping entry; the rings themselves
    /// are freed when the last [`ChannelEnd`] drops, mirroring how a real
    /// hugepage segment outlives its unlink until unmapped.
    pub fn release(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        let was = inner.segments.remove(name).is_some();
        if was {
            inner.released += 1;
        }
        was
    }

    /// Record for a live segment, if any.
    pub fn get(&self, name: &str) -> Option<SegmentRecord> {
        self.inner.lock().segments.get(name).cloned()
    }

    /// All live segments of a given kind.
    pub fn live_of_kind(&self, kind: SegmentKind) -> Vec<SegmentRecord> {
        let mut v: Vec<_> = self
            .inner
            .lock()
            .segments
            .values()
            .filter(|r| r.kind == kind)
            .cloned()
            .collect();
        v.sort_by_key(|r| r.created_seq);
        v
    }

    /// The host-wide packet arena, created lazily on first use: one
    /// hugepage segment every VM's ivshmem device maps, so descriptors are
    /// valid end to end. Registered as a [`SegmentKind::Arena`] segment and
    /// with the telemetry pool registry. Returns the owner mapping; guests
    /// derive consumer mappings via [`Arena::consumer`].
    pub fn hugepage_arena(&self) -> Arena {
        let mut inner = self.inner.lock();
        if let Some(arena) = &inner.arena {
            return arena.clone();
        }
        let name = "hugepage-arena";
        let arena = Arena::new(name, DEFAULT_ARENA_SLOTS, dpdk_sim::DEFAULT_BUF_SIZE);
        telemetry::pools::register_arena(&arena);
        telemetry::pools::install_event_bridge();
        let record = SegmentRecord {
            name: name.to_string(),
            kind: SegmentKind::Arena,
            depth: DEFAULT_ARENA_SLOTS,
            created_seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        inner.segments.insert(name.to_string(), record);
        inner.created += 1;
        inner.arena = Some(arena.clone());
        arena
    }

    /// Number of live segments.
    pub fn live_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Total segments ever created / released.
    pub fn totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.created, inner.released)
    }
}

impl std::fmt::Debug for ShmRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ShmRegistry")
            .field("live", &inner.segments.len())
            .field("created", &inner.created)
            .field("released", &inner.released)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;

    #[test]
    fn create_use_release() {
        let reg = ShmRegistry::new();
        let (mut a, mut b) = reg.create_channel("bypass-1-2", SegmentKind::Bypass, 8);
        assert_eq!(reg.live_count(), 1);
        a.send(Mbuf::from_slice(&[7])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[7]);
        assert!(reg.release("bypass-1-2"));
        assert!(!reg.release("bypass-1-2"));
        assert_eq!(reg.live_count(), 0);
        assert_eq!(reg.totals(), (1, 1));
        // Endpoints keep working until dropped, like an unlinked mapping.
        a.send(Mbuf::from_slice(&[8])).unwrap();
        assert_eq!(b.recv().unwrap().data(), &[8]);
    }

    #[test]
    #[should_panic(expected = "name collision")]
    fn duplicate_name_panics() {
        let reg = ShmRegistry::new();
        let _ab = reg.create_channel("x", SegmentKind::DpdkrNormal, 4);
        let _cd = reg.create_channel("x", SegmentKind::Bypass, 4);
    }

    #[test]
    fn kind_filtering_and_ordering() {
        let reg = ShmRegistry::new();
        let _a = reg.create_channel("n0", SegmentKind::DpdkrNormal, 4);
        let _b = reg.create_channel("by0", SegmentKind::Bypass, 4);
        let _c = reg.create_channel("by1", SegmentKind::Bypass, 4);
        let bypass = reg.live_of_kind(SegmentKind::Bypass);
        assert_eq!(bypass.len(), 2);
        assert_eq!(bypass[0].name, "by0");
        assert_eq!(bypass[1].name, "by1");
        assert_eq!(reg.live_of_kind(SegmentKind::Stats).len(), 0);
    }

    #[test]
    fn hugepage_arena_is_created_once_and_registered() {
        let reg = ShmRegistry::new();
        let a1 = reg.hugepage_arena();
        let a2 = reg.hugepage_arena();
        assert_eq!(a1.segment_id(), a2.segment_id(), "one segment per host");
        assert_eq!(reg.live_of_kind(SegmentKind::Arena).len(), 1);
        // Descriptors allocated through one clone adopt through the other.
        let m = a1.alloc_from(&[3, 4]).unwrap();
        let got = dpdk_sim::arena::adopt(m.into_desc()).unwrap();
        assert_eq!(got.data(), &[3, 4]);
    }
}
