//! Shared statistics region.
//!
//! The vSwitch never sees packets that take a bypass channel, so it cannot
//! count them. The paper's fix: the guest PMD increments per-rule and
//! per-port counters in a shared-memory region; when OVS must answer an
//! OpenFlow statistics request it adds these to its own counts.
//!
//! The hot path must be lock-free: the PMD resolves an [`Arc<CounterCell>`]
//! once, when the bypass is attached, then only touches atomics per packet.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pair of packet/byte counters updated from the guest fast path.
#[derive(Debug, Default)]
pub struct CounterCell {
    packets: AtomicU64,
    bytes: AtomicU64,
}

impl CounterCell {
    /// Adds `packets` / `bytes` (called per TX burst on the bypass path).
    pub fn add(&self, packets: u64, bytes: u64) {
        self.packets.fetch_add(packets, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current totals `(packets, bytes)`.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.packets.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// Direction of a port counter, from the switch's point of view:
/// `Rx` = packets the switch would have received from the port,
/// `Tx` = packets the switch would have delivered to the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    Rx,
    Tx,
}

#[derive(Default)]
struct Tables {
    /// Keyed by OpenFlow rule cookie.
    rules: HashMap<u64, Arc<CounterCell>>,
    /// Keyed by OpenFlow port number and direction.
    ports: HashMap<(u32, PortDir), Arc<CounterCell>>,
}

/// The shared statistics region. Clone shares the underlying tables.
#[derive(Clone, Default)]
pub struct StatsRegion {
    tables: Arc<RwLock<Tables>>,
}

impl StatsRegion {
    /// Creates an empty region.
    pub fn new() -> StatsRegion {
        StatsRegion::default()
    }

    /// Cell for an OpenFlow rule (by cookie), created on first use.
    pub fn rule_cell(&self, cookie: u64) -> Arc<CounterCell> {
        if let Some(c) = self.tables.read().rules.get(&cookie) {
            return Arc::clone(c);
        }
        let mut w = self.tables.write();
        Arc::clone(w.rules.entry(cookie).or_default())
    }

    /// Cell for an OpenFlow port and direction, created on first use.
    pub fn port_cell(&self, port: u32, dir: PortDir) -> Arc<CounterCell> {
        if let Some(c) = self.tables.read().ports.get(&(port, dir)) {
            return Arc::clone(c);
        }
        let mut w = self.tables.write();
        Arc::clone(w.ports.entry((port, dir)).or_default())
    }

    /// Totals for a rule cookie; zero if never written.
    pub fn rule_totals(&self, cookie: u64) -> (u64, u64) {
        self.tables
            .read()
            .rules
            .get(&cookie)
            .map(|c| c.totals())
            .unwrap_or((0, 0))
    }

    /// Totals for a port direction; zero if never written.
    pub fn port_totals(&self, port: u32, dir: PortDir) -> (u64, u64) {
        self.tables
            .read()
            .ports
            .get(&(port, dir))
            .map(|c| c.totals())
            .unwrap_or((0, 0))
    }

    /// Removes the cell of a rule (rule deleted and stats folded in).
    pub fn retire_rule(&self, cookie: u64) -> (u64, u64) {
        self.tables
            .write()
            .rules
            .remove(&cookie)
            .map(|c| c.totals())
            .unwrap_or((0, 0))
    }
}

impl std::fmt::Debug for StatsRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        f.debug_struct("StatsRegion")
            .field("rules", &t.rules.len())
            .field("ports", &t.ports.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_accumulate_and_share() {
        let region = StatsRegion::new();
        let cell = region.rule_cell(42);
        cell.add(10, 640);
        cell.add(5, 320);
        assert_eq!(region.rule_totals(42), (15, 960));
        // Same cookie returns the same cell.
        let again = region.rule_cell(42);
        again.add(1, 64);
        assert_eq!(cell.totals(), (16, 1024));
    }

    #[test]
    fn unknown_keys_read_zero() {
        let region = StatsRegion::new();
        assert_eq!(region.rule_totals(1), (0, 0));
        assert_eq!(region.port_totals(9, PortDir::Rx), (0, 0));
    }

    #[test]
    fn ports_rules_and_directions_are_independent() {
        let region = StatsRegion::new();
        region.rule_cell(7).add(1, 64);
        region.port_cell(7, PortDir::Rx).add(2, 128);
        region.port_cell(7, PortDir::Tx).add(3, 192);
        assert_eq!(region.rule_totals(7), (1, 64));
        assert_eq!(region.port_totals(7, PortDir::Rx), (2, 128));
        assert_eq!(region.port_totals(7, PortDir::Tx), (3, 192));
    }

    #[test]
    fn retire_returns_final_totals() {
        let region = StatsRegion::new();
        region.rule_cell(5).add(3, 192);
        assert_eq!(region.retire_rule(5), (3, 192));
        assert_eq!(region.rule_totals(5), (0, 0));
        assert_eq!(region.retire_rule(5), (0, 0));
    }

    #[test]
    fn concurrent_updates_sum_correctly() {
        let region = StatsRegion::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cell = region.rule_cell(1);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        cell.add(1, 64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(region.rule_totals(1), (40_000, 2_560_000));
    }
}
