//! virtio-serial control channel model.
//!
//! The compute agent talks to each guest PMD over a virtio-serial device —
//! a reliable, ordered, bidirectional message pipe. We model it as a typed
//! duplex channel with blocking and non-blocking receive, which is all the
//! prototype's control protocol needs.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Errors surfaced by [`SerialPort`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialError {
    /// The peer end has been dropped (device unplugged / VM destroyed).
    Disconnected,
    /// No message arrived before the timeout.
    Timeout,
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Disconnected => write!(f, "serial peer disconnected"),
            SerialError::Timeout => write!(f, "serial receive timed out"),
        }
    }
}

impl std::error::Error for SerialError {}

/// One end of a virtio-serial-like control channel carrying messages of
/// type `T`.
pub struct SerialPort<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
    name: String,
}

/// Creates a connected pair of serial ports.
pub fn serial_pair<T>(name: impl Into<String>) -> (SerialPort<T>, SerialPort<T>) {
    let name = name.into();
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        SerialPort {
            tx: atx,
            rx: arx,
            name: format!("{name}.host"),
        },
        SerialPort {
            tx: btx,
            rx: brx,
            name: format!("{name}.guest"),
        },
    )
}

impl<T> SerialPort<T> {
    /// Port name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends a message to the peer.
    pub fn send(&self, msg: T) -> Result<(), SerialError> {
        self.tx.send(msg).map_err(|_| SerialError::Disconnected)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, SerialError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => SerialError::Timeout,
            RecvTimeoutError::Disconnected => SerialError::Disconnected,
        })
    }

    /// Messages waiting to be received.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_messaging() {
        let (host, guest) = serial_pair::<u32>("vm1");
        host.send(1).unwrap();
        guest.send(2).unwrap();
        assert_eq!(guest.try_recv(), Some(1));
        assert_eq!(host.try_recv(), Some(2));
        assert_eq!(host.try_recv(), None);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (host, guest) = serial_pair::<u8>("vm2");
        assert_eq!(
            host.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            SerialError::Timeout
        );
        drop(guest);
        assert_eq!(host.send(1).unwrap_err(), SerialError::Disconnected);
        assert_eq!(
            host.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            SerialError::Disconnected
        );
    }

    #[test]
    fn ordering_is_preserved() {
        let (host, guest) = serial_pair::<u32>("vm3");
        for i in 0..100 {
            host.send(i).unwrap();
        }
        assert_eq!(guest.pending(), 100);
        for i in 0..100 {
            assert_eq!(guest.try_recv(), Some(i));
        }
    }
}
