//! # shmem-sim
//!
//! Process-local model of the host shared-memory machinery the paper's
//! prototype uses to wire VMs to Open vSwitch and to each other:
//!
//! * [`mod@channel`] — a bidirectional pair of SPSC packet rings. One channel
//!   is what a `dpdkr` port exposes (the *normal* channel to the vSwitch) and
//!   what a bypass connection creates between two VMs. Arena-backed packets
//!   ride the rings as offset descriptors (zero-copy hops); heap mbufs move
//!   by value.
//! * [`mod@doorbell`] — batched ring notifications (interrupt suppression):
//!   one coalesced ring per burst instead of one per packet, with the
//!   coalescing ratio exported through telemetry.
//! * [`registry`] — the host's table of named shared-memory segments, so
//!   tests and the compute agent can observe segment lifecycle (created on
//!   bypass setup, released on teardown) exactly as hugepage segments are in
//!   the prototype.
//! * [`ivshmem`] — the QEMU device model through which a segment is exposed
//!   to a guest; hot-pluggable.
//! * [`serial`] — the virtio-serial control channel used by the compute
//!   agent to reconfigure the guest PMD.
//! * [`stats`] — the shared statistics region the modified PMD writes and
//!   OVS reads when exporting per-rule / per-port counters for bypassed
//!   traffic.

pub mod channel;
pub mod doorbell;
pub mod ivshmem;
pub mod registry;
pub mod serial;
pub mod stats;

pub use channel::{channel, ChannelEnd, ChannelEndStats, PktSlot, PktSlotKind};
pub use doorbell::{Doorbell, DEFAULT_DOORBELL_COALESCE};
pub use ivshmem::DeviceBoard;
pub use ivshmem::IvshmemDevice;
pub use registry::{SegmentKind, SegmentRecord, ShmRegistry, DEFAULT_ARENA_SLOTS};
pub use serial::{serial_pair, SerialError, SerialPort};
pub use stats::{CounterCell, PortDir, StatsRegion};

/// Default ring depth of a channel direction, matching the prototype's
/// dpdkr ring size.
pub const DEFAULT_RING_DEPTH: usize = 1024;
