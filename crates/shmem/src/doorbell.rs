//! Batched ring doorbells (interrupt-suppression style).
//!
//! A naive shared-memory ring notifies its peer once per packet — on real
//! hardware that is an eventfd write or an MSI per packet, and it dominates
//! the hop cost long before the copy does. The prototype's PMDs instead
//! poll, but the *accounting* still matters: the [`Doorbell`] models the
//! coalesced notification scheme (ring once per burst, or once every
//! `threshold` packets, whichever comes first) so the coalescing win is
//! measurable, and gives pollers a cheap "anything new?" hint via
//! [`Doorbell::take`].
//!
//! Delivery is never gated on the doorbell — consumers that poll see
//! packets regardless — so an aggressive threshold can only reduce
//! notification overhead, not starve the peer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default packets-per-notification threshold, matching the PMD burst size.
pub const DEFAULT_DOORBELL_COALESCE: usize = 32;

#[derive(Debug)]
struct Inner {
    /// Notifications actually delivered.
    rings: AtomicU64,
    /// Packets accumulated since the last ring.
    pending: AtomicU64,
    /// Packets covered by delivered notifications.
    notified_pkts: AtomicU64,
    /// Ring when `pending` reaches this many packets (flush rings earlier).
    threshold: AtomicUsize,
    /// Set on ring, cleared by [`Doorbell::take`] — the poller's hint bit.
    armed: AtomicBool,
}

/// One direction's doorbell. Producers [`Doorbell::notify`] per packet (or
/// per burst with the count) and [`Doorbell::flush`] at burst end;
/// consumers [`Doorbell::take`] the hint. Clone is cheap and shares state —
/// the producer end and the consumer end of a channel direction hold the
/// same doorbell.
#[derive(Debug, Clone)]
pub struct Doorbell {
    inner: Arc<Inner>,
}

impl Default for Doorbell {
    fn default() -> Doorbell {
        Doorbell::new(DEFAULT_DOORBELL_COALESCE)
    }
}

impl Doorbell {
    /// Creates a doorbell ringing at most once per `threshold` packets
    /// (a threshold of 0 or 1 means per-packet notification).
    pub fn new(threshold: usize) -> Doorbell {
        Doorbell {
            inner: Arc::new(Inner {
                rings: AtomicU64::new(0),
                pending: AtomicU64::new(0),
                notified_pkts: AtomicU64::new(0),
                threshold: AtomicUsize::new(threshold.max(1)),
                armed: AtomicBool::new(false),
            }),
        }
    }

    /// Reconfigures the coalescing threshold (0 and 1 both mean
    /// per-packet).
    pub fn set_threshold(&self, threshold: usize) {
        self.inner
            .threshold
            .store(threshold.max(1), Ordering::Relaxed);
    }

    /// Current coalescing threshold.
    pub fn threshold(&self) -> usize {
        self.inner.threshold.load(Ordering::Relaxed)
    }

    /// Accounts `pkts` enqueued packets; rings if the pending count
    /// reaches the threshold, otherwise defers (the deferred packets are
    /// covered by the next ring or flush).
    pub fn notify(&self, pkts: usize) {
        if pkts == 0 {
            return;
        }
        let pending = self.inner.pending.fetch_add(pkts as u64, Ordering::Relaxed) + pkts as u64;
        if pending >= self.inner.threshold.load(Ordering::Relaxed) as u64 {
            self.ring();
        }
    }

    /// Rings unconditionally if anything is pending — producers call this
    /// at burst end so the tail of a burst is never silently deferred.
    pub fn flush(&self) {
        if self.inner.pending.load(Ordering::Relaxed) > 0 {
            self.ring();
        }
    }

    fn ring(&self) {
        let pkts = self.inner.pending.swap(0, Ordering::Relaxed);
        if pkts == 0 {
            return;
        }
        self.inner.rings.fetch_add(1, Ordering::Relaxed);
        self.inner.notified_pkts.fetch_add(pkts, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Release);
        telemetry::pools::note_doorbell_ring(pkts);
        // Every packet beyond the first in this notification is a
        // suppressed per-packet ring.
        if pkts > 1 {
            telemetry::pools::note_doorbell_suppressed(pkts - 1);
        }
    }

    /// Consumes the notification hint: true when the doorbell rang since
    /// the last take. Pollers use this as a cheap idle shortcut; packets
    /// are visible in the ring regardless.
    pub fn take(&self) -> bool {
        self.inner.armed.swap(false, Ordering::AcqRel)
    }

    /// Notifications delivered so far.
    pub fn rings(&self) -> u64 {
        self.inner.rings.load(Ordering::Relaxed)
    }

    /// Per-packet notifications elided so far: a per-packet scheme would
    /// have rung once per notified packet, the batched scheme rang
    /// [`Doorbell::rings`] times.
    pub fn suppressed(&self) -> u64 {
        self.notified_pkts().saturating_sub(self.rings())
    }

    /// Packets covered by delivered notifications.
    pub fn notified_pkts(&self) -> u64 {
        self.inner.notified_pkts.load(Ordering::Relaxed)
    }

    /// Packets per notification (the coalescing win); 0 before any ring.
    pub fn coalescing_ratio(&self) -> f64 {
        let rings = self.rings();
        if rings == 0 {
            0.0
        } else {
            self.notified_pkts() as f64 / rings as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_once_per_threshold_not_per_packet() {
        let d = Doorbell::new(8);
        for _ in 0..16 {
            d.notify(1);
        }
        assert_eq!(d.rings(), 2, "16 pkts / threshold 8");
        assert_eq!(d.notified_pkts(), 16);
        assert!(d.coalescing_ratio() >= 8.0);
    }

    #[test]
    fn flush_rings_the_burst_tail() {
        let d = Doorbell::new(32);
        d.notify(5);
        assert_eq!(d.rings(), 0, "below threshold: deferred");
        d.flush();
        assert_eq!(d.rings(), 1);
        assert_eq!(d.notified_pkts(), 5);
        d.flush();
        assert_eq!(d.rings(), 1, "flush with nothing pending is free");
    }

    #[test]
    fn burst_notify_counts_whole_burst_as_one_ring() {
        let d = Doorbell::new(32);
        d.notify(32);
        assert_eq!(d.rings(), 1);
        assert_eq!(d.suppressed(), 31, "31 per-packet rings elided");
    }

    #[test]
    fn take_consumes_the_hint_once() {
        let d = Doorbell::new(1);
        assert!(!d.take());
        d.notify(1);
        assert!(d.take());
        assert!(!d.take(), "hint is edge-triggered");
    }

    #[test]
    fn per_packet_threshold_never_suppresses() {
        let d = Doorbell::new(1);
        for _ in 0..4 {
            d.notify(1);
        }
        assert_eq!(d.rings(), 4);
        assert_eq!(d.suppressed(), 0);
    }
}
