//! The PMD control protocol.
//!
//! These messages travel over the VM's virtio-serial device, from the
//! compute agent (host) to the guest runner, which applies them to the
//! addressed PMD between polling bursts. Every request carries a sequence
//! number; the guest answers with a [`PmdAck`] carrying the same number, so
//! the agent can drive the setup/teardown state machines synchronously —
//! this request/ack round-trip is part of the ~100 ms setup latency the
//! paper reports.

/// A control request addressed to one guest PMD (by OpenFlow port number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmdCtrl {
    /// Map the ivshmem device backing `segment` as the bypass channel of
    /// port `of_port` (directions stay disabled until enabled explicitly).
    MapBypass {
        seq: u64,
        of_port: u32,
        segment: String,
    },
    /// Start transmitting through the bypass. `rule_cookie` identifies the
    /// OpenFlow rule whose counters the PMD must maintain in the shared
    /// stats region; `peer_port` is the destination port whose tx counters
    /// bypassed packets belong to.
    EnableTx {
        seq: u64,
        of_port: u32,
        rule_cookie: u64,
        peer_port: u32,
    },
    /// Start polling the bypass on receive.
    EnableRx { seq: u64, of_port: u32 },
    /// Stop transmitting through the bypass (new packets take the normal
    /// channel again). First step of a lossless teardown.
    DisableTx { seq: u64, of_port: u32 },
    /// Drain any packets still in the bypass receive ring, then stop
    /// polling it. Second step of a lossless teardown; the ack reports how
    /// many packets were drained.
    DisableRxDrain { seq: u64, of_port: u32 },
    /// Drop the bypass channel endpoint entirely (after both directions
    /// are disabled). The agent unplugs the ivshmem device afterwards.
    UnmapBypass { seq: u64, of_port: u32 },
}

impl PmdCtrl {
    /// The sequence number of this request.
    pub fn seq(&self) -> u64 {
        match self {
            PmdCtrl::MapBypass { seq, .. }
            | PmdCtrl::EnableTx { seq, .. }
            | PmdCtrl::EnableRx { seq, .. }
            | PmdCtrl::DisableTx { seq, .. }
            | PmdCtrl::DisableRxDrain { seq, .. }
            | PmdCtrl::UnmapBypass { seq, .. } => *seq,
        }
    }

    /// The target port of this request.
    pub fn of_port(&self) -> u32 {
        match self {
            PmdCtrl::MapBypass { of_port, .. }
            | PmdCtrl::EnableTx { of_port, .. }
            | PmdCtrl::EnableRx { of_port, .. }
            | PmdCtrl::DisableTx { of_port, .. }
            | PmdCtrl::DisableRxDrain { of_port, .. }
            | PmdCtrl::UnmapBypass { of_port, .. } => *of_port,
        }
    }
}

/// The guest's acknowledgement of a control request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmdAck {
    /// Sequence number of the acknowledged request.
    pub seq: u64,
    /// Port the request addressed.
    pub of_port: u32,
    /// `false` when the request could not be applied (e.g. unknown port or
    /// segment) — the agent treats that as a setup failure and rolls back.
    pub ok: bool,
    /// Packets drained from the bypass rx ring (for `DisableRxDrain`).
    pub drained: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let msgs = [
            PmdCtrl::MapBypass {
                seq: 1,
                of_port: 10,
                segment: "s".into(),
            },
            PmdCtrl::EnableTx {
                seq: 2,
                of_port: 11,
                rule_cookie: 7,
                peer_port: 12,
            },
            PmdCtrl::EnableRx {
                seq: 3,
                of_port: 12,
            },
            PmdCtrl::DisableTx {
                seq: 4,
                of_port: 13,
            },
            PmdCtrl::DisableRxDrain {
                seq: 5,
                of_port: 14,
            },
            PmdCtrl::UnmapBypass {
                seq: 6,
                of_port: 15,
            },
        ];
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.seq(), (i + 1) as u64);
            assert_eq!(m.of_port(), (i + 10) as u32);
        }
    }
}
