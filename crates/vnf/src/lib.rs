//! # vnf-apps
//!
//! Everything that runs *inside* a VM in the paper's architecture:
//!
//! * [`pmd`] — the **modified dpdkr poll-mode driver**: one logical port
//!   multiplexing the normal channel (to the vSwitch) and an optional bypass
//!   channel (directly to a peer VM). Transmit prefers the bypass when
//!   active and accounts every bypassed packet in the shared statistics
//!   region; receive polls the bypass first but always also drains the
//!   normal channel, so controller `packet-out`s keep arriving — exactly the
//!   behaviour §2 of the paper describes.
//! * [`control`] — the control-protocol messages the compute agent sends
//!   over virtio-serial to reconfigure a PMD at run time.
//! * [`runner`] — the guest main loop: polls ports, applies a [`VnfApp`],
//!   forwards between the VM's two ports (the paper's test application
//!   shape) and services control messages between bursts.
//! * [`apps`] — VNF applications: the plain forwarder used in the paper's
//!   evaluation plus the firewall / network monitor / web cache from its
//!   motivating service graph (Figure 1).

pub mod apps;
pub mod control;
pub mod middlebox;
pub mod pmd;
pub mod runner;

pub use apps::{Firewall, FirewallRule, L2Forwarder, NetworkMonitor, Verdict, VnfApp, WebCache};
pub use control::{PmdAck, PmdCtrl};
pub use middlebox::{
    DpiClassifier, DpiSignature, IcmpResponder, Nat44, RoundRobinBalancer, TokenBucketPolicer,
};
pub use pmd::DpdkrPmd;
pub use runner::{GuestConfig, VnfRunner};
