//! Additional middlebox VNFs beyond the paper's motivating trio.
//!
//! These are the functions an NFV operator actually chains — NAT, policer,
//! load balancer, DPI — implemented against the same [`VnfApp`] trait, so
//! every example and experiment can compose them freely. They also give the
//! transparency tests more interesting material than a pure forwarder: NAT
//! and the balancer *rewrite* headers, the policer *drops*, DPI *inspects
//! payloads* — none of which may behave differently over a bypass channel.
//!
//! Convention used throughout (matching the chain topology of the
//! evaluation): port index 0 faces "inside"/upstream, port index 1 faces
//! "outside"/downstream.

use crate::apps::{Verdict, VnfApp};
use dpdk_sim::{cycles, Mbuf};
use packet_wire::{FlowKey, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Rewrites the L3/L4 headers of a frame in place, fixing checksums.
/// `None` fields keep the packet's current value.
fn rewrite(
    pkt: &mut Mbuf,
    key: &FlowKey,
    src: Option<Ipv4Addr>,
    dst: Option<Ipv4Addr>,
    l4_src: Option<u16>,
    l4_dst: Option<u16>,
) -> bool {
    let l3_off = key.l3_offset();
    let data = pkt.data_mut();
    if data.len() <= l3_off {
        return false;
    }
    let Ok(mut ip) = Ipv4Packet::new_checked(&mut data[l3_off..]) else {
        return false;
    };
    if let Some(a) = src {
        ip.set_src_addr(a);
    }
    if let Some(a) = dst {
        ip.set_dst_addr(a);
    }
    ip.fill_checksum();
    let (new_src, new_dst) = (ip.src_addr(), ip.dst_addr());
    let header_len = ip.header_len();
    let proto = ip.protocol();
    let l4 = &mut data[l3_off + header_len..];
    match proto {
        IpProtocol::Udp => {
            let Ok(mut udp) = UdpDatagram::new_checked(l4) else {
                return false;
            };
            if let Some(p) = l4_src {
                udp.set_src_port(p);
            }
            if let Some(p) = l4_dst {
                udp.set_dst_port(p);
            }
            udp.fill_checksum(new_src, new_dst);
        }
        IpProtocol::Tcp => {
            let Ok(mut tcp) = TcpSegment::new_checked(l4) else {
                return false;
            };
            if let Some(p) = l4_src {
                tcp.set_src_port(p);
            }
            if let Some(p) = l4_dst {
                tcp.set_dst_port(p);
            }
            tcp.fill_checksum(new_src, new_dst);
        }
        _ => {}
    }
    true
}

/// Source NAT (NAPT): inside traffic (port 0) leaves with the public
/// address and a translated source port; return traffic (port 1) is
/// translated back. Unknown inbound flows are dropped, like a real NAT.
pub struct Nat44 {
    public_ip: Ipv4Addr,
    next_port: u16,
    /// (proto, inside ip, inside port) → translated port.
    outbound: HashMap<(u8, Ipv4Addr, u16), u16>,
    /// (proto, translated port) → (inside ip, inside port).
    inbound: HashMap<(u8, u16), (Ipv4Addr, u16)>,
    /// Outbound packets translated.
    pub translated_out: u64,
    /// Inbound packets translated back.
    pub translated_in: u64,
    /// Inbound packets with no mapping (dropped).
    pub rejected: u64,
}

impl Nat44 {
    /// A NAT translating to `public_ip`, allocating ports from 40000 up.
    pub fn new(public_ip: Ipv4Addr) -> Nat44 {
        Nat44 {
            public_ip,
            next_port: 40_000,
            outbound: HashMap::new(),
            inbound: HashMap::new(),
            translated_out: 0,
            translated_in: 0,
            rejected: 0,
        }
    }

    /// Live translation entries.
    pub fn table_size(&self) -> usize {
        self.outbound.len()
    }
}

impl VnfApp for Nat44 {
    fn name(&self) -> &str {
        "nat44"
    }

    fn process(&mut self, pkt: &mut Mbuf, in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        if key.ip_proto != IpProtocol::Udp.to_u8() && key.ip_proto != IpProtocol::Tcp.to_u8() {
            return Verdict::Forward; // non-L4 traffic passes untranslated
        }
        if in_port_idx == 0 {
            // Inside → outside.
            let map_key = (key.ip_proto, key.ipv4_src, key.l4_src);
            let translated = match self.outbound.get(&map_key) {
                Some(p) => *p,
                None => {
                    let p = self.next_port;
                    self.next_port = self.next_port.wrapping_add(1).max(40_000);
                    self.outbound.insert(map_key, p);
                    self.inbound
                        .insert((key.ip_proto, p), (key.ipv4_src, key.l4_src));
                    p
                }
            };
            if rewrite(
                pkt,
                &key,
                Some(self.public_ip),
                None,
                Some(translated),
                None,
            ) {
                self.translated_out += 1;
                Verdict::Forward
            } else {
                self.rejected += 1;
                Verdict::Drop
            }
        } else {
            // Outside → inside: only established mappings come back.
            match self.inbound.get(&(key.ip_proto, key.l4_dst)) {
                Some((ip, port)) => {
                    let (ip, port) = (*ip, *port);
                    if rewrite(pkt, &key, None, Some(ip), None, Some(port)) {
                        self.translated_in += 1;
                        Verdict::Forward
                    } else {
                        self.rejected += 1;
                        Verdict::Drop
                    }
                }
                None => {
                    self.rejected += 1;
                    Verdict::Drop
                }
            }
        }
    }
}

/// A byte-rate policer: a token bucket over the cycle clock; packets beyond
/// the configured rate are dropped (ingress policing, not shaping — there
/// is no queue, exactly like `rte_meter` + drop action).
pub struct TokenBucketPolicer {
    rate_bytes_per_cycle: f64,
    burst_bytes: f64,
    tokens: f64,
    last: u64,
    /// Packets passed.
    pub passed: u64,
    /// Packets dropped for exceeding the rate.
    pub policed: u64,
}

impl TokenBucketPolicer {
    /// A policer at `mbps` megabit/s with a `burst_bytes` allowance.
    pub fn new(mbps: f64, burst_bytes: f64) -> TokenBucketPolicer {
        TokenBucketPolicer {
            rate_bytes_per_cycle: mbps * 1e6 / 8.0 / cycles::CPU_HZ as f64,
            burst_bytes,
            tokens: burst_bytes,
            last: cycles::now(),
            passed: 0,
            policed: 0,
        }
    }
}

impl VnfApp for TokenBucketPolicer {
    fn name(&self) -> &str {
        "policer"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let now = cycles::now();
        self.tokens = (self.tokens
            + now.saturating_sub(self.last) as f64 * self.rate_bytes_per_cycle)
            .min(self.burst_bytes);
        self.last = now;
        let cost = pkt.len() as f64;
        if self.tokens >= cost {
            self.tokens -= cost;
            self.passed += 1;
            Verdict::Forward
        } else {
            self.policed += 1;
            Verdict::Drop
        }
    }
}

/// A flow-sticky L4 load balancer: rewrites the destination address to one
/// of the backends, chosen round-robin per *new* flow and remembered so a
/// flow never changes backend (connection affinity).
pub struct RoundRobinBalancer {
    backends: Vec<Ipv4Addr>,
    next: usize,
    assignments: HashMap<FlowKey, Ipv4Addr>,
    /// Packets steered to each backend, index-aligned with `backends`.
    pub per_backend: Vec<u64>,
}

impl RoundRobinBalancer {
    /// A balancer over the given backends (at least one).
    pub fn new(backends: Vec<Ipv4Addr>) -> RoundRobinBalancer {
        assert!(!backends.is_empty(), "balancer needs at least one backend");
        let n = backends.len();
        RoundRobinBalancer {
            backends,
            next: 0,
            assignments: HashMap::new(),
            per_backend: vec![0; n],
        }
    }

    /// Distinct flows assigned so far.
    pub fn flow_count(&self) -> usize {
        self.assignments.len()
    }
}

impl VnfApp for RoundRobinBalancer {
    fn name(&self) -> &str {
        "balancer"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        let backend = match self.assignments.get(&key) {
            Some(b) => *b,
            None => {
                let b = self.backends[self.next % self.backends.len()];
                self.next += 1;
                self.assignments.insert(key, b);
                b
            }
        };
        if rewrite(pkt, &key, None, Some(backend), None, None) {
            if let Some(idx) = self.backends.iter().position(|b| *b == backend) {
                self.per_backend[idx] += 1;
            }
            Verdict::Forward
        } else {
            Verdict::Drop
        }
    }
}

/// One DPI signature: a byte pattern sought in L4 payloads.
#[derive(Debug, Clone)]
pub struct DpiSignature {
    pub name: String,
    pub pattern: Vec<u8>,
    /// Drop matching packets (true) or just count them (false).
    pub block: bool,
}

impl DpiSignature {
    /// A counting (non-blocking) signature.
    pub fn observe(name: impl Into<String>, pattern: impl Into<Vec<u8>>) -> DpiSignature {
        DpiSignature {
            name: name.into(),
            pattern: pattern.into(),
            block: false,
        }
    }

    /// A blocking signature.
    pub fn block(name: impl Into<String>, pattern: impl Into<Vec<u8>>) -> DpiSignature {
        DpiSignature {
            name: name.into(),
            pattern: pattern.into(),
            block: true,
        }
    }
}

/// Deep packet inspection: scans L4 payloads for byte signatures
/// (naive scan — payloads are 64–1500 B, patterns are short).
pub struct DpiClassifier {
    signatures: Vec<DpiSignature>,
    /// Hits per signature, index-aligned with the constructor's list.
    pub hits: Vec<u64>,
    /// Packets dropped by blocking signatures.
    pub blocked: u64,
    /// Packets scanned (with an L4 payload).
    pub scanned: u64,
}

impl DpiClassifier {
    /// A classifier over the given signature set.
    pub fn new(signatures: Vec<DpiSignature>) -> DpiClassifier {
        let n = signatures.len();
        DpiClassifier {
            signatures,
            hits: vec![0; n],
            blocked: 0,
            scanned: 0,
        }
    }

    fn payload<'a>(key: &FlowKey, frame: &'a [u8]) -> Option<&'a [u8]> {
        let l3 = frame.get(key.l3_offset()..)?;
        let ip = Ipv4Packet::new_checked(l3).ok()?;
        let header_len = ip.header_len();
        let l4 = l3.get(header_len..)?;
        match IpProtocol::from_u8(key.ip_proto) {
            IpProtocol::Udp => l4.get(packet_wire::UDP_HEADER_LEN..),
            IpProtocol::Tcp => {
                let tcp = TcpSegment::new_checked(l4).ok()?;
                let off = tcp.header_len();
                l4.get(off..)
            }
            _ => None,
        }
    }
}

impl VnfApp for DpiClassifier {
    fn name(&self) -> &str {
        "dpi"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        let frame = pkt.data();
        let Some(payload) = Self::payload(&key, frame) else {
            return Verdict::Forward;
        };
        self.scanned += 1;
        let mut verdict = Verdict::Forward;
        for (i, sig) in self.signatures.iter().enumerate() {
            if !sig.pattern.is_empty()
                && payload
                    .windows(sig.pattern.len())
                    .any(|w| w == &sig.pattern[..])
            {
                self.hits[i] += 1;
                if sig.block {
                    verdict = Verdict::Drop;
                }
            }
        }
        if verdict == Verdict::Drop {
            self.blocked += 1;
        }
        verdict
    }
}

/// An ICMP echo responder for one owned address: echo requests to
/// `my_ip` are turned into replies *in place* (MACs and IPs swapped,
/// type flipped, checksums fixed) and bounced back out the port they
/// arrived on; everything else passes through.
pub struct IcmpResponder {
    my_ip: Ipv4Addr,
    /// Echo requests answered.
    pub answered: u64,
    /// Non-matching packets passed through.
    pub passthrough: u64,
}

impl IcmpResponder {
    /// A responder answering for `my_ip`.
    pub fn new(my_ip: Ipv4Addr) -> IcmpResponder {
        IcmpResponder {
            my_ip,
            answered: 0,
            passthrough: 0,
        }
    }
}

impl VnfApp for IcmpResponder {
    fn name(&self) -> &str {
        "icmp-responder"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        use packet_wire::{EthernetFrame, IcmpPacket, IcmpType};
        let key = FlowKey::extract(pkt.data());
        if key.ip_proto != IpProtocol::Icmp.to_u8() || key.ipv4_dst != self.my_ip {
            self.passthrough += 1;
            return Verdict::Forward;
        }
        let l3_off = key.l3_offset();
        let data = pkt.data_mut();
        // Swap Ethernet addresses.
        {
            let Ok(mut eth) = EthernetFrame::new_checked(&mut data[..]) else {
                self.passthrough += 1;
                return Verdict::Forward;
            };
            let (src, dst) = (eth.src_addr(), eth.dst_addr());
            eth.set_src_addr(dst);
            eth.set_dst_addr(src);
        }
        // Swap IP addresses and flip the ICMP type.
        let Ok(ip) = Ipv4Packet::new_checked(&mut data[l3_off..]) else {
            self.passthrough += 1;
            return Verdict::Forward;
        };
        let (src, dst) = (ip.src_addr(), ip.dst_addr());
        let header_len = ip.header_len();
        {
            let Ok(mut icmp) = IcmpPacket::new_checked(&mut data[l3_off + header_len..]) else {
                self.passthrough += 1;
                return Verdict::Forward;
            };
            if icmp.icmp_type() != IcmpType::EchoRequest {
                self.passthrough += 1;
                return Verdict::Forward;
            }
            icmp.set_icmp_type(IcmpType::EchoReply);
            icmp.fill_checksum();
        }
        let Ok(mut ip) = Ipv4Packet::new_checked(&mut data[l3_off..]) else {
            unreachable!("validated above");
        };
        ip.set_src_addr(dst);
        ip.set_dst_addr(src);
        ip.set_ttl(64);
        ip.fill_checksum();
        self.answered += 1;
        // Hairpin: the reply leaves the way the request came.
        Verdict::Reflect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet_wire::PacketBuilder;

    fn probe_from(src: Ipv4Addr, sport: u16, dport: u16) -> Mbuf {
        Mbuf::from_slice(
            &PacketBuilder::udp_probe(64)
                .ip(src, Ipv4Addr::new(8, 8, 8, 8))
                .ports(sport, dport)
                .build(),
        )
    }

    /// A probe whose UDP payload tail carries `marker` bytes.
    fn probe_with_payload(marker: &[u8]) -> Mbuf {
        let mut frame = PacketBuilder::udp_probe(96).build();
        let n = frame.len();
        frame[n - marker.len()..].copy_from_slice(marker);
        Mbuf::from_slice(&frame)
    }

    #[test]
    fn nat_translates_and_reverses() {
        let public = Ipv4Addr::new(203, 0, 113, 1);
        let mut nat = Nat44::new(public);
        let mut out = probe_from(Ipv4Addr::new(10, 0, 0, 5), 5555, 80);
        assert_eq!(nat.process(&mut out, 0), Verdict::Forward);
        let key = FlowKey::extract(out.data());
        assert_eq!(key.ipv4_src, public);
        assert_eq!(key.l4_src, 40_000);
        assert_eq!(nat.table_size(), 1);

        // Craft the reply: swap src/dst of the translated packet.
        let mut reply = Mbuf::from_slice(
            &PacketBuilder::udp_probe(64)
                .ip(Ipv4Addr::new(8, 8, 8, 8), public)
                .ports(80, 40_000)
                .build(),
        );
        assert_eq!(nat.process(&mut reply, 1), Verdict::Forward);
        let rkey = FlowKey::extract(reply.data());
        assert_eq!(rkey.ipv4_dst, Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(rkey.l4_dst, 5555);
        assert_eq!((nat.translated_out, nat.translated_in), (1, 1));
    }

    #[test]
    fn nat_is_stable_per_flow_and_distinct_across_flows() {
        let mut nat = Nat44::new(Ipv4Addr::new(203, 0, 113, 1));
        let mut a1 = probe_from(Ipv4Addr::new(10, 0, 0, 5), 1111, 80);
        let mut a2 = probe_from(Ipv4Addr::new(10, 0, 0, 5), 1111, 80);
        let mut b = probe_from(Ipv4Addr::new(10, 0, 0, 6), 1111, 80);
        nat.process(&mut a1, 0);
        nat.process(&mut a2, 0);
        nat.process(&mut b, 0);
        let pa1 = FlowKey::extract(a1.data()).l4_src;
        let pa2 = FlowKey::extract(a2.data()).l4_src;
        let pb = FlowKey::extract(b.data()).l4_src;
        assert_eq!(pa1, pa2, "same flow keeps its port");
        assert_ne!(pa1, pb, "different flows get different ports");
        assert_eq!(nat.table_size(), 2);
    }

    #[test]
    fn nat_drops_unsolicited_inbound() {
        let mut nat = Nat44::new(Ipv4Addr::new(203, 0, 113, 1));
        let mut stray = probe_from(Ipv4Addr::new(8, 8, 8, 8), 80, 40_000);
        assert_eq!(nat.process(&mut stray, 1), Verdict::Drop);
        assert_eq!(nat.rejected, 1);
    }

    #[test]
    fn nat_rewrites_keep_checksums_valid() {
        let mut nat = Nat44::new(Ipv4Addr::new(203, 0, 113, 1));
        let mut pkt = probe_from(Ipv4Addr::new(10, 0, 0, 5), 5555, 80);
        nat.process(&mut pkt, 0);
        let key = FlowKey::extract(pkt.data());
        let l3 = &pkt.data()[key.l3_offset()..];
        let ip = Ipv4Packet::new_checked(l3).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn policer_enforces_a_rate() {
        // 1 Mb/s with a one-packet burst: the first packet passes, a
        // tight burst of followers is policed.
        let mut p = TokenBucketPolicer::new(1.0, 64.0);
        let mut first = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
        assert_eq!(p.process(&mut first, 0), Verdict::Forward);
        let mut dropped = 0;
        for _ in 0..10 {
            let mut m = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
            if p.process(&mut m, 0) == Verdict::Drop {
                dropped += 1;
            }
        }
        assert!(dropped >= 9, "policer must drop a tight burst");
        assert_eq!(p.passed + p.policed, 11);
    }

    #[test]
    fn policer_refills_over_time() {
        let mut p = TokenBucketPolicer::new(100.0, 64.0);
        let mut m = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
        assert_eq!(p.process(&mut m, 0), Verdict::Forward);
        // Drain, then wait for refill (100 Mb/s refills 64 B in ~5 µs).
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut m2 = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
        assert_eq!(p.process(&mut m2, 0), Verdict::Forward);
    }

    #[test]
    fn balancer_is_sticky_and_round_robin() {
        let b1 = Ipv4Addr::new(10, 1, 0, 1);
        let b2 = Ipv4Addr::new(10, 1, 0, 2);
        let mut lb = RoundRobinBalancer::new(vec![b1, b2]);
        // Flow A twice, flow B once.
        let mut a1 = probe_from(Ipv4Addr::new(10, 0, 0, 5), 1000, 80);
        let mut a2 = probe_from(Ipv4Addr::new(10, 0, 0, 5), 1000, 80);
        let mut b = probe_from(Ipv4Addr::new(10, 0, 0, 5), 2000, 80);
        lb.process(&mut a1, 0);
        lb.process(&mut a2, 0);
        lb.process(&mut b, 0);
        let da1 = FlowKey::extract(a1.data()).ipv4_dst;
        let da2 = FlowKey::extract(a2.data()).ipv4_dst;
        let db = FlowKey::extract(b.data()).ipv4_dst;
        assert_eq!(da1, b1);
        assert_eq!(da2, b1, "affinity: same flow, same backend");
        assert_eq!(db, b2, "round robin: next flow, next backend");
        assert_eq!(lb.per_backend, vec![2, 1]);
        assert_eq!(lb.flow_count(), 2);
    }

    /// Builds a full Ethernet/IPv4/ICMP echo-request frame.
    fn icmp_echo_request(dst: Ipv4Addr, ident: u16, seq: u16) -> Mbuf {
        use packet_wire::{
            EtherType, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, MacAddr,
            ETHERNET_HEADER_LEN, ICMP_HEADER_LEN, IPV4_HEADER_LEN,
        };
        let payload = b"ping!";
        let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + ICMP_HEADER_LEN + payload.len();
        let mut buf = vec![0u8; total];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_src_addr(MacAddr::local(1));
            eth.set_dst_addr(MacAddr::local(2));
            eth.set_ethertype(EtherType::Ipv4);
        }
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
            ip.set_version_and_header_len(IPV4_HEADER_LEN);
            ip.set_total_len((total - ETHERNET_HEADER_LEN) as u16);
            ip.set_ttl(64);
            ip.set_protocol(IpProtocol::Icmp);
            ip.set_src_addr(Ipv4Addr::new(10, 0, 0, 1));
            ip.set_dst_addr(dst);
            ip.set_flags_frag(0x4000);
            ip.fill_checksum();
        }
        {
            let off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
            let mut icmp = IcmpPacket::new_unchecked(&mut buf[off..]);
            icmp.set_icmp_type(IcmpType::EchoRequest);
            icmp.set_code(0);
            icmp.set_echo_ident(ident);
            icmp.set_echo_seq(seq);
            icmp.payload_mut().copy_from_slice(payload);
            icmp.fill_checksum();
        }
        Mbuf::from_slice(&buf)
    }

    #[test]
    fn icmp_responder_answers_its_address() {
        use packet_wire::{IcmpPacket, IcmpType};
        let me = Ipv4Addr::new(10, 0, 0, 99);
        let mut app = IcmpResponder::new(me);
        let mut pkt = icmp_echo_request(me, 0xAB, 3);
        assert_eq!(app.process(&mut pkt, 0), Verdict::Reflect);
        assert_eq!(app.answered, 1);

        // The packet is now a well-formed reply back to the requester.
        let key = FlowKey::extract(pkt.data());
        assert_eq!(key.ipv4_src, me);
        assert_eq!(key.ipv4_dst, Ipv4Addr::new(10, 0, 0, 1));
        let l3 = &pkt.data()[key.l3_offset()..];
        let ip = Ipv4Packet::new_checked(l3).unwrap();
        assert!(ip.verify_checksum());
        let icmp = IcmpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(icmp.icmp_type(), IcmpType::EchoReply);
        assert!(icmp.verify_checksum());
        assert_eq!(icmp.echo_ident(), 0xAB);
        assert_eq!(icmp.echo_seq(), 3);
        assert_eq!(icmp.payload(), b"ping!");
    }

    #[test]
    fn icmp_responder_passes_other_traffic() {
        let me = Ipv4Addr::new(10, 0, 0, 99);
        let mut app = IcmpResponder::new(me);
        // Echo request for someone else: passes through.
        let mut other = icmp_echo_request(Ipv4Addr::new(10, 0, 0, 50), 1, 1);
        assert_eq!(app.process(&mut other, 0), Verdict::Forward);
        // UDP to our address: passes through.
        let mut udp = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
        assert_eq!(app.process(&mut udp, 0), Verdict::Forward);
        assert_eq!(app.answered, 0);
        assert_eq!(app.passthrough, 2);
    }

    #[test]
    fn dpi_counts_and_blocks_signatures() {
        let mut dpi = DpiClassifier::new(vec![
            DpiSignature::observe("greeting", b"HELLO".to_vec()),
            DpiSignature::block("malware", b"EVIL".to_vec()),
        ]);
        let mut benign = probe_with_payload(b"..HELLO..");
        assert_eq!(dpi.process(&mut benign, 0), Verdict::Forward);

        let mut evil = probe_with_payload(b"xxEVILxx");
        assert_eq!(dpi.process(&mut evil, 0), Verdict::Drop);
        assert_eq!(dpi.hits[0], 1);
        assert_eq!(dpi.hits[1], 1);
        assert_eq!(dpi.blocked, 1);
        assert_eq!(dpi.scanned, 2);

        // Plain probes match nothing.
        let mut plain = probe_from(Ipv4Addr::new(10, 0, 0, 1), 1, 2);
        assert_eq!(dpi.process(&mut plain, 0), Verdict::Forward);
        assert_eq!(dpi.blocked, 1);
    }
}
