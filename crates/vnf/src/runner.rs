//! The guest main loop.
//!
//! A [`VnfRunner`] is what executes on a VM's vCPU: a single-core DPDK-style
//! application driving the VM's (typically two) dpdkr ports through the
//! modified PMD, applying a [`VnfApp`] to every packet and forwarding
//! between the ports — the exact shape of the paper's evaluation VMs.
//! Between bursts it services PMD control messages arriving over
//! virtio-serial, which is how bypass reconfiguration happens *without
//! stopping the application*.

use crate::apps::{Verdict, VnfApp};
use crate::control::{PmdAck, PmdCtrl};
use crate::pmd::DpdkrPmd;
use dpdk_sim::{Mbuf, DEFAULT_BURST};
use shmem_sim::{DeviceBoard, SerialPort};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, externally readable guest counters.
#[derive(Debug, Default)]
pub struct GuestCounters {
    /// Packets forwarded port-to-port.
    pub forwarded: AtomicU64,
    /// Packets dropped by the application verdict.
    pub dropped: AtomicU64,
    /// Packets sent back out their ingress port (Verdict::Reflect).
    pub reflected: AtomicU64,
    /// Control messages applied.
    pub ctrl_applied: AtomicU64,
}

/// Configuration for one guest.
pub struct GuestConfig {
    /// VM name (diagnostics).
    pub name: String,
    /// The VM's PMDs, one per dpdkr port, in port-pair order.
    pub ports: Vec<DpdkrPmd>,
    /// The packet-processing application.
    pub app: Box<dyn VnfApp>,
    /// Guest end of the virtio-serial control channel.
    pub serial: SerialPort<PmdCtrl>,
    /// Host end used for acks is the same duplex channel.
    pub ack_via: SerialPort<PmdAck>,
    /// The VM's device board (for mapping hot-plugged ivshmem devices).
    pub board: Arc<DeviceBoard>,
}

/// The running guest application.
pub struct VnfRunner {
    name: String,
    ports: Vec<DpdkrPmd>,
    app: Box<dyn VnfApp>,
    serial: SerialPort<PmdCtrl>,
    ack_via: SerialPort<PmdAck>,
    board: Arc<DeviceBoard>,
    stop: Arc<AtomicBool>,
    counters: Arc<GuestCounters>,
}

impl VnfRunner {
    /// Builds a runner; `stop` terminates [`VnfRunner::run`].
    pub fn new(config: GuestConfig, stop: Arc<AtomicBool>) -> VnfRunner {
        VnfRunner {
            name: config.name,
            ports: config.ports,
            app: config.app,
            serial: config.serial,
            ack_via: config.ack_via,
            board: config.board,
            stop,
            counters: Arc::new(GuestCounters::default()),
        }
    }

    /// Shared counter handle (read from other threads).
    pub fn counters(&self) -> Arc<GuestCounters> {
        Arc::clone(&self.counters)
    }

    /// VM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn port_index(&self, of_port: u32) -> Option<usize> {
        self.ports.iter().position(|p| p.of_port() == of_port)
    }

    /// Applies one control message; replies with an ack.
    fn handle_ctrl(&mut self, msg: PmdCtrl) {
        let seq = msg.seq();
        let of_port = msg.of_port();
        let mut drained = 0u64;
        let ok = match (self.port_index(of_port), msg) {
            (Some(idx), PmdCtrl::MapBypass { segment, .. }) => {
                match self.board.map_segment(&segment) {
                    Some(end) => {
                        self.ports[idx].map_bypass(end);
                        // The agent plugs the host packet arena alongside
                        // the bypass device; adopt it so packets this port
                        // originates travel as offset descriptors.
                        if let Some(arena) = self.board.arena() {
                            self.ports[idx].set_arena(arena);
                        }
                        true
                    }
                    None => false,
                }
            }
            (
                Some(idx),
                PmdCtrl::EnableTx {
                    rule_cookie,
                    peer_port,
                    ..
                },
            ) => self.ports[idx].enable_tx(rule_cookie, peer_port),
            (Some(idx), PmdCtrl::EnableRx { .. }) => self.ports[idx].enable_rx(),
            (Some(idx), PmdCtrl::DisableTx { .. }) => {
                self.ports[idx].disable_tx();
                true
            }
            (Some(idx), PmdCtrl::DisableRxDrain { .. }) => {
                // Drained packets are in-flight traffic: run them through
                // the application like any received burst.
                let mut pkts = Vec::new();
                drained = self.ports[idx].disable_rx_drain(&mut pkts);
                self.process_burst(idx, pkts);
                true
            }
            (Some(idx), PmdCtrl::UnmapBypass { .. }) => {
                // Defensive guest: a crashed agent may skip the disable
                // steps, so sanitise before unmapping (the PMD's unmap
                // contract requires both directions inactive). In-flight
                // packets still drain through the application.
                self.ports[idx].disable_tx();
                let mut pkts = Vec::new();
                drained = self.ports[idx].disable_rx_drain(&mut pkts);
                self.process_burst(idx, pkts);
                self.ports[idx].unmap_bypass();
                true
            }
            (None, _) => false,
        };
        self.counters.ctrl_applied.fetch_add(1, Ordering::Relaxed);
        let _ = self.ack_via.send(PmdAck {
            seq,
            of_port,
            ok,
            drained,
        });
    }

    /// For a two-port VM, the egress port for traffic arriving on `idx`.
    fn out_index(&self, idx: usize) -> usize {
        if self.ports.len() == 1 {
            idx
        } else {
            // Pairwise forwarding: 0↔1, 2↔3, ...
            idx ^ 1
        }
    }

    fn process_burst(&mut self, in_idx: usize, pkts: Vec<Mbuf>) {
        if pkts.is_empty() {
            return;
        }
        let out_idx = self.out_index(in_idx);
        let mut out: Vec<Mbuf> = Vec::with_capacity(pkts.len());
        let mut back: Vec<Mbuf> = Vec::new();
        for mut pkt in pkts {
            match self.app.process(&mut pkt, in_idx) {
                Verdict::Forward => out.push(pkt),
                Verdict::Reflect => back.push(pkt),
                Verdict::Drop => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let n = out.len() as u64;
        self.ports[out_idx].tx_burst(&mut out);
        self.counters.forwarded.fetch_add(n, Ordering::Relaxed);
        if !back.is_empty() {
            let n = back.len() as u64;
            self.ports[in_idx].tx_burst(&mut back);
            self.counters.reflected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// One polling iteration: control first, then every port.
    /// Returns true if any packet moved.
    pub fn poll_once(&mut self) -> bool {
        while let Some(msg) = self.serial.try_recv() {
            self.handle_ctrl(msg);
        }
        let mut moved = false;
        for idx in 0..self.ports.len() {
            let mut rx = Vec::with_capacity(DEFAULT_BURST);
            if self.ports[idx].rx_burst(&mut rx, DEFAULT_BURST) > 0 {
                moved = true;
                self.process_burst(idx, rx);
            }
        }
        moved
    }

    /// Runs until the stop flag rises; yields when idle.
    pub fn run(mut self) {
        while !self.stop.load(Ordering::Acquire) {
            if !self.poll_once() {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::L2Forwarder;
    use shmem_sim::{channel, serial_pair, IvshmemDevice, StatsRegion};

    struct Harness {
        runner: VnfRunner,
        sw0: shmem_sim::ChannelEnd,
        sw1: shmem_sim::ChannelEnd,
        host_ctrl: SerialPort<PmdCtrl>,
        host_ack: SerialPort<PmdAck>,
        board: Arc<DeviceBoard>,
        stats: StatsRegion,
    }

    /// Two-port guest with an L2 forwarder, plus all host-side handles.
    fn guest() -> Harness {
        let stats = StatsRegion::new();
        let (vm0, sw0) = channel("dpdkr1", 32);
        let (vm1, sw1) = channel("dpdkr2", 32);
        let (host_ctrl, guest_ctrl) = serial_pair::<PmdCtrl>("vm");
        let (guest_ack, host_ack) = serial_pair::<PmdAck>("vm-ack");
        let board = Arc::new(DeviceBoard::new());
        let config = GuestConfig {
            name: "vm1".into(),
            ports: vec![
                DpdkrPmd::new(1, vm0, stats.clone()),
                DpdkrPmd::new(2, vm1, stats.clone()),
            ],
            app: Box::new(L2Forwarder::new()),
            serial: guest_ctrl,
            ack_via: guest_ack,
            board: Arc::clone(&board),
        };
        Harness {
            runner: VnfRunner::new(config, Arc::new(AtomicBool::new(false))),
            sw0,
            sw1,
            host_ctrl,
            host_ack,
            board,
            stats,
        }
    }

    fn pkt() -> Mbuf {
        Mbuf::from_slice(&packet_wire::PacketBuilder::udp_probe(64).build())
    }

    #[test]
    fn forwards_between_port_pair() {
        let mut h = guest();
        h.sw0.send(pkt()).unwrap();
        h.runner.poll_once();
        assert_eq!(h.sw1.recv().unwrap().len(), 64);
        // And the reverse direction.
        h.sw1.send(pkt()).unwrap();
        h.runner.poll_once();
        assert!(h.sw0.recv().is_some());
        assert_eq!(h.runner.counters().forwarded.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn control_reconfigures_bypass_live() {
        let mut h = guest();
        // Host plugs a bypass device and configures tx on port 2.
        let (end_a, mut end_b) = channel("bypass-seg", 32);
        h.board.plug(IvshmemDevice::new("bypass-seg", end_a));
        h.host_ctrl
            .send(PmdCtrl::MapBypass {
                seq: 1,
                of_port: 2,
                segment: "bypass-seg".into(),
            })
            .unwrap();
        h.host_ctrl
            .send(PmdCtrl::EnableTx {
                seq: 2,
                of_port: 2,
                rule_cookie: 0xfeed,
                peer_port: 3,
            })
            .unwrap();
        // Traffic arriving on port 1 now leaves via the bypass of port 2.
        h.sw0.send(pkt()).unwrap();
        h.runner.poll_once();
        assert_eq!(h.host_ack.try_recv().unwrap().seq, 1);
        assert_eq!(h.host_ack.try_recv().unwrap().seq, 2);
        assert_eq!(end_b.recv().unwrap().len(), 64);
        assert!(h.sw1.recv().is_none(), "switch path must be bypassed");
        assert_eq!(h.stats.rule_totals(0xfeed), (1, 64));
    }

    #[test]
    fn map_bypass_adopts_the_board_arena() {
        let mut h = guest();
        let host_arena = dpdk_sim::Arena::new("guest-arena", 8, 256);
        h.board.set_arena(&host_arena);
        let (end_a, _end_b) = channel("bypass-seg", 32);
        h.board.plug(IvshmemDevice::new("bypass-seg", end_a));
        assert!(h.runner.ports[1].arena().is_none());
        h.host_ctrl
            .send(PmdCtrl::MapBypass {
                seq: 1,
                of_port: 2,
                segment: "bypass-seg".into(),
            })
            .unwrap();
        h.runner.poll_once();
        let mapped = h.runner.ports[1].arena().expect("arena installed");
        assert_eq!(mapped.segment_id(), host_arena.segment_id());
    }

    #[test]
    fn teardown_drains_in_flight_packets_through_the_app() {
        let mut h = guest();
        let (end_a, mut peer) = channel("bypass-seg", 32);
        h.board.plug(IvshmemDevice::new("bypass-seg", end_a));
        h.host_ctrl
            .send(PmdCtrl::MapBypass {
                seq: 1,
                of_port: 1,
                segment: "bypass-seg".into(),
            })
            .unwrap();
        h.host_ctrl
            .send(PmdCtrl::EnableRx { seq: 2, of_port: 1 })
            .unwrap();
        h.runner.poll_once();
        // Peer VM sent packets that are still in the ring at teardown time.
        for _ in 0..4 {
            peer.send(pkt()).unwrap();
        }
        h.host_ctrl
            .send(PmdCtrl::DisableRxDrain { seq: 3, of_port: 1 })
            .unwrap();
        h.host_ctrl
            .send(PmdCtrl::UnmapBypass { seq: 4, of_port: 1 })
            .unwrap();
        h.runner.poll_once();
        // Acks for map/enable were consumed? (seq 1,2 first poll; 3,4 now)
        let acks: Vec<PmdAck> = std::iter::from_fn(|| h.host_ack.try_recv()).collect();
        let drain_ack = acks.iter().find(|a| a.seq == 3).unwrap();
        assert_eq!(drain_ack.drained, 4);
        assert!(drain_ack.ok);
        // Drained packets went through the app and out of port 2.
        let mut got = 0;
        while h.sw1.recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn reflect_verdict_bounces_out_the_ingress_port() {
        struct Bouncer;
        impl crate::apps::VnfApp for Bouncer {
            fn name(&self) -> &str {
                "bouncer"
            }
            fn process(&mut self, _pkt: &mut Mbuf, _idx: usize) -> crate::apps::Verdict {
                crate::apps::Verdict::Reflect
            }
        }
        let stats = StatsRegion::new();
        let (vm0, mut sw0) = channel("dpdkr1", 32);
        let (vm1, mut sw1) = channel("dpdkr2", 32);
        let (_host_ctrl, guest_ctrl) = serial_pair::<PmdCtrl>("vm");
        let (guest_ack, _host_ack) = serial_pair::<PmdAck>("vm-ack");
        let mut runner = VnfRunner::new(
            GuestConfig {
                name: "bounce".into(),
                ports: vec![
                    DpdkrPmd::new(1, vm0, stats.clone()),
                    DpdkrPmd::new(2, vm1, stats),
                ],
                app: Box::new(Bouncer),
                serial: guest_ctrl,
                ack_via: guest_ack,
                board: Arc::new(DeviceBoard::new()),
            },
            Arc::new(AtomicBool::new(false)),
        );
        sw0.send(pkt()).unwrap();
        runner.poll_once();
        assert!(sw0.recv().is_some(), "bounced back out port 1");
        assert!(sw1.recv().is_none(), "nothing crossed to port 2");
        assert_eq!(runner.counters().reflected.load(Ordering::Relaxed), 1);
        assert_eq!(runner.counters().forwarded.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unknown_port_is_nacked() {
        let mut h = guest();
        h.host_ctrl
            .send(PmdCtrl::EnableRx {
                seq: 9,
                of_port: 99,
            })
            .unwrap();
        h.runner.poll_once();
        let ack = h.host_ack.try_recv().unwrap();
        assert!(!ack.ok);
        assert_eq!(ack.seq, 9);
    }

    #[test]
    fn missing_segment_is_nacked() {
        let mut h = guest();
        h.host_ctrl
            .send(PmdCtrl::MapBypass {
                seq: 5,
                of_port: 1,
                segment: "not-plugged".into(),
            })
            .unwrap();
        h.runner.poll_once();
        assert!(!h.host_ack.try_recv().unwrap().ok);
    }
}
