//! VNF applications.
//!
//! The paper evaluates chains of single-core DPDK applications that move
//! packets between their two ports ([`L2Forwarder`]); its motivating service
//! graph (Figure 1) composes a firewall, a network monitor and a web cache —
//! all implemented here against the same [`VnfApp`] trait the runner drives.

use dpdk_sim::Mbuf;
use packet_wire::{FlowKey, IpProtocol};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What to do with a processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Send out the VM's other port.
    Forward,
    /// Drop the packet.
    Drop,
    /// Send back out the port it arrived on (e.g. an ICMP echo reply).
    Reflect,
}

/// A packet-processing network function.
pub trait VnfApp: Send {
    /// Application name (diagnostics).
    fn name(&self) -> &str;

    /// Processes one packet arriving on port index `in_port_idx`
    /// (0 or 1 for a two-port VM).
    fn process(&mut self, pkt: &mut Mbuf, in_port_idx: usize) -> Verdict;
}

/// The paper's test application: moves packets from one port to the other,
/// touching one payload byte so the work is not optimised away (a real
/// forwarder at least reads the frame).
#[derive(Debug, Default)]
pub struct L2Forwarder {
    /// Packets forwarded.
    pub forwarded: u64,
}

impl L2Forwarder {
    /// Creates the forwarder.
    pub fn new() -> L2Forwarder {
        L2Forwarder::default()
    }
}

impl VnfApp for L2Forwarder {
    fn name(&self) -> &str {
        "l2fwd"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        // Read — don't write — the last payload byte: a real forwarder at
        // least reads the frame, but a write would copy-on-write shared
        // arena slots and take the packet off the zero-copy highway.
        std::hint::black_box(pkt.data().last().copied());
        self.forwarded += 1;
        Verdict::Forward
    }
}

/// One firewall rule: optional 5-tuple constraints plus a verdict.
#[derive(Debug, Clone, Copy)]
pub struct FirewallRule {
    pub src: Option<Ipv4Addr>,
    pub dst: Option<Ipv4Addr>,
    pub proto: Option<IpProtocol>,
    pub l4_src: Option<u16>,
    pub l4_dst: Option<u16>,
    pub allow: bool,
}

impl FirewallRule {
    /// A rule matching everything (useful as default-deny/allow tail).
    pub fn any(allow: bool) -> FirewallRule {
        FirewallRule {
            src: None,
            dst: None,
            proto: None,
            l4_src: None,
            l4_dst: None,
            allow,
        }
    }

    /// Deny traffic to a destination L4 port.
    pub fn deny_dst_port(port: u16) -> FirewallRule {
        FirewallRule {
            l4_dst: Some(port),
            ..FirewallRule::any(false)
        }
    }

    fn matches(&self, key: &FlowKey) -> bool {
        self.src.map(|a| a == key.ipv4_src).unwrap_or(true)
            && self.dst.map(|a| a == key.ipv4_dst).unwrap_or(true)
            && self
                .proto
                .map(|p| p.to_u8() == key.ip_proto)
                .unwrap_or(true)
            && self.l4_src.map(|p| p == key.l4_src).unwrap_or(true)
            && self.l4_dst.map(|p| p == key.l4_dst).unwrap_or(true)
    }
}

/// A stateless first-match firewall; unmatched traffic is allowed.
#[derive(Debug, Default)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
    /// Packets allowed through.
    pub allowed: u64,
    /// Packets dropped by a deny rule.
    pub denied: u64,
}

impl Firewall {
    /// Creates a firewall with the given ruleset.
    pub fn new(rules: Vec<FirewallRule>) -> Firewall {
        Firewall {
            rules,
            allowed: 0,
            denied: 0,
        }
    }
}

impl VnfApp for Firewall {
    fn name(&self) -> &str {
        "firewall"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        for rule in &self.rules {
            if rule.matches(&key) {
                return if rule.allow {
                    self.allowed += 1;
                    Verdict::Forward
                } else {
                    self.denied += 1;
                    Verdict::Drop
                };
            }
        }
        self.allowed += 1;
        Verdict::Forward
    }
}

/// Per-flow packet/byte accounting, like the paper's network monitor VNF.
#[derive(Debug, Default)]
pub struct NetworkMonitor {
    flows: HashMap<FlowKey, (u64, u64)>,
    /// Total packets observed.
    pub observed: u64,
}

impl NetworkMonitor {
    /// Creates an empty monitor.
    pub fn new() -> NetworkMonitor {
        NetworkMonitor::default()
    }

    /// Number of distinct flows observed.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Counters for one flow.
    pub fn flow(&self, key: &FlowKey) -> Option<(u64, u64)> {
        self.flows.get(key).copied()
    }

    /// The `n` heaviest flows by bytes, descending.
    pub fn top_flows(&self, n: usize) -> Vec<(FlowKey, (u64, u64))> {
        let mut v: Vec<_> = self.flows.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1 .1));
        v.truncate(n);
        v
    }
}

impl VnfApp for NetworkMonitor {
    fn name(&self) -> &str {
        "monitor"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        let entry = self.flows.entry(key).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += pkt.len() as u64;
        self.observed += 1;
        Verdict::Forward
    }
}

/// A toy web cache: classifies TCP port-80 traffic, remembers request URIs
/// and counts repeat requests as hits. (The real VNF would answer hits
/// locally; for the reproduction the interesting part is that web traffic
/// takes a different logical path, per the paper's Figure 1.)
#[derive(Debug, Default)]
pub struct WebCache {
    seen: HashMap<u64, u64>,
    /// HTTP requests that hit the cache.
    pub hits: u64,
    /// HTTP requests that missed.
    pub misses: u64,
    /// Non-web packets passed through untouched.
    pub passthrough: u64,
}

impl WebCache {
    /// Creates an empty cache.
    pub fn new() -> WebCache {
        WebCache::default()
    }

    fn uri_hash(payload: &[u8]) -> Option<u64> {
        if !payload.starts_with(b"GET ") {
            return None;
        }
        let rest = &payload[4..];
        let end = rest.iter().position(|&b| b == b' ')?;
        let uri = &rest[..end];
        // FNV-1a, enough to key a toy cache.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in uri {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Some(h)
    }
}

impl VnfApp for WebCache {
    fn name(&self) -> &str {
        "webcache"
    }

    fn process(&mut self, pkt: &mut Mbuf, _in_port_idx: usize) -> Verdict {
        let key = FlowKey::extract(pkt.data());
        if key.ip_proto != IpProtocol::Tcp.to_u8() || (key.l4_dst != 80 && key.l4_src != 80) {
            self.passthrough += 1;
            return Verdict::Forward;
        }
        // Locate the TCP payload.
        let l3 = &pkt.data()[key.l3_offset()..];
        let Ok(ip) = packet_wire::Ipv4Packet::new_checked(l3) else {
            self.passthrough += 1;
            return Verdict::Forward;
        };
        let Ok(tcp) = packet_wire::TcpSegment::new_checked(ip.payload()) else {
            self.passthrough += 1;
            return Verdict::Forward;
        };
        match Self::uri_hash(tcp.payload()) {
            Some(h) => {
                let count = self.seen.entry(h).or_insert(0);
                *count += 1;
                if *count > 1 {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
            }
            None => self.passthrough += 1,
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet_wire::{checksum, EthernetFrame, Ipv4Packet, MacAddr, PacketBuilder};

    fn probe(dst_port: u16) -> Mbuf {
        Mbuf::from_slice(&PacketBuilder::udp_probe(64).ports(1000, dst_port).build())
    }

    #[test]
    fn forwarder_forwards_everything() {
        let mut app = L2Forwarder::new();
        for _ in 0..10 {
            assert_eq!(app.process(&mut probe(1), 0), Verdict::Forward);
        }
        assert_eq!(app.forwarded, 10);
    }

    #[test]
    fn firewall_first_match_wins() {
        let mut fw = Firewall::new(vec![
            FirewallRule::deny_dst_port(23),
            FirewallRule::any(true),
        ]);
        assert_eq!(fw.process(&mut probe(80), 0), Verdict::Forward);
        assert_eq!(fw.process(&mut probe(23), 0), Verdict::Drop);
        assert_eq!((fw.allowed, fw.denied), (1, 1));
    }

    #[test]
    fn firewall_default_allows() {
        let mut fw = Firewall::new(vec![]);
        assert_eq!(fw.process(&mut probe(23), 0), Verdict::Forward);
        assert_eq!(fw.allowed, 1);
    }

    #[test]
    fn monitor_accounts_per_flow() {
        let mut mon = NetworkMonitor::new();
        for _ in 0..3 {
            mon.process(&mut probe(80), 0);
        }
        mon.process(&mut probe(81), 0);
        assert_eq!(mon.flow_count(), 2);
        assert_eq!(mon.observed, 4);
        let key = FlowKey::extract(probe(80).data());
        assert_eq!(mon.flow(&key), Some((3, 192)));
        let top = mon.top_flows(1);
        assert_eq!(top[0].1 .0, 3);
    }

    /// Builds a minimal TCP GET packet to port 80.
    fn http_get(uri: &str) -> Mbuf {
        let payload = format!("GET {uri} HTTP/1.1\r\n\r\n");
        let tcp_len = 20 + payload.len();
        let ip_len = 20 + tcp_len;
        let total = 14 + ip_len;
        let mut buf = vec![0u8; total];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_src_addr(MacAddr::local(1));
            eth.set_dst_addr(MacAddr::local(2));
            eth.set_ethertype(packet_wire::EtherType::Ipv4);
        }
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[14..]);
            ip.set_version_and_header_len(20);
            ip.set_total_len(ip_len as u16);
            ip.set_ttl(64);
            ip.set_protocol(IpProtocol::Tcp);
            ip.set_src_addr(Ipv4Addr::new(10, 0, 0, 1));
            ip.set_dst_addr(Ipv4Addr::new(10, 0, 0, 2));
            ip.set_flags_frag(0x4000);
            ip.fill_checksum();
        }
        {
            let mut tcp = packet_wire::TcpSegment::new_unchecked(&mut buf[34..]);
            tcp.set_src_port(49152);
            tcp.set_dst_port(80);
            tcp.set_header_len(20);
            tcp.set_flags(packet_wire::tcp::TcpFlags(packet_wire::tcp::TcpFlags::PSH));
            buf[34 + 20..].copy_from_slice(payload.as_bytes());
        }
        let _ = checksum::checksum(&[]); // keep import used
        Mbuf::from_slice(&buf)
    }

    #[test]
    fn webcache_hits_on_repeat_uri() {
        let mut cache = WebCache::new();
        assert_eq!(
            cache.process(&mut http_get("/index.html"), 0),
            Verdict::Forward
        );
        assert_eq!(
            cache.process(&mut http_get("/index.html"), 0),
            Verdict::Forward
        );
        assert_eq!(cache.process(&mut http_get("/other"), 0), Verdict::Forward);
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }

    #[test]
    fn webcache_passes_non_web_traffic() {
        let mut cache = WebCache::new();
        cache.process(&mut probe(53), 0);
        assert_eq!(cache.passthrough, 1);
        assert_eq!((cache.hits, cache.misses), (0, 0));
    }
}
