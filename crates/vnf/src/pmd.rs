//! The modified dpdkr poll-mode driver.
//!
//! One `DpdkrPmd` instance drives one logical dpdkr port inside a guest.
//! It owns the *normal* channel end (peer: the vSwitch) and, when a bypass
//! is set up, additionally the *bypass* channel end (peer: another VM's
//! PMD). The application above it keeps calling plain `rx_burst`/`tx_burst`
//! — it cannot observe which channel its packets take, which is the paper's
//! transparency-towards-the-VNF property.

use dpdk_sim::{Arena, Mbuf};
use shmem_sim::{ChannelEnd, CounterCell, PortDir, StatsRegion};
use std::sync::Arc;

/// Transmit-side bypass state: where to count what we send.
struct BypassTxAccounting {
    rule_cell: Arc<CounterCell>,
    /// rx-at-switch counters of *this* port.
    self_rx_cell: Arc<CounterCell>,
    /// tx-at-switch counters of the *peer* port.
    peer_tx_cell: Arc<CounterCell>,
}

/// The modified guest PMD for one dpdkr port.
pub struct DpdkrPmd {
    of_port: u32,
    normal: ChannelEnd,
    bypass: Option<ChannelEnd>,
    /// Guest mapping of the host packet arena (a consumer view), when the
    /// compute agent has plugged one.
    arena: Option<Arena>,
    tx_accounting: Option<BypassTxAccounting>,
    rx_active: bool,
    stats: StatsRegion,
    /// Packets sent via the bypass channel since creation.
    pub bypassed_tx: u64,
    /// Packets sent via the normal channel since creation.
    pub normal_tx: u64,
    /// Packets dropped because the active tx ring was full.
    pub tx_drops: u64,
}

impl DpdkrPmd {
    /// Creates the PMD over the normal channel only (how every port starts).
    pub fn new(of_port: u32, normal: ChannelEnd, stats: StatsRegion) -> DpdkrPmd {
        DpdkrPmd {
            of_port,
            normal,
            bypass: None,
            arena: None,
            tx_accounting: None,
            rx_active: false,
            stats,
            bypassed_tx: 0,
            normal_tx: 0,
            tx_drops: 0,
        }
    }

    /// This port's OpenFlow number.
    pub fn of_port(&self) -> u32 {
        self.of_port
    }

    /// True when a bypass channel is mapped.
    pub fn bypass_mapped(&self) -> bool {
        self.bypass.is_some()
    }

    /// True when transmit currently uses the bypass.
    pub fn bypass_tx_active(&self) -> bool {
        self.tx_accounting.is_some()
    }

    /// True when receive currently polls the bypass.
    pub fn bypass_rx_active(&self) -> bool {
        self.rx_active
    }

    // ---- control operations (driven by the guest runner) ----

    /// Maps a bypass channel end (directions stay disabled).
    pub fn map_bypass(&mut self, end: ChannelEnd) {
        assert!(self.bypass.is_none(), "bypass already mapped");
        self.bypass = Some(end);
    }

    /// Installs the guest's mapping of the host packet arena. Idempotent:
    /// re-plugging the same segment just replaces the handle.
    pub fn set_arena(&mut self, arena: Arena) {
        self.arena = Some(arena);
    }

    /// The mapped packet arena, if any.
    pub fn arena(&self) -> Option<&Arena> {
        self.arena.as_ref()
    }

    /// Allocates a transmit buffer for application-originated packets:
    /// from the mapped arena when one is present (so the packet rides the
    /// rings as an offset descriptor), falling back to a heap mbuf when
    /// the arena is absent or exhausted.
    pub fn alloc_tx(&self, payload: &[u8]) -> Mbuf {
        if let Some(arena) = &self.arena {
            if let Some(am) = arena.alloc_from(payload) {
                return Mbuf::from_arena(am);
            }
        }
        Mbuf::from_slice(payload)
    }

    /// Enables bypass transmit with the given stats accounting.
    /// Returns false if no bypass is mapped.
    pub fn enable_tx(&mut self, rule_cookie: u64, peer_port: u32) -> bool {
        if self.bypass.is_none() {
            return false;
        }
        self.tx_accounting = Some(BypassTxAccounting {
            rule_cell: self.stats.rule_cell(rule_cookie),
            self_rx_cell: self.stats.port_cell(self.of_port, PortDir::Rx),
            peer_tx_cell: self.stats.port_cell(peer_port, PortDir::Tx),
        });
        true
    }

    /// Enables bypass receive. Returns false if no bypass is mapped.
    pub fn enable_rx(&mut self) -> bool {
        if self.bypass.is_none() {
            return false;
        }
        self.rx_active = true;
        true
    }

    /// Disables bypass transmit; subsequent packets take the normal channel.
    pub fn disable_tx(&mut self) {
        self.tx_accounting = None;
    }

    /// Drains the bypass receive ring completely (the peer has already
    /// stopped transmitting) into `out`, then stops polling it.
    /// Returns how many packets were drained.
    pub fn disable_rx_drain(&mut self, out: &mut Vec<Mbuf>) -> u64 {
        let mut drained = 0;
        if let Some(bypass) = self.bypass.as_mut() {
            while let Some(m) = bypass.recv() {
                out.push(m);
                drained += 1;
            }
        }
        self.rx_active = false;
        drained
    }

    /// Drops the bypass channel end. Panics if a direction is still active
    /// (the agent's teardown sequence disables both first).
    pub fn unmap_bypass(&mut self) {
        assert!(
            self.tx_accounting.is_none() && !self.rx_active,
            "unmap with active bypass direction"
        );
        self.bypass = None;
    }

    // ---- data path ----

    /// Receives up to `max` packets. Polls the bypass first (when active),
    /// then always the normal channel, so controller packet-outs and
    /// pre-bypass in-flight packets are never starved.
    pub fn rx_burst(&mut self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let mut got = 0;
        if self.rx_active {
            if let Some(bypass) = self.bypass.as_mut() {
                got += bypass.recv_burst(out, max);
            }
        }
        if got < max {
            got += self.normal.recv_burst(out, max - got);
        }
        got
    }

    /// Transmits packets, draining accepted ones from the front of `pkts`;
    /// packets that do not fit the active ring are dropped (and counted),
    /// like a DPDK application freeing unsent mbufs.
    pub fn tx_burst(&mut self, pkts: &mut Vec<Mbuf>) -> usize {
        let total = pkts.len();
        let sent = match (&mut self.bypass, &self.tx_accounting) {
            (Some(bypass), Some(acct)) => {
                let bytes_before: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                let n = bypass.send_burst(pkts);
                let bytes_after: u64 = pkts.iter().map(|m| m.len() as u64).sum();
                let bytes = bytes_before - bytes_after;
                // The vSwitch never sees these packets: account them in the
                // shared region so its statistics stay truthful.
                acct.rule_cell.add(n as u64, bytes);
                acct.self_rx_cell.add(n as u64, bytes);
                acct.peer_tx_cell.add(n as u64, bytes);
                self.bypassed_tx += n as u64;
                n
            }
            _ => {
                let n = self.normal.send_burst(pkts);
                self.normal_tx += n as u64;
                n
            }
        };
        let unsent = total - sent;
        if unsent > 0 {
            self.tx_drops += unsent as u64;
            pkts.clear();
        }
        sent
    }

    /// Packets waiting on the normal channel (diagnostics).
    pub fn normal_pending_rx(&self) -> usize {
        self.normal.pending_rx()
    }
}

impl std::fmt::Debug for DpdkrPmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpdkrPmd")
            .field("of_port", &self.of_port)
            .field("bypass_mapped", &self.bypass_mapped())
            .field("tx_active", &self.bypass_tx_active())
            .field("rx_active", &self.rx_active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem_sim::channel;

    fn pkt(n: usize) -> Mbuf {
        Mbuf::from_slice(&vec![0xabu8; n])
    }

    /// Normal-only PMD plus the switch-side channel end.
    fn pmd_with_switch() -> (DpdkrPmd, ChannelEnd, StatsRegion) {
        let stats = StatsRegion::new();
        let (vm_end, sw_end) = channel("dpdkr1", 16);
        (DpdkrPmd::new(1, vm_end, stats.clone()), sw_end, stats)
    }

    #[test]
    fn starts_on_normal_channel() {
        let (mut pmd, mut sw, _stats) = pmd_with_switch();
        let mut out = vec![pkt(64)];
        assert_eq!(pmd.tx_burst(&mut out), 1);
        assert_eq!(pmd.normal_tx, 1);
        assert_eq!(pmd.bypassed_tx, 0);
        assert_eq!(sw.recv().unwrap().len(), 64);

        sw.send(pkt(60)).unwrap();
        let mut rx = Vec::new();
        assert_eq!(pmd.rx_burst(&mut rx, 32), 1);
        assert_eq!(rx[0].len(), 60);
    }

    #[test]
    fn bypass_tx_switches_channel_and_counts() {
        let (mut pmd, mut sw, stats) = pmd_with_switch();
        let (by_here, mut by_peer) = channel("bypass", 16);
        pmd.map_bypass(by_here);
        assert!(pmd.enable_tx(0xc0de, 2));

        let mut out = vec![pkt(64), pkt(64)];
        pmd.tx_burst(&mut out);
        // Packets went to the peer VM, not the switch.
        assert!(sw.recv().is_none());
        assert_eq!(by_peer.recv().unwrap().len(), 64);
        assert_eq!(by_peer.recv().unwrap().len(), 64);
        assert_eq!(pmd.bypassed_tx, 2);
        // Shared stats carry rule + both port directions.
        assert_eq!(stats.rule_totals(0xc0de), (2, 128));
        assert_eq!(stats.port_totals(1, PortDir::Rx), (2, 128));
        assert_eq!(stats.port_totals(2, PortDir::Tx), (2, 128));
    }

    #[test]
    fn rx_polls_bypass_first_but_never_starves_normal() {
        let (mut pmd, mut sw, _stats) = pmd_with_switch();
        let (by_here, mut by_peer) = channel("bypass", 16);
        pmd.map_bypass(by_here);
        assert!(pmd.enable_rx());

        by_peer.send(pkt(10)).unwrap();
        sw.send(pkt(20)).unwrap(); // e.g. a controller packet-out
        let mut rx = Vec::new();
        assert_eq!(pmd.rx_burst(&mut rx, 32), 2);
        assert_eq!(rx[0].len(), 10); // bypass first
        assert_eq!(rx[1].len(), 20); // normal still drained
    }

    #[test]
    fn enable_without_map_fails() {
        let (mut pmd, _sw, _stats) = pmd_with_switch();
        assert!(!pmd.enable_tx(1, 2));
        assert!(!pmd.enable_rx());
    }

    #[test]
    fn disable_tx_falls_back_to_normal() {
        let (mut pmd, mut sw, _stats) = pmd_with_switch();
        let (by_here, _by_peer) = channel("bypass", 16);
        pmd.map_bypass(by_here);
        pmd.enable_tx(1, 2);
        pmd.disable_tx();
        let mut out = vec![pkt(64)];
        pmd.tx_burst(&mut out);
        assert_eq!(sw.recv().unwrap().len(), 64);
        assert_eq!(pmd.bypassed_tx, 0);
    }

    #[test]
    fn drain_collects_in_flight_packets() {
        let (mut pmd, _sw, _stats) = pmd_with_switch();
        let (by_here, mut by_peer) = channel("bypass", 16);
        pmd.map_bypass(by_here);
        pmd.enable_rx();
        for _ in 0..5 {
            by_peer.send(pkt(64)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(pmd.disable_rx_drain(&mut out), 5);
        assert_eq!(out.len(), 5);
        assert!(!pmd.bypass_rx_active());
        pmd.unmap_bypass();
        assert!(!pmd.bypass_mapped());
    }

    #[test]
    #[should_panic(expected = "active bypass direction")]
    fn unmap_with_active_direction_panics() {
        let (mut pmd, _sw, _stats) = pmd_with_switch();
        let (by_here, _peer) = channel("bypass", 16);
        pmd.map_bypass(by_here);
        pmd.enable_rx();
        pmd.unmap_bypass();
    }

    #[test]
    fn alloc_tx_prefers_the_arena_and_falls_back_to_heap() {
        let (mut pmd, _sw, _stats) = pmd_with_switch();
        // No arena yet: heap mbuf.
        assert!(!pmd.alloc_tx(&[1, 2, 3]).is_arena());
        let host = dpdk_sim::Arena::new("pmd-arena", 1, 256);
        pmd.set_arena(host.consumer());
        let m = pmd.alloc_tx(&[4, 5]);
        assert!(m.is_arena());
        assert_eq!(m.data(), &[4, 5]);
        // Arena exhausted (single slot held by `m`): heap fallback.
        assert!(!pmd.alloc_tx(&[6]).is_arena());
        drop(m);
        assert_eq!(host.credit_pending(), 1, "guest free takes the credit ring");
    }

    #[test]
    fn full_ring_drops_are_counted() {
        let stats = StatsRegion::new();
        let (vm_end, _sw_end) = channel("dpdkr1", 2);
        let mut pmd = DpdkrPmd::new(1, vm_end, stats);
        let mut out: Vec<Mbuf> = (0..5).map(|_| pkt(64)).collect();
        pmd.tx_burst(&mut out);
        assert!(out.is_empty());
        assert_eq!(pmd.normal_tx, 2);
        assert_eq!(pmd.tx_drops, 3);
    }
}
