//! # vm-host
//!
//! The host-side machinery around the VMs:
//!
//! * [`vm`] — a KVM/QEMU-style VM: a device board for hot-plugged ivshmem
//!   devices, a virtio-serial control channel, and a vCPU thread running the
//!   guest [`vnf_apps::VnfRunner`].
//! * [`latency`] — the latency model for QEMU device hot-plug and
//!   virtio-serial round-trips. The paper reports ≈100 ms from p-2-p rule
//!   detection to an active bypass; essentially all of it is these control
//!   operations, so they carry calibrated (and jittered) delays that the
//!   setup-time experiment measures end-to-end.
//! * [`agent`] — the **modified compute agent**: receives bypass requests
//!   from the vSwitch side, creates the shared segment, hot-plugs it into
//!   both VMs, reconfigures both PMDs over virtio-serial, and reverses all
//!   of it on teardown.
//! * [`orchestrator`] — deploys service graphs: creates VMs with dpdkr
//!   ports on a switch, launches guest applications and installs the
//!   traffic-steering rules.

pub mod agent;
pub mod faults;
pub mod latency;
pub mod orchestrator;
pub mod vm;

pub use agent::{AgentError, ComputeAgent, SetupReport, TeardownReport};
pub use faults::{FaultOp, FaultPlan};
pub use latency::LatencyModel;
pub use orchestrator::{
    AppKind, ChainDeployment, GraphDeployment, GraphEdgeSpec, GraphPort, GraphSpec, Orchestrator,
    VnfSpec,
};
pub use vm::Vm;
