//! The modified compute agent.
//!
//! In the paper, OVS cannot plug memory into VMs itself — "the vSwitch has
//! to rely on an external component". The compute agent is that component:
//! on a bypass request it (i) allocates the shared segment, (ii) hot-plugs
//! one ivshmem device per VM via QEMU, and (iii) reconfigures both guest
//! PMDs over virtio-serial, acking back when the bypass is live. Teardown
//! runs the sequence in reverse, *losslessly*: the sender stops first, the
//! receiver drains, only then is the memory unplugged.
//!
//! Directions are reference-counted per port pair: the first direction of a
//! pair creates the segment, the second (reverse) direction reuses it — the
//! "pair of dpdkr bypass channels mapped on the same piece of memory" of §2.
//!
//! ## Failure atomicity
//!
//! Every hypervisor operation consults the agent's [`FaultPlan`], so tests
//! can fail any `device_add`/`device_del`/serial round-trip on demand. The
//! contract under failure:
//!
//! * a failed **setup** rolls back completely — devices unplugged, guest
//!   PMDs unmapped, the fresh segment released — unless the pair carries
//!   another live direction, in which case only this direction's partial
//!   state is reverted;
//! * a failed **teardown** continues best-effort (the guest's `UnmapBypass`
//!   handler sanitises its own PMD state), always releases host-side state,
//!   and reports the collected errors.

use crate::faults::{FaultOp, FaultPlan};
use crate::latency::LatencyModel;
use crate::vm::{Vm, VmError};
use parking_lot::Mutex;
use shmem_sim::{ChannelEnd, SegmentKind, ShmRegistry, DEFAULT_RING_DEPTH};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;
use vnf_apps::PmdCtrl;

/// Errors from bypass setup/teardown.
#[derive(Debug)]
pub enum AgentError {
    /// No VM owns this OpenFlow port.
    UnknownPort(u32),
    /// Both endpoints of a bypass must be dpdkr ports of *different* VMs.
    SameVm(u32, u32),
    /// The direction is already set up / not set up.
    BadState(String),
    /// A guest control operation failed.
    Vm(VmError),
    /// A hypervisor operation failed (QEMU error, injected fault).
    Hypervisor(String),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::UnknownPort(p) => write!(f, "no VM registered for port {p}"),
            AgentError::SameVm(a, b) => write!(f, "ports {a} and {b} belong to the same VM"),
            AgentError::BadState(s) => write!(f, "bad bypass state: {s}"),
            AgentError::Vm(e) => write!(f, "guest control failed: {e}"),
            AgentError::Hypervisor(s) => write!(f, "hypervisor operation failed: {s}"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<VmError> for AgentError {
    fn from(e: VmError) -> Self {
        AgentError::Vm(e)
    }
}

/// What a completed setup did (observability for tests and experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupReport {
    pub segment: String,
    /// True when this call created the segment (first direction of a pair).
    pub created_segment: bool,
    pub src_port: u32,
    pub dst_port: u32,
}

/// What a completed teardown did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeardownReport {
    pub segment: String,
    /// True when the segment was released (last direction of the pair).
    pub released_segment: bool,
    /// Packets drained from the receiver's bypass ring.
    pub drained: u64,
}

struct PairState {
    segment: String,
    /// Ports whose PMD has mapped its channel end.
    mapped: HashSet<u32>,
    /// Active directions as (src, dst).
    directions: HashSet<(u32, u32)>,
}

/// The compute agent.
pub struct ComputeAgent {
    registry: ShmRegistry,
    latency: LatencyModel,
    faults: Arc<FaultPlan>,
    vms_by_port: Mutex<HashMap<u32, Arc<Vm>>>,
    pairs: Mutex<HashMap<(u32, u32), PairState>>,
    /// Called after every (un)registration, outside the agent's locks.
    /// The highway manager hooks in here to re-evaluate links that were
    /// deferred because an endpoint had no VM yet.
    registration_hooks: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
    ctrl_timeout: Duration,
}

fn pair_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

impl ComputeAgent {
    /// Creates the agent over the host's segment registry.
    pub fn new(registry: ShmRegistry, latency: LatencyModel) -> ComputeAgent {
        ComputeAgent::with_faults(registry, latency, FaultPlan::none())
    }

    /// Creates the agent with a fault-injection plan (tests, examples).
    pub fn with_faults(
        registry: ShmRegistry,
        latency: LatencyModel,
        faults: Arc<FaultPlan>,
    ) -> ComputeAgent {
        ComputeAgent {
            registry,
            latency,
            faults,
            vms_by_port: Mutex::new(HashMap::new()),
            pairs: Mutex::new(HashMap::new()),
            registration_hooks: Mutex::new(Vec::new()),
            ctrl_timeout: Duration::from_secs(10),
        }
    }

    /// The agent's fault plan (arm failures through this handle).
    pub fn faults(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    /// One QEMU `device_add`, subject to fault injection.
    fn plug(&self, vm: &Arc<Vm>, segment: &str, end: ChannelEnd) -> Result<(), AgentError> {
        self.latency.sleep_plug();
        if self.faults.should_fail(FaultOp::Plug) {
            return Err(AgentError::Hypervisor(format!(
                "device_add {segment} into {} failed (injected)",
                vm.name()
            )));
        }
        vm.plug_device(segment, end);
        Ok(())
    }

    /// One QEMU `device_del`, subject to fault injection.
    fn unplug(&self, vm: &Arc<Vm>, segment: &str) -> Result<(), AgentError> {
        self.latency.sleep_unplug();
        if self.faults.should_fail(FaultOp::Unplug) {
            return Err(AgentError::Hypervisor(format!(
                "device_del {segment} from {} failed (injected)",
                vm.name()
            )));
        }
        vm.unplug_device(segment);
        Ok(())
    }

    /// One PMD control round-trip, subject to fault injection.
    fn guest_request(&self, vm: &Arc<Vm>, msg: PmdCtrl) -> Result<vnf_apps::PmdAck, AgentError> {
        self.latency.sleep_serial();
        if self.faults.should_fail(FaultOp::Serial) {
            return Err(AgentError::Hypervisor(format!(
                "virtio-serial to {} failed (injected): {msg:?}",
                vm.name()
            )));
        }
        vm.request(msg, self.ctrl_timeout).map_err(AgentError::from)
    }

    /// Registers a VM so its ports can participate in bypasses.
    pub fn register_vm(&self, vm: Arc<Vm>) {
        {
            let mut map = self.vms_by_port.lock();
            for p in vm.of_ports() {
                map.insert(*p, Arc::clone(&vm));
            }
        }
        self.run_registration_hooks();
    }

    /// Unregisters a VM (e.g. on destruction).
    pub fn unregister_vm(&self, vm: &Vm) {
        {
            let mut map = self.vms_by_port.lock();
            for p in vm.of_ports() {
                map.remove(p);
            }
        }
        self.run_registration_hooks();
    }

    /// True when some registered VM owns this OpenFlow port. Only such
    /// ports can terminate a bypass — there is a guest PMD to reconfigure.
    pub fn has_port(&self, port: u32) -> bool {
        self.vms_by_port.lock().contains_key(&port)
    }

    /// Adds a callback invoked after every VM (un)registration, outside
    /// the agent's locks.
    pub fn on_registration(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.registration_hooks.lock().push(Arc::new(hook));
    }

    fn run_registration_hooks(&self) {
        // Snapshot under the lock, invoke outside it: a hook may re-enter
        // the agent (register another VM, query ports) without deadlocking.
        let hooks: Vec<_> = self.registration_hooks.lock().clone();
        for hook in hooks {
            hook();
        }
    }

    fn vm_for(&self, port: u32) -> Result<Arc<Vm>, AgentError> {
        self.vms_by_port
            .lock()
            .get(&port)
            .cloned()
            .ok_or(AgentError::UnknownPort(port))
    }

    /// Number of port pairs with at least one live bypass direction.
    pub fn live_pairs(&self) -> usize {
        self.pairs.lock().len()
    }

    /// Sets up the bypass direction `src_port → dst_port` for the rule with
    /// `rule_cookie`. Reuses the pair's segment when the reverse direction
    /// already exists. On failure, everything this call changed is rolled
    /// back (see the module docs on failure atomicity).
    pub fn setup_bypass(
        &self,
        src_port: u32,
        dst_port: u32,
        rule_cookie: u64,
    ) -> Result<SetupReport, AgentError> {
        let src_vm = self.vm_for(src_port)?;
        let dst_vm = self.vm_for(dst_port)?;
        if src_vm.name() == dst_vm.name() {
            return Err(AgentError::SameVm(src_port, dst_port));
        }
        let key = pair_key(src_port, dst_port);
        let mut pairs = self.pairs.lock();
        let mut created = false;

        if let Some(state) = pairs.get(&key) {
            if state.directions.contains(&(src_port, dst_port)) {
                return Err(AgentError::BadState(format!(
                    "direction {src_port}->{dst_port} already active"
                )));
            }
        }

        // Phase 1: segment + hot-plug into both VMs (only for a fresh
        // pair). A failed second plug unwinds the first.
        if let std::collections::hash_map::Entry::Vacant(slot) = pairs.entry(key) {
            let segment = format!("bypass-{}-{}", key.0, key.1);
            let (end_low, end_high) =
                self.registry
                    .create_channel(&segment, SegmentKind::Bypass, DEFAULT_RING_DEPTH);
            let (low_vm, high_vm) = (self.vm_for(key.0)?, self.vm_for(key.1)?);
            // Map the host packet arena into both VMs before the channel:
            // descriptors must resolve the moment the bypass goes live.
            // Idempotent per VM, and it survives pair teardown (the arena
            // is host-wide, not per-bypass).
            let arena = self.registry.hugepage_arena();
            low_vm.plug_arena(&arena);
            high_vm.plug_arena(&arena);
            if let Err(e) = self.plug(&low_vm, &segment, end_low) {
                self.registry.release(&segment);
                return Err(e);
            }
            if let Err(e) = self.plug(&high_vm, &segment, end_high) {
                let _ = self.unplug(&low_vm, &segment);
                self.registry.release(&segment);
                return Err(e);
            }
            slot.insert(PairState {
                segment,
                mapped: HashSet::new(),
                directions: HashSet::new(),
            });
            created = true;
        }
        let segment = pairs.get(&key).expect("just ensured").segment.clone();

        // Phases 2–3 with rollback on failure.
        match self.activate_direction(&mut pairs, key, &segment, src_port, dst_port, rule_cookie) {
            Ok(()) => Ok(SetupReport {
                segment,
                created_segment: created,
                src_port,
                dst_port,
            }),
            Err(e) => {
                // Dismantle the pair entirely if this call created it (or
                // nothing else uses it); otherwise leave the healthy
                // reverse direction alone.
                let dismantle = pairs
                    .get(&key)
                    .map(|s| s.directions.is_empty())
                    .unwrap_or(false);
                if dismantle {
                    self.dismantle_pair(&mut pairs, key);
                }
                Err(e)
            }
        }
    }

    /// Phases 2–3 of setup: map both endpoints, enable receive then
    /// transmit. On failure, reverts the partial direction state (a
    /// half-enabled receiver is drained and disabled) but leaves pair
    /// membership to the caller.
    fn activate_direction(
        &self,
        pairs: &mut HashMap<(u32, u32), PairState>,
        key: (u32, u32),
        segment: &str,
        src_port: u32,
        dst_port: u32,
        rule_cookie: u64,
    ) -> Result<(), AgentError> {
        let src_vm = self.vm_for(src_port)?;
        let dst_vm = self.vm_for(dst_port)?;

        // Phase 2: each endpoint maps its channel end once per pair.
        for port in [src_port, dst_port] {
            let state = pairs.get_mut(&key).expect("pair exists");
            if state.mapped.contains(&port) {
                continue;
            }
            let vm = self.vm_for(port)?;
            self.guest_request(
                &vm,
                PmdCtrl::MapBypass {
                    seq: 0,
                    of_port: port,
                    segment: segment.to_string(),
                },
            )?;
            pairs
                .get_mut(&key)
                .expect("pair exists")
                .mapped
                .insert(port);
        }

        // Phase 3: receiver first (so nothing sits unpolled), then sender.
        self.guest_request(
            &dst_vm,
            PmdCtrl::EnableRx {
                seq: 0,
                of_port: dst_port,
            },
        )?;
        if let Err(e) = self.guest_request(
            &src_vm,
            PmdCtrl::EnableTx {
                seq: 0,
                of_port: src_port,
                rule_cookie,
                peer_port: dst_port,
            },
        ) {
            // Revert the half-enabled receiver (best-effort).
            let _ = self.guest_request(
                &dst_vm,
                PmdCtrl::DisableRxDrain {
                    seq: 0,
                    of_port: dst_port,
                },
            );
            return Err(e);
        }
        pairs
            .get_mut(&key)
            .expect("pair exists")
            .directions
            .insert((src_port, dst_port));
        Ok(())
    }

    /// Unmaps, unplugs and releases a pair with no live directions.
    /// Best-effort: the guest `UnmapBypass` handler sanitises its own PMD,
    /// and a failed `device_del` leaves the device behind (like QEMU
    /// keeping guest-mapped memory alive) while host state is still freed.
    ///
    /// Note the asymmetry: only *mapped* ports get an `UnmapBypass`, but
    /// *both* endpoints get a `device_del` — hot-plug happens for the pair
    /// up front, mapping happens per port, and a rollback can interleave.
    fn dismantle_pair(&self, pairs: &mut HashMap<(u32, u32), PairState>, key: (u32, u32)) {
        let Some(mut state) = pairs.remove(&key) else {
            return;
        };
        for port in state.mapped.drain() {
            let Ok(vm) = self.vm_for(port) else { continue };
            let _ = self.guest_request(
                &vm,
                PmdCtrl::UnmapBypass {
                    seq: 0,
                    of_port: port,
                },
            );
        }
        for port in [key.0, key.1] {
            let Ok(vm) = self.vm_for(port) else { continue };
            if vm.plugged_devices().iter().any(|d| d == &state.segment) {
                let _ = self.unplug(&vm, &state.segment);
            }
        }
        self.registry.release(&state.segment);
    }

    /// Tears down the bypass direction `src_port → dst_port` losslessly.
    /// Releases the segment when no direction of the pair remains.
    ///
    /// Teardown is best-effort under failure: host-side state is always
    /// cleaned (no leaked segments, no stuck pair entries); collected
    /// errors are reported after the fact.
    pub fn teardown_bypass(
        &self,
        src_port: u32,
        dst_port: u32,
    ) -> Result<TeardownReport, AgentError> {
        let src_vm = self.vm_for(src_port)?;
        let dst_vm = self.vm_for(dst_port)?;
        let key = pair_key(src_port, dst_port);
        let mut pairs = self.pairs.lock();
        let state = pairs.get_mut(&key).ok_or_else(|| {
            AgentError::BadState(format!("no bypass between {src_port} and {dst_port}"))
        })?;
        if !state.directions.remove(&(src_port, dst_port)) {
            return Err(AgentError::BadState(format!(
                "direction {src_port}->{dst_port} not active"
            )));
        }
        let segment = state.segment.clone();
        let mut errors: Vec<String> = Vec::new();

        // Sender stops first: afterwards nothing new enters the ring. If
        // this fails, the guest's later UnmapBypass sanitises anyway.
        if let Err(e) = self.guest_request(
            &src_vm,
            PmdCtrl::DisableTx {
                seq: 0,
                of_port: src_port,
            },
        ) {
            errors.push(e.to_string());
        }
        // Receiver drains what is left, then stops polling.
        let mut drained = 0;
        match self.guest_request(
            &dst_vm,
            PmdCtrl::DisableRxDrain {
                seq: 0,
                of_port: dst_port,
            },
        ) {
            Ok(ack) => drained = ack.drained,
            Err(e) => errors.push(e.to_string()),
        }

        let mut released = false;
        let state = pairs.get_mut(&key).expect("still present");
        if state.directions.is_empty() {
            // Unmap both PMDs, unplug both devices, release the segment.
            for port in state.mapped.drain() {
                let Ok(vm) = self.vm_for(port) else { continue };
                if let Err(e) = self.guest_request(
                    &vm,
                    PmdCtrl::UnmapBypass {
                        seq: 0,
                        of_port: port,
                    },
                ) {
                    errors.push(e.to_string());
                }
                if let Err(e) = self.unplug(&vm, &segment) {
                    errors.push(e.to_string());
                }
            }
            self.registry.release(&segment);
            pairs.remove(&key);
            released = true;
        }

        if errors.is_empty() {
            Ok(TeardownReport {
                segment,
                released_segment: released,
                drained,
            })
        } else {
            Err(AgentError::Hypervisor(errors.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;
    use packet_wire::PacketBuilder;
    use shmem_sim::{channel, ChannelEnd, StatsRegion};
    use vnf_apps::L2Forwarder;

    struct World {
        agent: ComputeAgent,
        registry: ShmRegistry,
        vms: Vec<Arc<Vm>>,
        /// Switch-side ends: (vm index, port index) order of creation.
        switch_ends: Vec<ChannelEnd>,
        stats: StatsRegion,
    }

    /// Two VMs, two ports each: vm0 has ports 1,2; vm1 has ports 3,4.
    fn world() -> World {
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let mut switch_ends = Vec::new();
        let mut vms = Vec::new();
        let mut port = 1u32;
        for name in ["vm0", "vm1"] {
            let mut vm_ports = Vec::new();
            for _ in 0..2 {
                let (vm_end, sw_end) =
                    registry.create_channel(format!("dpdkr{port}"), SegmentKind::DpdkrNormal, 64);
                vm_ports.push((port, vm_end));
                switch_ends.push(sw_end);
                port += 1;
            }
            vms.push(Vm::launch(
                name,
                vm_ports,
                Box::new(L2Forwarder::new()),
                stats.clone(),
            ));
        }
        let agent = ComputeAgent::new(registry.clone(), LatencyModel::zero());
        for vm in &vms {
            agent.register_vm(Arc::clone(vm));
        }
        World {
            agent,
            registry,
            vms,
            switch_ends,
            stats,
        }
    }

    #[test]
    fn setup_creates_segment_and_activates_direction() {
        let w = world();
        let report = w.agent.setup_bypass(2, 3, 0xc0de).unwrap();
        assert!(report.created_segment);
        assert_eq!(report.segment, "bypass-2-3");
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        assert_eq!(w.agent.live_pairs(), 1);
        // Both VMs saw the device.
        assert!(w.vms[0].plugged_devices().contains(&"bypass-2-3".into()));
        assert!(w.vms[1].plugged_devices().contains(&"bypass-2-3".into()));
    }

    #[test]
    fn traffic_flows_through_bypass_after_setup() {
        let mut w = world();
        w.agent.setup_bypass(2, 3, 0xc0de).unwrap();
        // Feed vm0 port 1 from the "switch": the forwarder moves the packet
        // to port 2, whose tx is now the bypass straight into vm1 port 3;
        // vm1 forwards to port 4 where the switch-side end receives it.
        w.switch_ends[0]
            .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let got = loop {
            if let Some(m) = w.switch_ends[3].recv() {
                break Some(m);
            }
            if std::time::Instant::now() > deadline {
                break None;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.expect("travelled the chain").len(), 64);
        // The middle hop never touched the switch.
        assert!(w.switch_ends[1].recv().is_none());
        assert!(w.switch_ends[2].recv().is_none());
        // And was accounted in the shared stats region.
        assert_eq!(w.stats.rule_totals(0xc0de), (1, 64));
    }

    #[test]
    fn reverse_direction_reuses_the_segment() {
        let w = world();
        let first = w.agent.setup_bypass(2, 3, 1).unwrap();
        let second = w.agent.setup_bypass(3, 2, 2).unwrap();
        assert!(first.created_segment);
        assert!(!second.created_segment);
        assert_eq!(first.segment, second.segment);
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 1);
    }

    #[test]
    fn duplicate_direction_is_rejected() {
        let w = world();
        w.agent.setup_bypass(2, 3, 1).unwrap();
        assert!(matches!(
            w.agent.setup_bypass(2, 3, 1),
            Err(AgentError::BadState(_))
        ));
    }

    #[test]
    fn teardown_releases_only_when_last_direction_goes() {
        let w = world();
        w.agent.setup_bypass(2, 3, 1).unwrap();
        w.agent.setup_bypass(3, 2, 2).unwrap();
        let t1 = w.agent.teardown_bypass(2, 3).unwrap();
        assert!(!t1.released_segment);
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        let t2 = w.agent.teardown_bypass(3, 2).unwrap();
        assert!(t2.released_segment);
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert_eq!(w.agent.live_pairs(), 0);
        // Devices unplugged from both VMs.
        assert!(w.vms[0].plugged_devices().is_empty());
        assert!(w.vms[1].plugged_devices().is_empty());
    }

    #[test]
    fn teardown_of_unknown_direction_fails() {
        let w = world();
        assert!(matches!(
            w.agent.teardown_bypass(2, 3),
            Err(AgentError::BadState(_))
        ));
    }

    #[test]
    fn unknown_port_and_same_vm_are_rejected() {
        let w = world();
        assert!(matches!(
            w.agent.setup_bypass(2, 99, 1),
            Err(AgentError::UnknownPort(99))
        ));
        assert!(matches!(
            w.agent.setup_bypass(1, 2, 1),
            Err(AgentError::SameVm(1, 2))
        ));
    }

    /// Like [`world`] but with a shared fault plan.
    fn faulty_world() -> (World, Arc<FaultPlan>) {
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let faults = FaultPlan::none();
        let mut switch_ends = Vec::new();
        let mut vms = Vec::new();
        let mut port = 1u32;
        for name in ["vm0", "vm1"] {
            let mut vm_ports = Vec::new();
            for _ in 0..2 {
                let (vm_end, sw_end) =
                    registry.create_channel(format!("dpdkr{port}"), SegmentKind::DpdkrNormal, 64);
                vm_ports.push((port, vm_end));
                switch_ends.push(sw_end);
                port += 1;
            }
            vms.push(Vm::launch(
                name,
                vm_ports,
                Box::new(L2Forwarder::new()),
                stats.clone(),
            ));
        }
        let agent =
            ComputeAgent::with_faults(registry.clone(), LatencyModel::zero(), Arc::clone(&faults));
        for vm in &vms {
            agent.register_vm(Arc::clone(vm));
        }
        (
            World {
                agent,
                registry,
                vms,
                switch_ends,
                stats,
            },
            faults,
        )
    }

    #[test]
    fn failed_first_plug_leaves_no_trace() {
        let (w, faults) = faulty_world();
        faults.arm(FaultOp::Plug, 1);
        let err = w.agent.setup_bypass(2, 3, 1).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert_eq!(w.agent.live_pairs(), 0);
        assert!(w.vms[0].plugged_devices().is_empty());
        assert!(w.vms[1].plugged_devices().is_empty());
        // Recovery: the very next attempt succeeds.
        w.agent.setup_bypass(2, 3, 1).unwrap();
        assert_eq!(w.agent.live_pairs(), 1);
    }

    #[test]
    fn failed_second_plug_unwinds_the_first() {
        let (w, faults) = faulty_world();
        faults.arm_after(FaultOp::Plug, 1, 1);
        let err = w.agent.setup_bypass(2, 3, 1).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert!(
            w.vms[0].plugged_devices().is_empty(),
            "first plug rolled back"
        );
        assert!(w.vms[1].plugged_devices().is_empty());
        w.agent.setup_bypass(2, 3, 1).unwrap();
    }

    #[test]
    fn failed_enable_tx_dismantles_a_fresh_pair() {
        let (w, faults) = faulty_world();
        // Serial ops of a fresh setup: map, map, enable-rx, enable-tx.
        faults.arm_after(FaultOp::Serial, 3, 1);
        let err = w.agent.setup_bypass(2, 3, 1).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert_eq!(w.agent.live_pairs(), 0);
        assert!(w.vms[0].plugged_devices().is_empty());
        assert!(w.vms[1].plugged_devices().is_empty());
        // The guests' PMDs were left clean too: a retry works end to end.
        w.agent.setup_bypass(2, 3, 1).unwrap();
        assert_eq!(w.agent.live_pairs(), 1);
    }

    #[test]
    fn reverse_direction_failure_spares_the_forward_bypass() {
        let (w, faults) = faulty_world();
        w.agent.setup_bypass(2, 3, 1).unwrap();
        // The reverse direction reuses the mapped pair, so its first serial
        // op is enable-rx. Fail it.
        faults.arm(FaultOp::Serial, 1);
        let err = w.agent.setup_bypass(3, 2, 2).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        // The forward direction must be untouched.
        assert_eq!(w.agent.live_pairs(), 1);
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 1);
        // And the reverse can still be set up afterwards.
        w.agent.setup_bypass(3, 2, 2).unwrap();
    }

    #[test]
    fn teardown_failure_still_releases_host_state() {
        let (w, faults) = faulty_world();
        w.agent.setup_bypass(2, 3, 1).unwrap();
        faults.arm(FaultOp::Serial, 1); // DisableTx fails
        let err = w.agent.teardown_bypass(2, 3).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        // Best-effort teardown: no leaked segments or pairs, devices gone.
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert_eq!(w.agent.live_pairs(), 0);
        assert!(w.vms[0].plugged_devices().is_empty());
        assert!(w.vms[1].plugged_devices().is_empty());
    }

    #[test]
    fn unplug_failure_is_reported_but_state_is_freed() {
        let (w, faults) = faulty_world();
        w.agent.setup_bypass(2, 3, 1).unwrap();
        faults.arm(FaultOp::Unplug, 2);
        let err = w.agent.teardown_bypass(2, 3).unwrap_err();
        assert!(matches!(err, AgentError::Hypervisor(_)));
        assert_eq!(w.registry.live_of_kind(SegmentKind::Bypass).len(), 0);
        assert_eq!(w.agent.live_pairs(), 0);
        // The devices leak (QEMU kept them), which is exactly what the
        // error reports.
        assert!(!w.vms[0].plugged_devices().is_empty());
    }

    #[test]
    fn paper_latency_model_meets_the_100ms_claim() {
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let (vm_end1, _s1) = channel("d1", 8);
        let (vm_end2, _s2) = channel("d2", 8);
        let vm_a = Vm::launch(
            "a",
            vec![(1, vm_end1)],
            Box::new(L2Forwarder::new()),
            stats.clone(),
        );
        let vm_b = Vm::launch("b", vec![(2, vm_end2)], Box::new(L2Forwarder::new()), stats);
        let agent = ComputeAgent::new(registry, LatencyModel::paper());
        agent.register_vm(vm_a);
        agent.register_vm(vm_b);
        let start = std::time::Instant::now();
        agent.setup_bypass(1, 2, 7).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(60) && elapsed <= Duration::from_millis(250),
            "setup took {elapsed:?}, expected on the order of 100 ms"
        );
    }
}
