//! The VM model: device board + virtio-serial + a vCPU thread running the
//! guest application. From the outside (compute agent, orchestrator) a VM
//! is a handle for plugging devices and issuing PMD control requests.

use parking_lot::Mutex;
use shmem_sim::{serial_pair, ChannelEnd, DeviceBoard, IvshmemDevice, SerialPort, StatsRegion};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vnf_apps::runner::GuestCounters;
use vnf_apps::{DpdkrPmd, GuestConfig, PmdAck, PmdCtrl, VnfApp, VnfRunner};

/// Errors from VM control operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The guest acked with `ok = false`.
    Nacked(PmdCtrl),
    /// No ack arrived in time (guest dead or wedged).
    Timeout,
    /// The serial device is gone.
    Disconnected,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Nacked(req) => write!(f, "guest rejected control request {req:?}"),
            VmError::Timeout => write!(f, "guest ack timeout"),
            VmError::Disconnected => write!(f, "virtio-serial disconnected"),
        }
    }
}

impl std::error::Error for VmError {}

/// A launched VM.
pub struct Vm {
    name: String,
    board: Arc<DeviceBoard>,
    ctrl: SerialPort<PmdCtrl>,
    acks: SerialPort<PmdAck>,
    of_ports: Vec<u32>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<GuestCounters>,
    next_seq: AtomicU64,
}

impl Vm {
    /// Boots a VM: builds the guest PMDs over the given `(of_port, channel
    /// end)` pairs, wires the control serial, and starts the vCPU thread
    /// running `app` under a [`VnfRunner`].
    pub fn launch(
        name: impl Into<String>,
        ports: Vec<(u32, ChannelEnd)>,
        app: Box<dyn VnfApp>,
        stats: StatsRegion,
    ) -> Arc<Vm> {
        let name = name.into();
        let board = Arc::new(DeviceBoard::new());
        let (host_ctrl, guest_ctrl) = serial_pair::<PmdCtrl>(format!("{name}-ctrl"));
        let (guest_ack, host_ack) = serial_pair::<PmdAck>(format!("{name}-ack"));
        let of_ports: Vec<u32> = ports.iter().map(|(p, _)| *p).collect();
        let pmds: Vec<DpdkrPmd> = ports
            .into_iter()
            .map(|(p, end)| DpdkrPmd::new(p, end, stats.clone()))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let runner = VnfRunner::new(
            GuestConfig {
                name: name.clone(),
                ports: pmds,
                app,
                serial: guest_ctrl,
                ack_via: guest_ack,
                board: Arc::clone(&board),
            },
            Arc::clone(&stop),
        );
        let counters = runner.counters();
        let thread = std::thread::Builder::new()
            .name(format!("vm-{name}"))
            .spawn(move || runner.run())
            .expect("spawn vCPU thread");
        Arc::new(Vm {
            name,
            board,
            ctrl: host_ctrl,
            acks: host_ack,
            of_ports,
            stop,
            thread: Mutex::new(Some(thread)),
            counters,
            next_seq: AtomicU64::new(1),
        })
    }

    /// VM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// OpenFlow port numbers of this VM's dpdkr ports.
    pub fn of_ports(&self) -> &[u32] {
        &self.of_ports
    }

    /// Guest counters (forwarded/dropped/control).
    pub fn counters(&self) -> &GuestCounters {
        &self.counters
    }

    /// Hot-plugs an ivshmem device (QEMU `device_add`).
    pub fn plug_device(&self, segment: impl Into<String>, end: ChannelEnd) {
        let segment = segment.into();
        self.board.plug(IvshmemDevice::new(segment, end));
    }

    /// Unplugs an ivshmem device (QEMU `device_del`).
    pub fn unplug_device(&self, segment: &str) -> bool {
        self.board.unplug(segment)
    }

    /// Maps the host packet arena into this VM (QEMU mapping the hugepage
    /// segment read-write). The guest PMD adopts it on the next bypass map.
    pub fn plug_arena(&self, arena: &dpdk_sim::Arena) {
        self.board.set_arena(arena);
    }

    /// True when the packet arena is mapped into this VM.
    pub fn has_arena(&self) -> bool {
        self.board.arena().is_some()
    }

    /// Devices currently plugged (diagnostics/tests).
    pub fn plugged_devices(&self) -> Vec<String> {
        self.board.plugged()
    }

    /// Sends a PMD control request and waits for its ack.
    pub fn request(&self, mut msg: PmdCtrl, timeout: Duration) -> Result<PmdAck, VmError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Stamp the sequence number into the message.
        match &mut msg {
            PmdCtrl::MapBypass { seq: s, .. }
            | PmdCtrl::EnableTx { seq: s, .. }
            | PmdCtrl::EnableRx { seq: s, .. }
            | PmdCtrl::DisableTx { seq: s, .. }
            | PmdCtrl::DisableRxDrain { seq: s, .. }
            | PmdCtrl::UnmapBypass { seq: s, .. } => *s = seq,
        }
        let sent = msg.clone();
        self.ctrl.send(msg).map_err(|_| VmError::Disconnected)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(VmError::Timeout)?;
            match self.acks.recv_timeout(remaining) {
                Ok(ack) if ack.seq == seq => {
                    return if ack.ok {
                        Ok(ack)
                    } else {
                        Err(VmError::Nacked(sent))
                    };
                }
                Ok(_stale) => continue, // ack for an older request: skip
                Err(shmem_sim::SerialError::Timeout) => return Err(VmError::Timeout),
                Err(shmem_sim::SerialError::Disconnected) => return Err(VmError::Disconnected),
            }
        }
    }

    /// Stops the vCPU thread and waits for it (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Vm {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.name)
            .field("ports", &self.of_ports)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;
    use packet_wire::PacketBuilder;
    use shmem_sim::channel;
    use vnf_apps::L2Forwarder;

    #[test]
    fn launched_vm_forwards_between_its_ports() {
        let stats = StatsRegion::new();
        let (vm_end1, mut sw1) = channel("dpdkr1", 32);
        let (vm_end2, mut sw2) = channel("dpdkr2", 32);
        let vm = Vm::launch(
            "vm1",
            vec![(1, vm_end1), (2, vm_end2)],
            Box::new(L2Forwarder::new()),
            stats,
        );
        sw1.send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let got = loop {
            if let Some(m) = sw2.recv() {
                break Some(m);
            }
            if Instant::now() > deadline {
                break None;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.expect("forwarded").len(), 64);
        vm.shutdown();
        assert_eq!(vm.counters().forwarded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn control_request_roundtrip_and_nack() {
        let stats = StatsRegion::new();
        let (vm_end1, _sw1) = channel("dpdkr1", 8);
        let vm = Vm::launch(
            "vm2",
            vec![(1, vm_end1)],
            Box::new(L2Forwarder::new()),
            stats,
        );
        // Valid request on a missing segment: guest nacks.
        let err = vm
            .request(
                PmdCtrl::MapBypass {
                    seq: 0,
                    of_port: 1,
                    segment: "absent".into(),
                },
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(err, VmError::Nacked(_)));

        // Plug then map: acked.
        let (end_a, _end_b) = channel("seg", 8);
        vm.plug_device("seg", end_a);
        let ack = vm
            .request(
                PmdCtrl::MapBypass {
                    seq: 0,
                    of_port: 1,
                    segment: "seg".into(),
                },
                Duration::from_secs(5),
            )
            .unwrap();
        assert!(ack.ok);
        vm.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let stats = StatsRegion::new();
        let (vm_end1, _sw1) = channel("dpdkr1", 8);
        let vm = Vm::launch(
            "vm3",
            vec![(1, vm_end1)],
            Box::new(L2Forwarder::new()),
            stats,
        );
        vm.shutdown();
        vm.shutdown();
    }
}
