//! Control-plane fault injection.
//!
//! The paper's control choreography (OVS → compute agent → QEMU → guest
//! PMD) has several hops that fail in production: QEMU `device_add` can be
//! rejected, a guest can wedge and stop answering virtio-serial. The
//! [`FaultPlan`] lets tests and the `failure_recovery` example arm such
//! failures deterministically, and the [`crate::ComputeAgent`] consults it
//! before each hypervisor operation. The interesting property under test is
//! *atomicity*: a failed setup must leave no half-plugged devices, no
//! leaked shared-memory segments and no guest PMD stuck in a half-enabled
//! state.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Which hypervisor operation to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// QEMU `device_add` (ivshmem hot-plug).
    Plug,
    /// QEMU `device_del`.
    Unplug,
    /// A virtio-serial PMD control round-trip.
    Serial,
}

#[derive(Debug, Default)]
struct Fault {
    /// Operations to let through before the budget starts biting.
    skip: AtomicU32,
    /// Operations to fail once the skip runs out.
    budget: AtomicU32,
}

/// A deterministic failure plan shared with one [`crate::ComputeAgent`].
///
/// Each operation kind carries a budget of pending failures: `arm(op, n)`
/// makes the next `n` operations of that kind fail;
/// `arm_after(op, skip, n)` lets `skip` operations through first (to target
/// a specific step of a multi-step choreography). Budgets are independent
/// and refillable at run time.
#[derive(Debug, Default)]
pub struct FaultPlan {
    plug: Fault,
    unplug: Fault,
    serial: Fault,
    /// Total faults injected since creation.
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan that never fails anything.
    pub fn none() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Arms `n` failures of the given operation kind (additive).
    pub fn arm(&self, op: FaultOp, n: u32) {
        self.fault(op).budget.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms `n` failures that begin only after `skip` successful
    /// operations of the same kind.
    pub fn arm_after(&self, op: FaultOp, skip: u32, n: u32) {
        let f = self.fault(op);
        f.skip.store(skip, Ordering::SeqCst);
        f.budget.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed failure of `op` if any is pending.
    /// Returns true when the operation must fail.
    pub fn should_fail(&self, op: FaultOp) -> bool {
        let f = self.fault(op);
        // Burn a skip token first, if any.
        let mut skip = f.skip.load(Ordering::SeqCst);
        while skip > 0 {
            match f
                .skip
                .compare_exchange(skip, skip - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return false,
                Err(now) => skip = now,
            }
        }
        let mut cur = f.budget.load(Ordering::SeqCst);
        while cur > 0 {
            match f
                .budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(now) => cur = now,
            }
        }
        false
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Pending (armed but not yet consumed) failures for `op`.
    pub fn pending(&self, op: FaultOp) -> u32 {
        self.fault(op).budget.load(Ordering::SeqCst)
    }

    fn fault(&self, op: FaultOp) -> &Fault {
        match op {
            FaultOp::Plug => &self.plug,
            FaultOp::Unplug => &self.unplug,
            FaultOp::Serial => &self.serial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fails() {
        let p = FaultPlan::none();
        for _ in 0..100 {
            assert!(!p.should_fail(FaultOp::Plug));
            assert!(!p.should_fail(FaultOp::Serial));
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn armed_failures_are_consumed_exactly() {
        let p = FaultPlan::none();
        p.arm(FaultOp::Plug, 2);
        assert!(p.should_fail(FaultOp::Plug));
        assert!(p.should_fail(FaultOp::Plug));
        assert!(!p.should_fail(FaultOp::Plug));
        assert_eq!(p.injected(), 2);
        assert_eq!(p.pending(FaultOp::Plug), 0);
    }

    #[test]
    fn budgets_are_independent() {
        let p = FaultPlan::none();
        p.arm(FaultOp::Serial, 1);
        assert!(!p.should_fail(FaultOp::Plug));
        assert!(!p.should_fail(FaultOp::Unplug));
        assert!(p.should_fail(FaultOp::Serial));
    }

    #[test]
    fn arm_after_skips_then_fails() {
        let p = FaultPlan::none();
        p.arm_after(FaultOp::Serial, 2, 1);
        assert!(!p.should_fail(FaultOp::Serial));
        assert!(!p.should_fail(FaultOp::Serial));
        assert!(p.should_fail(FaultOp::Serial));
        assert!(!p.should_fail(FaultOp::Serial));
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn arming_is_additive_and_concurrent_consumption_is_exact() {
        let p = FaultPlan::none();
        p.arm(FaultOp::Serial, 3);
        p.arm(FaultOp::Serial, 2);
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            let mut hits = 0;
            for _ in 0..100 {
                if p2.should_fail(FaultOp::Serial) {
                    hits += 1;
                }
            }
            hits
        });
        let mut hits = 0;
        for _ in 0..100 {
            if p.should_fail(FaultOp::Serial) {
                hits += 1;
            }
        }
        let total = hits + t.join().unwrap();
        assert_eq!(total, 5, "exactly the armed budget fires");
    }
}
