//! Control-plane latency model.
//!
//! The data path of the reproduction is real code; the *hardware control*
//! operations (QEMU ivshmem hot-plug, virtio-serial scheduling) are where
//! the simulation substitutes sleeps for hypervisor work. The defaults are
//! calibrated so a full one-direction bypass setup lands near the ~100 ms
//! the paper reports (two hot-plugs plus a handful of serial round-trips),
//! with ±20 % uniform jitter so distributions look like measurements, not
//! constants.

use std::time::Duration;

/// Delays applied by the compute agent around control operations.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// One QEMU `device_add` of an ivshmem device.
    pub ivshmem_plug: Duration,
    /// One QEMU `device_del`.
    pub ivshmem_unplug: Duration,
    /// One virtio-serial request/ack round-trip (scheduling + guest apply).
    pub serial_rtt: Duration,
    /// Relative jitter applied to every delay (0.0 = deterministic).
    pub jitter: f64,
}

impl LatencyModel {
    /// Calibrated to the paper's testbed: setup ≈ 2×35 ms (plugs)
    /// + 4×7 ms (map/map/enable-rx/enable-tx round-trips) ≈ 98 ms.
    pub fn paper() -> LatencyModel {
        LatencyModel {
            ivshmem_plug: Duration::from_millis(35),
            ivshmem_unplug: Duration::from_millis(15),
            serial_rtt: Duration::from_millis(7),
            jitter: 0.2,
        }
    }

    /// No artificial delays (unit tests, functional integration tests).
    pub fn zero() -> LatencyModel {
        LatencyModel {
            ivshmem_plug: Duration::ZERO,
            ivshmem_unplug: Duration::ZERO,
            serial_rtt: Duration::ZERO,
            jitter: 0.0,
        }
    }

    fn jittered(&self, base: Duration) -> Duration {
        if self.jitter == 0.0 || base.is_zero() {
            return base;
        }
        let spread = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - spread + 2.0 * spread * rand::random::<f64>();
        base.mul_f64(factor)
    }

    /// Sleeps for a jittered hot-plug delay.
    pub fn sleep_plug(&self) {
        sleep_nonzero(self.jittered(self.ivshmem_plug));
    }

    /// Sleeps for a jittered unplug delay.
    pub fn sleep_unplug(&self) {
        sleep_nonzero(self.jittered(self.ivshmem_unplug));
    }

    /// Sleeps for a jittered serial round-trip delay.
    pub fn sleep_serial(&self) {
        sleep_nonzero(self.jittered(self.serial_rtt));
    }

    /// The deterministic (jitter-free) expected setup time for one bypass
    /// direction on a fresh segment: 2 plugs + 4 serial round-trips.
    pub fn nominal_setup(&self) -> Duration {
        self.ivshmem_plug * 2 + self.serial_rtt * 4
    }
}

fn sleep_nonzero(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_lands_near_100ms() {
        let nominal = LatencyModel::paper().nominal_setup();
        assert!(
            nominal >= Duration::from_millis(80) && nominal <= Duration::from_millis(120),
            "nominal setup {nominal:?} strays from the paper's ~100 ms"
        );
    }

    #[test]
    fn zero_model_never_sleeps_long() {
        let m = LatencyModel::zero();
        let start = std::time::Instant::now();
        m.sleep_plug();
        m.sleep_serial();
        m.sleep_unplug();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel {
            ivshmem_plug: Duration::from_millis(100),
            ivshmem_unplug: Duration::ZERO,
            serial_rtt: Duration::ZERO,
            jitter: 0.2,
        };
        for _ in 0..100 {
            let d = m.jittered(m.ivshmem_plug);
            assert!(d >= Duration::from_millis(80) && d <= Duration::from_millis(120));
        }
    }
}
