//! The orchestrator: deploys service graphs onto one server.
//!
//! Mirrors Figure 1(b) of the paper: it receives a graph of VNFs, creates a
//! VM per VNF with dpdkr ports on the vSwitch, launches the guest
//! applications, and issues the traffic-steering flow_mods. Chains — the
//! evaluation workload — get a dedicated helper.

use crate::agent::ComputeAgent;
use crate::vm::Vm;
use openflow::messages::FlowMod;
use openflow::{Action, FlowMatch, PortNo};
use ovs_dp::VSwitchd;
use shmem_sim::{SegmentKind, ShmRegistry, StatsRegion, DEFAULT_RING_DEPTH};
use std::sync::Arc;
use vnf_apps::{Firewall, FirewallRule, L2Forwarder, NetworkMonitor, VnfApp, WebCache};

/// Which application a VNF runs.
pub enum AppKind {
    /// The paper's evaluation app: move packets between the two ports.
    Forwarder,
    /// Stateless firewall with the given ruleset.
    Firewall(Vec<FirewallRule>),
    /// Per-flow byte/packet accounting.
    Monitor,
    /// Toy web cache.
    WebCache,
    /// Any custom application.
    Custom(Box<dyn VnfApp>),
}

impl AppKind {
    fn build(self) -> Box<dyn VnfApp> {
        match self {
            AppKind::Forwarder => Box::new(L2Forwarder::new()),
            AppKind::Firewall(rules) => Box::new(Firewall::new(rules)),
            AppKind::Monitor => Box::new(NetworkMonitor::new()),
            AppKind::WebCache => Box::new(WebCache::new()),
            AppKind::Custom(app) => app,
        }
    }
}

/// One VNF in a graph.
pub struct VnfSpec {
    pub name: String,
    pub app: AppKind,
}

impl VnfSpec {
    /// A forwarder VNF (the evaluation workload).
    pub fn forwarder(name: impl Into<String>) -> VnfSpec {
        VnfSpec {
            name: name.into(),
            app: AppKind::Forwarder,
        }
    }
}

/// One endpoint of a service-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphPort {
    /// A port that already exists on the switch (NIC, edge dpdkr).
    External(u32),
    /// Port `port` (index) of VNF node `node` (index into [`GraphSpec`]).
    Vnf { node: usize, port: usize },
}

/// A logical edge: traffic entering `from` is steered to `to`.
#[derive(Debug, Clone)]
pub struct GraphEdgeSpec {
    pub from: GraphPort,
    pub to: GraphPort,
    /// `None` steers *all* of `from`'s traffic (the p-2-p rule shape the
    /// highway accelerates). `Some((template, priority))` steers only the
    /// matching subset — the template's `in_port` is overwritten — which
    /// makes the source port non-p-2-p, exactly like the web/non-web split
    /// in the paper's Figure 1.
    pub refine: Option<(FlowMatch, u16)>,
}

impl GraphEdgeSpec {
    /// An all-traffic (p-2-p shaped) edge.
    pub fn all(from: GraphPort, to: GraphPort) -> GraphEdgeSpec {
        GraphEdgeSpec {
            from,
            to,
            refine: None,
        }
    }

    /// A refined (match-limited) edge at the given priority.
    pub fn matching(
        from: GraphPort,
        to: GraphPort,
        template: FlowMatch,
        priority: u16,
    ) -> GraphEdgeSpec {
        GraphEdgeSpec {
            from,
            to,
            refine: Some((template, priority)),
        }
    }
}

/// An arbitrary service graph: VNF nodes plus steering edges
/// (Figure 1(a) of the paper is the canonical instance).
pub struct GraphSpec {
    /// `(spec, n_ports)` per VNF node.
    pub vnfs: Vec<(VnfSpec, usize)>,
    pub edges: Vec<GraphEdgeSpec>,
}

/// A deployed service graph.
pub struct GraphDeployment {
    pub vms: Vec<Arc<Vm>>,
    /// Switch port numbers per VNF node, indexed `[node][port]`.
    pub vnf_ports: Vec<Vec<u32>>,
    /// Rule cookie per edge, in [`GraphSpec::edges`] order.
    pub cookies: Vec<u64>,
}

impl GraphDeployment {
    /// Resolves a [`GraphPort`] to its switch port number.
    pub fn resolve(&self, p: GraphPort) -> u32 {
        match p {
            GraphPort::External(no) => no,
            GraphPort::Vnf { node, port } => self.vnf_ports[node][port],
        }
    }
}

/// A deployed chain: VM handles plus the port numbers at each seam.
pub struct ChainDeployment {
    pub vms: Vec<Arc<Vm>>,
    /// `(ingress, egress)` OpenFlow ports of each VM, chain order.
    pub vm_ports: Vec<(u32, u32)>,
    /// Switch-side ingress into the first VM.
    pub entry_port: u32,
    /// Switch-side egress out of the last VM.
    pub exit_port: u32,
    /// Cookies of the forward-direction p-2-p rules, seam order.
    pub forward_cookies: Vec<u64>,
    /// Cookies of the reverse-direction p-2-p rules, seam order.
    pub reverse_cookies: Vec<u64>,
}

/// The orchestrator bound to one switch.
pub struct Orchestrator {
    switch: Arc<VSwitchd>,
    registry: ShmRegistry,
    stats: StatsRegion,
    /// When present, every VM is registered here at creation — *before*
    /// any steering rule that mentions its ports is installed. Without
    /// this ordering the highway manager races VM registration and logs
    /// spurious `UnknownPort` setup failures for seams that are about to
    /// become perfectly serviceable.
    agent: Option<Arc<ComputeAgent>>,
    next_port: std::sync::atomic::AtomicU32,
    next_cookie: std::sync::atomic::AtomicU64,
}

impl Orchestrator {
    /// Creates an orchestrator allocating ports from 1 upwards.
    pub fn new(switch: Arc<VSwitchd>, registry: ShmRegistry, stats: StatsRegion) -> Orchestrator {
        Orchestrator {
            switch,
            registry,
            stats,
            agent: None,
            next_port: std::sync::atomic::AtomicU32::new(1),
            next_cookie: std::sync::atomic::AtomicU64::new(0x1000),
        }
    }

    /// Like [`Orchestrator::new`], but VMs are registered with `agent` as
    /// part of [`Orchestrator::create_vm`], so the port→VM mapping exists
    /// before any deploy helper installs steering rules.
    pub fn with_agent(
        switch: Arc<VSwitchd>,
        registry: ShmRegistry,
        stats: StatsRegion,
        agent: Arc<ComputeAgent>,
    ) -> Orchestrator {
        Orchestrator {
            agent: Some(agent),
            ..Orchestrator::new(switch, registry, stats)
        }
    }

    /// Allocates the next OpenFlow port number.
    pub fn alloc_port(&self) -> u32 {
        self.next_port
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Allocates a rule cookie.
    pub fn alloc_cookie(&self) -> u64 {
        self.next_cookie
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Creates a VM with `n_ports` dpdkr ports attached to the switch and
    /// boots it with the given application.
    pub fn create_vm(&self, spec: VnfSpec, n_ports: usize) -> Arc<Vm> {
        let mut guest_ports = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let no = self.alloc_port();
            let seg = format!("dpdkr{no}");
            let (vm_end, sw_end) =
                self.registry
                    .create_channel(&seg, SegmentKind::DpdkrNormal, DEFAULT_RING_DEPTH);
            self.switch.add_dpdkr_port(PortNo(no as u16), &seg, sw_end);
            guest_ports.push((no, vm_end));
        }
        let vm = Vm::launch(spec.name, guest_ports, spec.app.build(), self.stats.clone());
        if let Some(agent) = &self.agent {
            agent.register_vm(Arc::clone(&vm));
        }
        vm
    }

    /// Installs the p-2-p steering rule `in_port=from → output:to` and
    /// returns its cookie. This is exactly the flow_mod shape the detector
    /// recognises.
    pub fn link_p2p(&self, from: u32, to: u32) -> u64 {
        let cookie = self.alloc_cookie();
        self.switch.inject_flow_mod(
            &FlowMod::add(
                FlowMatch::in_port(PortNo(from as u16)),
                100,
                vec![Action::Output(PortNo(to as u16))],
            )
            .with_cookie(cookie),
        );
        cookie
    }

    /// Installs a refined steering rule (`template` with `in_port`
    /// overwritten) and returns its cookie. Refined rules deliberately
    /// break the p-2-p property of their ingress port.
    pub fn link_matching(&self, from: u32, to: u32, template: FlowMatch, priority: u16) -> u64 {
        let cookie = self.alloc_cookie();
        let mut fmatch = template;
        fmatch.in_port = Some(PortNo(from as u16));
        self.switch.inject_flow_mod(
            &FlowMod::add(fmatch, priority, vec![Action::Output(PortNo(to as u16))])
                .with_cookie(cookie),
        );
        cookie
    }

    /// Deploys an arbitrary service graph: creates one VM per node, then
    /// installs every edge's steering rule. Edges whose ingress port ends
    /// up with exactly one all-traffic rule are p-2-p and will be
    /// accelerated on a highway node; refined edges (and the all-traffic
    /// edges sharing their ingress port) stay on the switch path.
    pub fn deploy_graph(&self, spec: GraphSpec) -> GraphDeployment {
        let mut vms = Vec::with_capacity(spec.vnfs.len());
        let mut vnf_ports = Vec::with_capacity(spec.vnfs.len());
        for (vnf, n_ports) in spec.vnfs {
            let vm = self.create_vm(vnf, n_ports);
            vnf_ports.push(vm.of_ports().to_vec());
            vms.push(vm);
        }
        let mut dep = GraphDeployment {
            vms,
            vnf_ports,
            cookies: Vec::with_capacity(spec.edges.len()),
        };
        for edge in &spec.edges {
            let from = dep.resolve(edge.from);
            let to = dep.resolve(edge.to);
            let cookie = match &edge.refine {
                None => self.link_p2p(from, to),
                Some((template, priority)) => self.link_matching(from, to, *template, *priority),
            };
            dep.cookies.push(cookie);
        }
        dep
    }

    /// Deploys the paper's evaluation topology: a chain of `n` two-port
    /// VMs, with entry/exit dpdkr ports (or NIC ports added by the caller)
    /// on the outside, and bidirectional p-2-p rules along every seam.
    ///
    /// `entry_port`/`exit_port` must already exist on the switch.
    pub fn deploy_chain(
        &self,
        n: usize,
        entry_port: u32,
        exit_port: u32,
        spec_for: impl Fn(usize) -> VnfSpec,
    ) -> ChainDeployment {
        assert!(n >= 1, "chain needs at least one VM");
        let mut vms = Vec::with_capacity(n);
        let mut vm_ports = Vec::with_capacity(n);
        for i in 0..n {
            let vm = self.create_vm(spec_for(i), 2);
            let ports = (vm.of_ports()[0], vm.of_ports()[1]);
            vm_ports.push(ports);
            vms.push(vm);
        }
        // Seams: entry → vm0.in, vm_i.out → vm_{i+1}.in, vm_last.out → exit;
        // plus everything mirrored for the reverse direction.
        let mut forward_cookies = Vec::new();
        let mut reverse_cookies = Vec::new();
        let mut hops: Vec<(u32, u32)> = Vec::new();
        hops.push((entry_port, vm_ports[0].0));
        for i in 0..n - 1 {
            hops.push((vm_ports[i].1, vm_ports[i + 1].0));
        }
        hops.push((vm_ports[n - 1].1, exit_port));
        for (from, to) in &hops {
            forward_cookies.push(self.link_p2p(*from, *to));
        }
        for (from, to) in hops.iter().rev() {
            reverse_cookies.push(self.link_p2p(*to, *from));
        }
        ChainDeployment {
            vms,
            vm_ports,
            entry_port,
            exit_port,
            forward_cookies,
            reverse_cookies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdk_sim::Mbuf;
    use ovs_dp::VSwitchdConfig;
    use packet_wire::PacketBuilder;
    use std::time::{Duration, Instant};

    struct Edge {
        entry: shmem_sim::ChannelEnd,
        exit: shmem_sim::ChannelEnd,
    }

    fn switch_with_edges() -> (Arc<VSwitchd>, Orchestrator, Edge) {
        let switch = Arc::new(VSwitchd::new(VSwitchdConfig::default()));
        let registry = ShmRegistry::new();
        let stats = StatsRegion::new();
        let orch = Orchestrator::new(Arc::clone(&switch), registry.clone(), stats);
        // Edge "traffic generator" ports take two port numbers.
        let entry_no = orch.alloc_port();
        let (gen_end, sw_end) =
            registry.create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
        switch.add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
        let exit_no = orch.alloc_port();
        let (sink_end, sw_end2) =
            registry.create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
        switch.add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end2);
        (
            switch,
            orch,
            Edge {
                entry: gen_end,
                exit: sink_end,
            },
        )
    }

    #[test]
    fn chain_of_three_carries_traffic_both_ways() {
        let (switch, orch, mut edge) = switch_with_edges();
        let dep = orch.deploy_chain(3, 1, 2, |i| VnfSpec::forwarder(format!("vm{i}")));
        switch.start();

        // Forward direction: entry → … → exit.
        edge.entry
            .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got_fwd = false;
        while Instant::now() < deadline {
            if edge.exit.recv().is_some() {
                got_fwd = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(got_fwd, "forward traversal");

        // Reverse direction: exit → … → entry.
        edge.exit
            .send(Mbuf::from_slice(&PacketBuilder::udp_probe(64).build()))
            .unwrap();
        let mut got_rev = false;
        while Instant::now() < deadline {
            if edge.entry.recv().is_some() {
                got_rev = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(got_rev, "reverse traversal");

        assert_eq!(dep.vms.len(), 3);
        assert_eq!(dep.forward_cookies.len(), 4); // n+1 seams
        assert_eq!(dep.reverse_cookies.len(), 4);
        switch.stop();
        for vm in &dep.vms {
            vm.shutdown();
        }
    }

    #[test]
    fn figure1_graph_splits_web_from_nonweb() {
        // The paper's motivating graph: firewall → monitor, then web
        // traffic detours through the cache while the rest exits directly.
        let (switch, orch, mut edge) = switch_with_edges();
        let mut web = FlowMatch::any();
        web.ip_proto = Some(17);
        web.l4_dst = Some(80);
        let fw = GraphPort::Vnf { node: 0, port: 0 };
        let fw_out = GraphPort::Vnf { node: 0, port: 1 };
        let mon = GraphPort::Vnf { node: 1, port: 0 };
        let mon_out = GraphPort::Vnf { node: 1, port: 1 };
        let cache = GraphPort::Vnf { node: 2, port: 0 };
        let cache_out = GraphPort::Vnf { node: 2, port: 1 };
        let dep = orch.deploy_graph(GraphSpec {
            vnfs: vec![
                (VnfSpec::forwarder("fw"), 2),
                (VnfSpec::forwarder("mon"), 2),
                (VnfSpec::forwarder("cache"), 2),
            ],
            edges: vec![
                GraphEdgeSpec::all(GraphPort::External(1), fw),
                GraphEdgeSpec::all(fw_out, mon),
                // The split: web traffic to the cache at high priority…
                GraphEdgeSpec::matching(mon_out, cache, web, 200),
                // …the rest straight to the exit.
                GraphEdgeSpec::all(mon_out, GraphPort::External(2)),
                GraphEdgeSpec::all(cache_out, GraphPort::External(2)),
            ],
        });
        switch.start();
        assert_eq!(dep.cookies.len(), 5);

        let recv_one = |end: &mut shmem_sim::ChannelEnd| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if let Some(m) = end.recv() {
                    return m;
                }
                assert!(Instant::now() < deadline, "timed out");
                std::thread::yield_now();
            }
        };

        // Non-web traffic skips the cache.
        edge.entry
            .send(Mbuf::from_slice(
                &PacketBuilder::udp_probe(64).ports(5000, 53).build(),
            ))
            .unwrap();
        recv_one(&mut edge.exit);
        assert_eq!(
            dep.vms[2]
                .counters()
                .forwarded
                .load(std::sync::atomic::Ordering::Relaxed),
            0,
            "cache untouched by DNS traffic"
        );

        // Web traffic detours through the cache.
        edge.entry
            .send(Mbuf::from_slice(
                &PacketBuilder::udp_probe(64).ports(5000, 80).build(),
            ))
            .unwrap();
        recv_one(&mut edge.exit);
        assert_eq!(
            dep.vms[2]
                .counters()
                .forwarded
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "cache saw the web packet"
        );

        switch.stop();
        for vm in &dep.vms {
            vm.shutdown();
        }
    }

    #[test]
    fn port_and_cookie_allocation_is_unique() {
        let (_switch, orch, _edge) = switch_with_edges();
        let a = orch.alloc_port();
        let b = orch.alloc_port();
        assert_ne!(a, b);
        let c1 = orch.alloc_cookie();
        let c2 = orch.alloc_cookie();
        assert_ne!(c1, c2);
    }
}
