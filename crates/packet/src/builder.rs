//! Builders for the synthetic traffic used across tests, examples and
//! benchmarks — primarily the 64 B UDP probes of the paper's evaluation,
//! which embed a sequence number and a transmit timestamp so sinks can
//! measure loss, reordering and latency.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
use crate::udp::{UdpDatagram, UDP_HEADER_LEN};
use std::net::Ipv4Addr;

/// Probe payload header carried in every generated UDP packet:
/// 8 B sequence number + 8 B transmit timestamp (cycles), big-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHeader {
    pub seq: u64,
    pub tx_cycles: u64,
}

/// Bytes of probe metadata inside the UDP payload.
pub const PROBE_WIRE_LEN: usize = 16;

/// Smallest frame that can carry a probe:
/// 14 (eth) + 20 (ipv4) + 8 (udp) + 16 (probe) = 58 < 60, so 60 B and the
/// paper's 64 B frames both fit.
pub const MIN_PROBE_FRAME: usize =
    ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + PROBE_WIRE_LEN;

impl ProbeHeader {
    /// Reads a probe header from the front of a UDP payload.
    pub fn read(payload: &[u8]) -> Option<ProbeHeader> {
        if payload.len() < PROBE_WIRE_LEN {
            return None;
        }
        let seq = u64::from_be_bytes(payload[0..8].try_into().unwrap());
        let tx_cycles = u64::from_be_bytes(payload[8..16].try_into().unwrap());
        Some(ProbeHeader { seq, tx_cycles })
    }

    /// Writes this header to the front of a UDP payload.
    pub fn write(&self, payload: &mut [u8]) {
        payload[0..8].copy_from_slice(&self.seq.to_be_bytes());
        payload[8..16].copy_from_slice(&self.tx_cycles.to_be_bytes());
    }

    /// Convenience: parses the probe out of a full Ethernet frame built by
    /// [`PacketBuilder::udp_probe`].
    pub fn from_frame(frame: &[u8]) -> Option<ProbeHeader> {
        let eth = EthernetFrame::new_checked(frame).ok()?;
        let ip = Ipv4Packet::new_checked(eth.payload()).ok()?;
        let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
        ProbeHeader::read(udp.payload())
    }

    /// Convenience: rewrites the tx timestamp inside a built probe frame.
    pub fn stamp_frame(frame: &mut [u8], seq: u64, tx_cycles: u64) {
        let off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;
        if frame.len() >= off + PROBE_WIRE_LEN {
            ProbeHeader { seq, tx_cycles }.write(&mut frame[off..]);
        }
    }
}

/// Fluent builder producing complete Ethernet/IPv4/UDP frames.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    frame_len: usize,
    eth_src: MacAddr,
    eth_dst: MacAddr,
    ip_src: Ipv4Addr,
    ip_dst: Ipv4Addr,
    tos: u8,
    ttl: u8,
    src_port: u16,
    dst_port: u16,
    probe: ProbeHeader,
    checksums: bool,
}

impl PacketBuilder {
    /// Starts a UDP probe of the given total frame length (≥ [`MIN_PROBE_FRAME`]).
    /// The paper's workload is `udp_probe(64)`.
    pub fn udp_probe(frame_len: usize) -> PacketBuilder {
        PacketBuilder {
            frame_len: frame_len.max(MIN_PROBE_FRAME),
            eth_src: MacAddr::local(1),
            eth_dst: MacAddr::local(2),
            ip_src: Ipv4Addr::new(10, 0, 0, 1),
            ip_dst: Ipv4Addr::new(10, 0, 0, 2),
            tos: 0,
            ttl: 64,
            src_port: 1000,
            dst_port: 2000,
            probe: ProbeHeader {
                seq: 0,
                tx_cycles: 0,
            },
            checksums: true,
        }
    }

    /// Sets the Ethernet addresses.
    pub fn eth(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.eth_src = src;
        self.eth_dst = dst;
        self
    }

    /// Sets the IPv4 addresses.
    pub fn ip(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.ip_src = src;
        self.ip_dst = dst;
        self
    }

    /// Sets the IPv4 TOS byte.
    pub fn tos(mut self, tos: u8) -> Self {
        self.tos = tos;
        self
    }

    /// Sets the UDP ports.
    pub fn ports(mut self, src: u16, dst: u16) -> Self {
        self.src_port = src;
        self.dst_port = dst;
        self
    }

    /// Sets the probe sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.probe.seq = seq;
        self
    }

    /// Sets the probe transmit timestamp.
    pub fn tx_cycles(mut self, cycles: u64) -> Self {
        self.probe.tx_cycles = cycles;
        self
    }

    /// Disables checksum computation (generator fast path; the paper's
    /// traffic generators do the same and NICs offload it anyway).
    pub fn no_checksums(mut self) -> Self {
        self.checksums = false;
        self
    }

    /// Produces the finished frame bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.frame_len];
        self.build_into(&mut buf);
        buf
    }

    /// Writes the frame into an existing buffer (must be ≥ the frame length);
    /// returns the number of bytes written. Lets mempools avoid realloc.
    pub fn build_into(&self, buf: &mut [u8]) -> usize {
        assert!(buf.len() >= self.frame_len);
        let buf = &mut buf[..self.frame_len];

        let mut eth = EthernetFrame::new_unchecked(&mut *buf);
        eth.set_src_addr(self.eth_src);
        eth.set_dst_addr(self.eth_dst);
        eth.set_ethertype(EtherType::Ipv4);

        let ip_total = (self.frame_len - ETHERNET_HEADER_LEN) as u16;
        let udp_len = ip_total - IPV4_HEADER_LEN as u16;
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
            ip.set_version_and_header_len(IPV4_HEADER_LEN);
            ip.set_tos(self.tos);
            ip.set_total_len(ip_total);
            ip.set_ident(0);
            ip.set_flags_frag(0x4000); // DF
            ip.set_ttl(self.ttl);
            ip.set_protocol(IpProtocol::Udp);
            ip.set_src_addr(self.ip_src);
            ip.set_dst_addr(self.ip_dst);
            if self.checksums {
                ip.fill_checksum();
            }
        }
        {
            let l4_off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
            let mut udp = UdpDatagram::new_unchecked(&mut buf[l4_off..]);
            udp.set_src_port(self.src_port);
            udp.set_dst_port(self.dst_port);
            udp.set_len_field(udp_len);
            self.probe.write(udp.payload_mut());
            if self.checksums {
                udp.fill_checksum(self.ip_src, self.ip_dst);
            }
        }
        self.frame_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;

    #[test]
    fn default_probe_is_valid_and_64b_capable() {
        assert!(MIN_PROBE_FRAME <= 64);
        let pkt = PacketBuilder::udp_probe(64).seq(42).tx_cycles(1234).build();
        assert_eq!(pkt.len(), 64);
        let eth = EthernetFrame::new_checked(&pkt[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(ip.src_addr(), ip.dst_addr()));
        let probe = ProbeHeader::read(udp.payload()).unwrap();
        assert_eq!(probe.seq, 42);
        assert_eq!(probe.tx_cycles, 1234);
    }

    #[test]
    fn from_frame_matches_read() {
        let pkt = PacketBuilder::udp_probe(128).seq(7).build();
        assert_eq!(
            ProbeHeader::from_frame(&pkt).unwrap(),
            ProbeHeader {
                seq: 7,
                tx_cycles: 0
            }
        );
    }

    #[test]
    fn stamp_frame_rewrites_in_place() {
        let mut pkt = PacketBuilder::udp_probe(64).build();
        ProbeHeader::stamp_frame(&mut pkt, 99, 555);
        let p = ProbeHeader::from_frame(&pkt).unwrap();
        assert_eq!(p.seq, 99);
        assert_eq!(p.tx_cycles, 555);
    }

    #[test]
    fn tiny_request_is_clamped_to_min() {
        let pkt = PacketBuilder::udp_probe(10).build();
        assert_eq!(pkt.len(), MIN_PROBE_FRAME);
    }

    #[test]
    fn key_reflects_builder_fields() {
        let pkt = PacketBuilder::udp_probe(64)
            .ip(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8))
            .ports(10, 20)
            .tos(0x2e)
            .build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.ipv4_src, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(key.l4_dst, 20);
        assert_eq!(key.ip_tos, 0x2e);
    }

    #[test]
    fn build_into_accepts_oversized_buffer() {
        let mut buf = vec![0xffu8; 2048];
        let n = PacketBuilder::udp_probe(64).build_into(&mut buf);
        assert_eq!(n, 64);
        assert_eq!(FlowKey::extract(&buf[..n]).eth_type, 0x0800);
    }
}
