//! ICMPv4 packet view (echo request/reply and the generic header), used by
//! the `IcmpResponder` VNF and by diagnostics traffic in the examples.

use crate::checksum;
use crate::{Result, WireError};

/// Length of the fixed ICMP header (type, code, checksum, rest-of-header).
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types the reproduction distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    EchoReply,
    DestinationUnreachable,
    EchoRequest,
    TimeExceeded,
    Other(u8),
}

impl IcmpType {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestinationUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }

    /// From the wire value.
    pub fn from_u8(v: u8) -> IcmpType {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestinationUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }
}

/// A view over an ICMPv4 message (the IPv4 payload).
#[derive(Debug, Clone)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> IcmpPacket<T> {
        IcmpPacket { buffer }
    }

    /// Wraps a buffer, validating the length.
    pub fn new_checked(buffer: T) -> Result<IcmpPacket<T>> {
        let p = Self::new_unchecked(buffer);
        p.check_len()?;
        Ok(p)
    }

    /// Validates that the fixed header fits.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < ICMP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Message type.
    pub fn icmp_type(&self) -> IcmpType {
        IcmpType::from_u8(self.buffer.as_ref()[0])
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Echo identifier (meaningful for echo request/reply).
    pub fn echo_ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Echo sequence number (meaningful for echo request/reply).
    pub fn echo_seq(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// True when the checksum over the whole message verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum::checksum(self.buffer.as_ref()) == 0
    }

    /// Echo payload bytes after the fixed header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ICMP_HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> IcmpPacket<T> {
    /// Sets the message type.
    pub fn set_icmp_type(&mut self, t: IcmpType) {
        self.buffer.as_mut()[0] = t.to_u8();
    }

    /// Sets the message code.
    pub fn set_code(&mut self, code: u8) {
        self.buffer.as_mut()[1] = code;
    }

    /// Sets the echo identifier.
    pub fn set_echo_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&ident.to_be_bytes());
    }

    /// Sets the echo sequence number.
    pub fn set_echo_seq(&mut self, seq: u16) {
        self.buffer.as_mut()[6..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Recomputes and writes the checksum over the whole message.
    pub fn fill_checksum(&mut self) {
        let d = self.buffer.as_mut();
        d[2] = 0;
        d[3] = 0;
        let sum = checksum::checksum(d);
        d[2..4].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable echo payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ICMP_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_request(ident: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; ICMP_HEADER_LEN + payload.len()];
        let mut p = IcmpPacket::new_unchecked(&mut buf[..]);
        p.set_icmp_type(IcmpType::EchoRequest);
        p.set_code(0);
        p.set_echo_ident(ident);
        p.set_echo_seq(seq);
        p.payload_mut().copy_from_slice(payload);
        p.fill_checksum();
        buf
    }

    #[test]
    fn echo_fields_roundtrip() {
        let buf = echo_request(0x1234, 7, b"ping-payload");
        let p = IcmpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.icmp_type(), IcmpType::EchoRequest);
        assert_eq!(p.code(), 0);
        assert_eq!(p.echo_ident(), 0x1234);
        assert_eq!(p.echo_seq(), 7);
        assert_eq!(p.payload(), b"ping-payload");
        assert!(p.verify_checksum());
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut buf = echo_request(1, 1, b"data");
        buf[9] ^= 0xff;
        assert!(!IcmpPacket::new_checked(&buf[..]).unwrap().verify_checksum());
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(
            IcmpPacket::new_checked(&[8u8, 0, 0][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn type_values_match_rfc792() {
        assert_eq!(IcmpType::EchoReply.to_u8(), 0);
        assert_eq!(IcmpType::EchoRequest.to_u8(), 8);
        assert_eq!(IcmpType::from_u8(3), IcmpType::DestinationUnreachable);
        assert_eq!(IcmpType::from_u8(11), IcmpType::TimeExceeded);
        assert_eq!(IcmpType::from_u8(42), IcmpType::Other(42));
    }

    #[test]
    fn request_to_reply_in_place() {
        let mut buf = echo_request(9, 9, b"x");
        {
            let mut p = IcmpPacket::new_unchecked(&mut buf[..]);
            p.set_icmp_type(IcmpType::EchoReply);
            p.fill_checksum();
        }
        let p = IcmpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.icmp_type(), IcmpType::EchoReply);
        assert!(p.verify_checksum());
        assert_eq!(p.echo_ident(), 9);
    }
}
