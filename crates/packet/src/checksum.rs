//! RFC 1071 Internet checksum, shared by IPv4, UDP and TCP.

/// Computes the ones-complement sum over `data`, folded to 16 bits but not
/// yet complemented. Useful for incremental computation over several slices.
pub fn raw_sum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit running sum into a 16-bit ones-complement value.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Full Internet checksum of one slice.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(raw_sum(data))
}

/// Pseudo-header sum for UDP/TCP over IPv4 (RFC 768 / RFC 793).
pub fn pseudo_header_sum(
    src: std::net::Ipv4Addr,
    dst: std::net::Ipv4Addr,
    protocol: u8,
    length: u16,
) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    raw_sum(&s) + raw_sum(&d) + u32::from(protocol) + u32::from(length)
}

/// Checksum of a transport segment including its IPv4 pseudo header.
pub fn transport_checksum(
    src: std::net::Ipv4Addr,
    dst: std::net::Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let sum = pseudo_header_sum(src, dst, protocol, segment.len() as u16) + raw_sum(segment);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(raw_sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(raw_sum(&[0xab]), raw_sum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_of_data_with_its_checksum_is_zero() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x00, 0x00];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert_eq!(fold(raw_sum(&data)), 0xffff);
    }

    #[test]
    fn pseudo_header_is_order_sensitive_in_value_not_validity() {
        let a = transport_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            &[1, 2, 3, 4],
        );
        let b = transport_checksum(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            17,
            &[1, 2, 3, 4],
        );
        // Swapping src/dst swaps equal-weight words, so the sum is identical;
        // what matters is that verification uses the same pseudo header.
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slice_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
