//! ARP packet view (Ethernet/IPv4 only), used by VNFs that answer or observe
//! address resolution inside the service graph.

use crate::ethernet::MacAddr;
use crate::{Result, WireError};
use std::net::Ipv4Addr;

/// Length of an Ethernet/IPv4 ARP packet body.
pub const ARP_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOperation {
    Request,
    Reply,
    Other(u16),
}

impl ArpOperation {
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> ArpOperation {
        match v {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Other(other),
        }
    }
}

/// A view over an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone)]
pub struct ArpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ArpPacket<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> ArpPacket<T> {
        ArpPacket { buffer }
    }

    /// Wraps a buffer, validating length and hardware/protocol types.
    pub fn new_checked(buffer: T) -> Result<ArpPacket<T>> {
        let p = Self::new_unchecked(buffer);
        p.check_len()?;
        Ok(p)
    }

    /// Validates structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let d = self.buffer.as_ref();
        if d.len() < ARP_LEN {
            return Err(WireError::Truncated);
        }
        // Hardware type Ethernet (1), protocol type IPv4 (0x0800),
        // hw len 6, proto len 4.
        if u16::from_be_bytes([d[0], d[1]]) != 1
            || u16::from_be_bytes([d[2], d[3]]) != 0x0800
            || d[4] != 6
            || d[5] != 4
        {
            return Err(WireError::Unsupported);
        }
        Ok(())
    }

    /// Operation code.
    pub fn operation(&self) -> ArpOperation {
        let d = self.buffer.as_ref();
        ArpOperation::from_u16(u16::from_be_bytes([d[6], d[7]]))
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut b = [0u8; 6];
        b.copy_from_slice(&d[8..14]);
        MacAddr(b)
    }

    /// Sender protocol address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[14], d[15], d[16], d[17])
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut b = [0u8; 6];
        b.copy_from_slice(&d[18..24]);
        MacAddr(b)
    }

    /// Target protocol address.
    pub fn target_ip(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[24], d[25], d[26], d[27])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> ArpPacket<T> {
    /// Writes the fixed Ethernet/IPv4 preamble (htype/ptype/hlen/plen).
    pub fn fill_preamble(&mut self) {
        let d = self.buffer.as_mut();
        d[0..2].copy_from_slice(&1u16.to_be_bytes());
        d[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        d[4] = 6;
        d[5] = 4;
    }

    /// Sets the operation code.
    pub fn set_operation(&mut self, op: ArpOperation) {
        self.buffer.as_mut()[6..8].copy_from_slice(&op.to_u16().to_be_bytes());
    }

    /// Sets the sender hardware address.
    pub fn set_sender_mac(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[8..14].copy_from_slice(&mac.0);
    }

    /// Sets the sender protocol address.
    pub fn set_sender_ip(&mut self, ip: Ipv4Addr) {
        self.buffer.as_mut()[14..18].copy_from_slice(&ip.octets());
    }

    /// Sets the target hardware address.
    pub fn set_target_mac(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[18..24].copy_from_slice(&mac.0);
    }

    /// Sets the target protocol address.
    pub fn set_target_ip(&mut self, ip: Ipv4Addr) {
        self.buffer.as_mut()[24..28].copy_from_slice(&ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_request() {
        let mut buf = vec![0u8; ARP_LEN];
        let mut p = ArpPacket::new_unchecked(&mut buf[..]);
        p.fill_preamble();
        p.set_operation(ArpOperation::Request);
        p.set_sender_mac(MacAddr::local(1));
        p.set_sender_ip(Ipv4Addr::new(10, 0, 0, 1));
        p.set_target_mac(MacAddr::ZERO);
        p.set_target_ip(Ipv4Addr::new(10, 0, 0, 2));

        let p = ArpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.operation(), ArpOperation::Request);
        assert_eq!(p.sender_mac(), MacAddr::local(1));
        assert_eq!(p.sender_ip(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.target_ip(), Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn rejects_non_ethernet_hardware() {
        let mut buf = vec![0u8; ARP_LEN];
        {
            let mut p = ArpPacket::new_unchecked(&mut buf[..]);
            p.fill_preamble();
        }
        buf[0] = 0;
        buf[1] = 6; // IEEE 802 instead of Ethernet
        assert_eq!(
            ArpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Unsupported
        );
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            ArpPacket::new_checked(&[0u8; 27][..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
